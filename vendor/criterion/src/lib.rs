//! Offline, API-compatible subset of `criterion` (vendored shim).
//!
//! Provides the `criterion_group!`/`criterion_main!` macros plus the
//! `Criterion` / `BenchmarkGroup` / `Bencher` / `BenchmarkId` types the
//! workspace benches use. Instead of upstream's statistical engine it runs
//! a short warm-up, then times a fixed batch per sample and reports the
//! best mean — enough for relative comparisons and for keeping the bench
//! targets compiling and runnable in CI.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored: the shim
    /// has no tunables, but `cargo bench -- <filter>` style invocations
    /// must not fail).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks a function against one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks a function with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, |b| f(b));
        self
    }

    /// Ends the group (upstream renders a summary here; the shim prints
    /// per-benchmark lines as it goes).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and an input parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self { label: format!("{name}/{parameter}") }
    }

    /// An id carrying only the input parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.to_string() }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Warm-up and iteration-count calibration: aim for ~2 ms per sample,
    // capped so pathological benches still finish quickly.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(2);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut best = Duration::MAX;
    for _ in 0..samples.min(10) {
        let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut bencher);
        if bencher.elapsed < best {
            best = bencher.elapsed;
        }
    }
    let mean_ns = best.as_nanos() as f64 / iters as f64;
    println!("{label:<50} time: {:>12} ns/iter ({iters} iters/sample)", format!("{mean_ns:.1}"));
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut calls = 0;
        group.bench_with_input(BenchmarkId::from_parameter(42), &3u32, |b, &x| {
            b.iter(|| x * 2);
            calls += 1;
        });
        group.finish();
        assert!(calls > 0);
    }
}
