//! Hand-rolled parser over `proc_macro::TokenTree` for derive input.
//!
//! Recognizes exactly the item shapes the workspace derives on (named
//! structs and unit/newtype/struct-variant enums); anything else surfaces
//! as a `compile_error!` naming the unsupported construct.

use proc_macro::{Delimiter, TokenTree};

use crate::{group_with, is_punct};

/// One named field with its `#[serde(default)]` flag.
pub struct Field {
    pub name: String,
    pub default: bool,
}

/// An enum variant shape.
pub enum Variant {
    Unit(String),
    Newtype(String),
    Struct(String, Vec<Field>),
}

/// Struct vs enum payload.
pub enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

/// The parsed derive input.
pub struct Input {
    pub name: String,
    /// Type parameter names in declaration order (lifetimes excluded).
    pub type_params: Vec<String>,
    pub body: Body,
}

/// Parses the full derive input token list.
pub fn parse_input(tokens: &[TokenTree]) -> Result<Input, String> {
    let mut i = 0;
    skip_attrs(tokens, &mut i);
    skip_visibility(tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    let type_params = parse_generics(tokens, &mut i)?;

    // Skip a where-clause (none in this workspace, but cheap to tolerate).
    while i < tokens.len() && group_with(&tokens[i], Delimiter::Brace).is_none() {
        if is_punct(&tokens[i], ';') {
            return Err("tuple/unit structs are not supported by the serde shim".into());
        }
        i += 1;
    }

    let Some(body_group) = tokens.get(i).and_then(|t| group_with(t, Delimiter::Brace)) else {
        return Err("expected `{ ... }` body (tuple structs are not supported)".into());
    };
    let body_tokens: Vec<TokenTree> = body_group.stream().into_iter().collect();

    let body = if kind == "struct" {
        Body::Struct(parse_named_fields(&body_tokens)?)
    } else {
        Body::Enum(parse_variants(&body_tokens)?)
    };

    Ok(Input { name, type_params, body })
}

/// Skips any number of outer attributes (`#[...]`), returning whether one
/// of them was `#[serde(default)]`.
fn skip_attrs_collect_default(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while *i < tokens.len() && is_punct(&tokens[*i], '#') {
        *i += 1;
        if let Some(attr) = tokens.get(*i).and_then(|t| group_with(t, Delimiter::Bracket)) {
            let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(args) =
                        inner.get(1).and_then(|t| group_with(t, Delimiter::Parenthesis))
                    {
                        has_default |= args.stream().into_iter().any(
                            |t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "default"),
                        );
                    }
                }
            }
            *i += 1;
        }
    }
    has_default
}

fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    skip_attrs_collect_default(tokens, i);
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if tokens.get(*i).map(|t| group_with(t, Delimiter::Parenthesis).is_some()) == Some(true) {
            *i += 1;
        }
    }
}

/// Parses `<...>` generics if present, returning the type parameter names.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Result<Vec<String>, String> {
    let mut params = Vec::new();
    if !matches!(tokens.get(*i), Some(t) if is_punct(t, '<')) {
        return Ok(params);
    }
    *i += 1;
    let mut depth = 1usize;
    let mut at_param_start = true;
    while *i < tokens.len() {
        let tt = &tokens[*i];
        if is_punct(tt, '<') {
            depth += 1;
            at_param_start = false;
        } else if is_punct(tt, '>') {
            depth -= 1;
            if depth == 0 {
                *i += 1;
                return Ok(params);
            }
        } else if is_punct(tt, ',') && depth == 1 {
            at_param_start = true;
        } else if is_punct(tt, '\'') {
            // Lifetime: skip the quote; the following ident is consumed as
            // part of the lifetime, not a type parameter.
            *i += 1;
            at_param_start = false;
        } else if at_param_start {
            if let TokenTree::Ident(id) = tt {
                let text = id.to_string();
                if text == "const" {
                    return Err("const generics are not supported by the serde shim".into());
                }
                params.push(text);
            }
            at_param_start = false;
        }
        *i += 1;
    }
    Err("unterminated generics".into())
}

/// Parses `name: Type, ...` named-field lists (struct bodies and
/// struct-variant payloads).
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = skip_attrs_collect_default(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        if !matches!(tokens.get(i), Some(t) if is_punct(t, ':')) {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i += 1;
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0usize;
        while i < tokens.len() {
            let tt = &tokens[i];
            if is_punct(tt, '<') {
                depth += 1;
            } else if is_punct(tt, '>') {
                depth = depth.saturating_sub(1);
            } else if is_punct(tt, ',') && depth == 0 {
                break;
            }
            i += 1;
        }
        if i < tokens.len() {
            i += 1; // consume the comma
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Parses enum variant lists.
fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let variant = match tokens.get(i) {
            Some(t) if group_with(t, Delimiter::Parenthesis).is_some() => {
                let payload = group_with(t, Delimiter::Parenthesis).unwrap();
                let arity = tuple_arity(payload);
                i += 1;
                if arity != 1 {
                    return Err(format!(
                        "variant `{name}` has {arity} tuple fields; the serde shim only supports \
                         newtype (1-field) tuple variants"
                    ));
                }
                Variant::Newtype(name)
            }
            Some(t) if group_with(t, Delimiter::Brace).is_some() => {
                let payload = group_with(t, Delimiter::Brace).unwrap();
                let inner: Vec<TokenTree> = payload.stream().into_iter().collect();
                i += 1;
                Variant::Struct(name, parse_named_fields(&inner)?)
            }
            _ => Variant::Unit(name),
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(tokens.get(i), Some(t) if is_punct(t, '=')) {
            while i < tokens.len() && !is_punct(&tokens[i], ',') {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(t) if is_punct(t, ',')) {
            i += 1;
        }
        variants.push(variant);
    }
    Ok(variants)
}

/// Number of top-level comma-separated entries in a parenthesized payload.
fn tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0usize;
    let mut arity = 1;
    for tt in &tokens {
        if is_punct(tt, '<') {
            depth += 1;
        } else if is_punct(tt, '>') {
            depth = depth.saturating_sub(1);
        } else if is_punct(tt, ',') && depth == 0 {
            arity += 1;
        }
    }
    // A trailing comma does not add a field.
    if is_punct(tokens.last().unwrap(), ',') {
        arity -= 1;
    }
    arity
}
