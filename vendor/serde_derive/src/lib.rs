//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Implemented directly on the `proc_macro` API (the offline build
//! environment has no `syn`/`quote`), which is practical because the shim
//! only needs to support the shapes this workspace actually derives:
//!
//! * structs with named fields, optionally generic over type parameters;
//! * enums whose variants are unit, one-element tuple ("newtype") or
//!   struct-like;
//! * the `#[serde(default)]` field attribute.
//!
//! Generated code goes through the shim's [`Value`]-tree model:
//! `Serialize::to_value` / `Deserialize::from_value`, with structs as
//! objects and enums externally tagged — the same wire shapes as upstream
//! serde's JSON defaults.

use proc_macro::{Delimiter, TokenStream, TokenTree};

mod parse;

use parse::{Body, Input, Variant};

/// Derives `serde::Serialize` (shim) for named structs and simple enums.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (shim) for named structs and simple enums.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let code = match parse::parse_input(&tokens) {
        Ok(parsed) => gen(&parsed),
        Err(msg) => format!("compile_error!({:?});", format!("serde shim derive: {msg}")),
    };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!({:?});", format!("serde shim derive generated invalid code: {e}"))
            .parse()
            .expect("compile_error! must parse")
    })
}

/// `impl<T: ::serde::Serialize> ::serde::Serialize for Name<T>` etc.
fn impl_header(input: &Input, trait_name: &str) -> (String, String) {
    let generics = if input.type_params.is_empty() {
        String::new()
    } else {
        let bounded: Vec<String> =
            input.type_params.iter().map(|p| format!("{p}: ::serde::{trait_name}")).collect();
        format!("<{}>", bounded.join(", "))
    };
    let ty = if input.type_params.is_empty() {
        input.name.clone()
    } else {
        format!("{}<{}>", input.name, input.type_params.join(", "))
    };
    (generics, ty)
}

fn gen_serialize(input: &Input) -> String {
    let (generics, ty) = impl_header(input, "Serialize");
    let body = match &input.body {
        Body::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({n:?}), ::serde::Serialize::to_value(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", entries.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(name) => format!(
                        "{ty}::{name} => ::serde::Value::String(::std::string::String::from({name:?})),",
                        ty = input.name
                    ),
                    Variant::Newtype(name) => format!(
                        "{ty}::{name}(__f0) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from({name:?}), ::serde::Serialize::to_value(__f0))]),",
                        ty = input.name
                    ),
                    Variant::Struct(name, fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{n}: __f_{n}", n = f.name))
                            .collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({n:?}), ::serde::Serialize::to_value(__f_{n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        format!(
                            "{ty}::{name} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({name:?}), \
                             ::serde::Value::Object(::std::vec![{entries}]))]),",
                            ty = input.name,
                            binds = binds.join(", "),
                            entries = entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let (generics, ty) = impl_header(input, "Deserialize");
    let body = match &input.body {
        Body::Struct(fields) => {
            let inits: Vec<String> = fields.iter().map(field_init).collect();
            format!(
                "let __entries = ::serde::__private::expect_object(__v)?;\n\
                 ::std::result::Result::Ok(Self {{ {} }})",
                inits.join(", ")
            )
        }
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(name) => Some(format!(
                        "{name:?} => ::std::result::Result::Ok({ty}::{name}),",
                        ty = input.name
                    )),
                    _ => None,
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(_) => None,
                    Variant::Newtype(name) => Some(format!(
                        "{name:?} => ::std::result::Result::Ok(\
                         {ty}::{name}(::serde::Deserialize::from_value(__content)?)),",
                        ty = input.name
                    )),
                    Variant::Struct(name, fields) => {
                        let inits: Vec<String> = fields.iter().map(field_init).collect();
                        Some(format!(
                            "{name:?} => {{\n\
                                 let __entries = ::serde::__private::expect_object(__content)?;\n\
                                 ::std::result::Result::Ok({ty}::{name} {{ {inits} }})\n\
                             }}",
                            ty = input.name,
                            inits = inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::String(__tag) => match __tag.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(\
                             ::serde::__private::unknown_variant({name:?}, __other)),\n\
                     }},\n\
                     ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __content) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\n\
                             __other => ::std::result::Result::Err(\
                                 ::serde::__private::unknown_variant({name:?}, __other)),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(\
                         ::serde::__private::invalid_enum({name:?}, __other)),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                data_arms = data_arms.join("\n"),
                name = input.name
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Deserialize for {ty} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn field_init(f: &parse::Field) -> String {
    if f.default {
        format!("{n}: ::serde::__private::field_or_default(__entries, {n:?})?", n = f.name)
    } else {
        format!("{n}: ::serde::__private::field(__entries, {n:?})?", n = f.name)
    }
}

/// Shared helper: is this token the given punctuation character?
pub(crate) fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

/// Shared helper: is this token a group with the given delimiter?
pub(crate) fn group_with(tt: &TokenTree, d: Delimiter) -> Option<&proc_macro::Group> {
    match tt {
        TokenTree::Group(g) if g.delimiter() == d => Some(g),
        _ => None,
    }
}
