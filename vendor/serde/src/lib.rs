//! Offline, API-compatible subset of `serde` (vendored shim).
//!
//! The build environment has no access to crates.io, so this shim provides
//! the surface the workspace uses: `#[derive(Serialize, Deserialize)]`
//! (with `#[serde(default)]` field support) and the traits backing
//! `serde_json::{to_string, to_writer, from_str, from_reader}`.
//!
//! Unlike upstream serde's visitor architecture, this shim converts through
//! an owned JSON-like [`Value`] tree — dramatically simpler, and sufficient
//! for the configuration and model-snapshot payloads this repo serializes.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Self { msg: msg.to_string() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Int(n) => *n,
                    Value::Float(f) if f.fract() == 0.0 && f.is_finite() => *f as i128,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(
                        "integer {} out of range for {}",
                        n,
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_serialize_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN), // serde_json writes non-finite floats as null
                    other => Err(Error::custom(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = match v {
                    Value::Array(items) => items,
                    other => {
                        return Err(Error::custom(format!(
                            "expected array (tuple), found {}",
                            other.kind()
                        )))
                    }
                };
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of length {}, found {}",
                        expected,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

// ---------------------------------------------------------------------------
// Support functions used by the generated derive code.
// ---------------------------------------------------------------------------

/// Implementation details of the derive macros — not public API.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Interprets `v` as an object and returns its entries.
    pub fn expect_object(v: &Value) -> Result<&[(String, Value)], Error> {
        match v {
            Value::Object(entries) => Ok(entries),
            other => Err(Error::custom(format!("expected object, found {}", other.kind()))),
        }
    }

    /// Looks up and deserializes a required struct field.
    pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, Error> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => {
                T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
            }
            None => Err(Error::custom(format!("missing field `{name}`"))),
        }
    }

    /// Looks up a `#[serde(default)]` struct field, falling back to
    /// `Default::default()` when absent.
    pub fn field_or_default<T: Deserialize + Default>(
        entries: &[(String, Value)],
        name: &str,
    ) -> Result<T, Error> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => {
                T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
            }
            None => Ok(T::default()),
        }
    }

    /// Error for an unknown enum variant tag.
    pub fn unknown_variant(ty: &str, tag: &str) -> Error {
        Error::custom(format!("unknown variant `{tag}` for enum {ty}"))
    }

    /// Error for an enum payload of the wrong JSON shape.
    pub fn invalid_enum(ty: &str, v: &Value) -> Error {
        Error::custom(format!(
            "invalid representation for enum {ty}: expected string or single-key object, found {}",
            v.kind()
        ))
    }
}
