//! The JSON-shaped value tree the shim serializes through.

/// An owned JSON-like value.
///
/// Objects preserve insertion order (fields serialize in declaration
/// order), which keeps output deterministic for golden-file comparisons.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats, mirroring serde_json).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number without a fractional part.
    Int(i128),
    /// JSON number with a fractional part or exponent.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short human-readable name of the value's JSON type, for errors.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Returns the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}
