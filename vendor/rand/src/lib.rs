//! Offline, API-compatible subset of the `rand` crate (0.8 surface).
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored shim provides exactly the surface the workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng`] and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through SplitMix64
//! — deterministic for a given seed, which is all the tests and experiment
//! harness rely on (they never depend on the exact stream of the upstream
//! `StdRng`).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types that can be sampled uniformly from their "natural" distribution by
/// [`Rng::gen`]: floats in `[0, 1)`, integers over their full range, bools
/// as a fair coin.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1) with full f32 mantissa coverage.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// User-facing random sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value from the type's standard distribution (floats in
    /// `[0, 1)`, integers over their full range).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, U: SampleRange<T>>(&mut self, range: U) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1], got {p}");
        <f64 as StandardSample>::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS-provided "entropy" (deterministic in
    /// this shim: uses the process id and a monotonic counter).
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        Self::seed_from_u64((std::process::id() as u64) << 32 ^ n)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 to spread the seed over the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Returns a fresh, process-unique generator (deterministic stand-in for
/// upstream's thread-local generator).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i32..7);
            assert!((-3..7).contains(&v));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u = rng.gen_range(1u8..=8);
            assert!((1..=8).contains(&u));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }
}
