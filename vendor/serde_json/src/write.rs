//! Compact JSON emission from a [`serde::Value`] tree.

use serde::Value;

/// Appends the compact JSON encoding of `v` to `out`.
pub fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            out.push_str(&n.to_string());
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` for f64 is the shortest representation that parses
                // back to the same bits, and always includes `.0` or an
                // exponent so the value re-parses as a float.
                out.push_str(&format!("{f:?}"));
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's default.
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, value);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
