//! Recursive-descent JSON parser producing a [`serde::Value`] tree.

use serde::{Error, Value};

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::String),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let s = &self.bytes[start..];
                    let str_slice =
                        std::str::from_utf8(s).map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = str_slice.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid float literal"))
        } else {
            text.parse::<i128>().map(Value::Int).map_err(|_| self.err("invalid integer literal"))
        }
    }
}
