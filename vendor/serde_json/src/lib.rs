//! Offline, API-compatible subset of `serde_json` (vendored shim).
//!
//! Provides `to_string`, `to_writer`, `from_str` and `from_reader` over the
//! shim [`serde::Value`] data model. The wire format is ordinary JSON:
//! structs as objects, unit enum variants as strings, data-carrying
//! variants as single-key objects — matching upstream serde's externally
//! tagged default, so payloads stay readable and diffable.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

mod read;
mod write;

/// Serializes `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write::write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` as JSON into an [`std::io::Write`].
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes()).map_err(|e| Error::custom(format!("io error: {e}")))
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = read::parse(s)?;
    T::from_value(&value)
}

/// Deserializes a value from an [`std::io::Read`] producing JSON.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf).map_err(|e| Error::custom(format!("io error: {e}")))?;
    from_str(&buf)
}

/// Parses a JSON string into a [`Value`] tree.
pub fn value_from_str(s: &str) -> Result<Value, Error> {
    read::parse(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(to_string("hi\n\"quoted\"").unwrap(), "\"hi\\n\\\"quoted\\\"\"");
        assert_eq!(from_str::<String>("\"hi\\n\\\"quoted\\\"\"").unwrap(), "hi\n\"quoted\"");
    }

    #[test]
    fn round_trip_floats() {
        for v in [0.0f32, -1.5, 0.1, 3.4e38, 1e-20] {
            let s = to_string(&v).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(back, v, "round-trip failed for {v} via {s}");
        }
        // Non-finite floats serialize as null and come back as NaN.
        assert_eq!(to_string(&f32::INFINITY).unwrap(), "null");
        assert!(from_str::<f32>("null").unwrap().is_nan());
    }

    #[test]
    fn round_trip_containers() {
        let v = vec![vec![1.0f32, 2.0], vec![3.0]];
        let s = to_string(&v).unwrap();
        let back: Vec<Vec<f32>> = from_str(&s).unwrap();
        assert_eq!(back, v);

        let t = (1usize, 2usize, 3usize);
        let s = to_string(&t).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: (usize, usize, usize) = from_str(&s).unwrap();
        assert_eq!(back, t);

        let o: Option<u8> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u8>>("9").unwrap(), Some(9));
    }

    #[test]
    fn parse_whitespace_and_nesting() {
        let v = value_from_str(" { \"a\" : [ 1 , 2.5 , \"x\" ] , \"b\" : { } } ").unwrap();
        match v {
            Value::Object(entries) => {
                assert_eq!(entries.len(), 2);
                assert_eq!(entries[0].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<u32>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u0041\\u00e9\"").unwrap(), "Aé");
        // Surrogate pair for U+1F600.
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }
}
