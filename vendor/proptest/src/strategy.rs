//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream there is no value tree / shrinking: `sample` draws one
/// concrete value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}
impl_float_strategies!(f32, f64);

impl<S: Strategy> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// A strategy yielding a constant value (upstream's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
