//! Offline, API-compatible subset of `proptest` (vendored shim).
//!
//! Supports the surface this workspace's property tests use:
//!
//! * the [`proptest!`] macro with `pattern in strategy` arguments and an
//!   optional `#![proptest_config(...)]` header;
//! * range strategies (`0u64..100`, `1u8..=8`, `-10.0f32..10.0`) and
//!   `prop::collection::vec(strategy, size)`;
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! generated inputs formatted into the message, which is enough to
//! reproduce (generation is deterministic per test).

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Runs property tests: repeatedly samples the argument strategies and
/// executes the body, which returns `Err(TestCaseError)` via the
/// `prop_assert*` / `prop_assume` macros.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(16).max(64);
                while __accepted < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __max_attempts,
                        "proptest `{}`: too many rejected cases ({} attempts, {} accepted)",
                        stringify!($name),
                        __attempts,
                        __accepted,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut __rng);
                    )+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __result {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "proptest `{}` failed on case {}: {}",
                                stringify!($name),
                                __accepted + 1,
                                __msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __left,
                __right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = &$left;
        let __right = &$right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                $($fmt)+
            )));
        }
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if __left == __right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __left,
            )));
        }
    }};
}

/// Rejects (skips) the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(concat!("assumption failed: ", stringify!($cond))),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in -5i32..5, b in 1u8..=8, f in -1.0f32..1.0) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!((1..=8).contains(&b));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0usize..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "bad len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_caps_cases(x in 0u64..1000) {
            // Just exercise the config path; x must be in range.
            prop_assert!(x < 1000);
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }
}
