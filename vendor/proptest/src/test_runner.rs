//! Test configuration, case outcomes and the deterministic test RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration (only the knobs this workspace uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast while still
        // exercising the input space (generation is deterministic anyway).
        Self { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — does not count as a run.
    Reject(String),
    /// An assertion failed — aborts the whole test.
    Fail(String),
}

/// Deterministic RNG for strategy sampling, seeded from the test name so
/// every test draws an independent but reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds the RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { inner: StdRng::seed_from_u64(h) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
