//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length distribution for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    start: usize,
    /// Exclusive upper bound.
    end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self { start: r.start, end: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self { start: *r.start(), end: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { start: n, end: n + 1 }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose elements come from `element` and whose length
/// is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
