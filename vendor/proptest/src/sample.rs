//! Sampling strategies over explicit value lists (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy choosing uniformly from a fixed list of values.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    choices: Vec<T>,
}

/// Picks one of `choices` uniformly.
pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select requires at least one choice");
    Select { choices }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.choices.len() as u64) as usize;
        self.choices[idx].clone()
    }
}
