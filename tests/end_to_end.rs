//! End-to-end integration: train → compress → fine-tune → simulate →
//! deploy-grade kernel equality, across all crates.

use rand::SeedableRng;
use weight_pools::data::SyntheticSpec;
use weight_pools::pool::compress;
use weight_pools::pool::grouping::extract_z_vectors;
use weight_pools::pool::reference::{bitserial_conv_acc, ActEncoding, PooledConvShape};
use weight_pools::pool::simulate::calibrate_and_arm;
use weight_pools::prelude::*;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Trains a small model on an easy synthetic task and returns it with its
/// data and float accuracy.
fn trained_model() -> (Sequential, weight_pools::data::Dataset, f32) {
    let mut r = rng(11);
    let mut spec = SyntheticSpec::tiny_test(4);
    spec.train_per_class = 24;
    spec.test_per_class = 10;
    spec.height = 12;
    spec.width = 12;
    let data = spec.generate();
    let mut net = Sequential::new();
    net.push(Conv2d::new(1, 8, 3, 1, 1, &mut r));
    net.push(Relu::new());
    net.push(Conv2d::new(8, 16, 3, 1, 1, &mut r));
    net.push(Relu::new());
    net.push(GlobalAvgPool::new());
    net.push(Dense::new(16, 4, &mut r));
    let mut opt = Sgd::new(0.05).momentum(0.9);
    for _ in 0..15 {
        train_epoch(&mut net, &mut opt, &data.train);
    }
    let acc = evaluate(&mut net, &data.test).accuracy;
    (net, data, acc)
}

#[test]
fn compression_preserves_most_accuracy_on_easy_task() {
    let (mut net, data, float_acc) = trained_model();
    assert!(float_acc > 0.7, "base model failed to learn: {float_acc}");

    let cfg = PoolConfig::new(32);
    let mut r = rng(12);
    let pool = compress::build_pool(&mut net, &cfg, &mut r).unwrap();
    let mut ft = Sgd::new(0.01).momentum(0.9);
    compress::finetune(&mut net, &pool, &cfg, &mut ft, &data.train, 3);
    let pooled_acc = evaluate(&mut net, &data.test).accuracy;
    assert!(
        pooled_acc > float_acc - 0.15,
        "weight pool destroyed accuracy: {pooled_acc} vs {float_acc}"
    );
}

#[test]
fn bitserial_simulation_tracks_projected_model() {
    let (mut net, data, _) = trained_model();
    let cfg = PoolConfig::new(32);
    let mut r = rng(13);
    let pool = compress::build_pool(&mut net, &cfg, &mut r).unwrap();
    compress::project(&mut net, &pool, &cfg);
    let projected_acc = evaluate(&mut net, &data.test).accuracy;

    let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
    let calib: Vec<Batch> = data.train.iter().take(2).cloned().collect();
    let install = calibrate_and_arm(&mut net, &pool, lut, &cfg, &calib, 8, false);
    let sim_acc = evaluate(&mut net, &data.test).accuracy;
    install.uninstall(&mut net);

    assert!(
        (projected_acc - sim_acc).abs() <= 0.1,
        "8-bit bit-serial simulation diverged: float {projected_acc} vs sim {sim_acc}"
    );
}

/// The deploy-grade MCU kernel must agree **exactly** with the reference
/// semantics when fed a conv layer extracted from a genuinely trained and
/// compressed model (not just random fixtures).
#[test]
fn mcu_kernel_matches_reference_on_trained_weights() {
    let (mut net, data, _) = trained_model();
    let cfg = PoolConfig::new(16);
    let mut r = rng(14);
    let pool = compress::build_pool(&mut net, &cfg, &mut r).unwrap();
    compress::project(&mut net, &pool, &cfg);
    let maps = compress::index_maps(&mut net, &pool, &cfg);
    let indices = maps[1].clone().expect("second conv is compressed");

    // Index maps must agree with the projected weights.
    let mut weights = None;
    compress::for_each_conv_indexed(&mut net, |pos, conv| {
        if pos == 1 {
            weights = Some(conv.weight().clone());
        }
    });
    let weights = weights.unwrap();
    for (i, v) in extract_z_vectors(&weights, 8).iter().enumerate() {
        let assigned = pool.vector(indices[i] as usize);
        for (a, b) in v.iter().zip(assigned) {
            assert!((a - b).abs() < 1e-6, "index map inconsistent at vector {i}");
        }
    }

    // Run the instrumented kernel vs the reference on a real test image,
    // quantized exactly as deployment would.
    let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
    let image = &data.test[0].images;
    let plane: Vec<f32> = image.data()[..144].to_vec(); // first image, 1x12x12
    let act =
        UnsignedQuantParams::from_max(plane.iter().fold(0.0f32, |m, v| m.max(*v)).max(1e-6), 8);
    // The compressed conv consumes the stem's ReLU output; build it.
    let stem_out = {
        let x = Tensor::from_vec(plane, &[1, 1, 12, 12]);
        let y = net.forward(&x, false); // full forward, but we need stem only
        let _ = y;
        // Recompute stem conv + relu manually through visit.
        let mut stem = None;
        compress::for_each_conv_indexed(&mut net, |pos, conv| {
            if pos == 0 {
                stem = Some(conv.weight().clone());
            }
        });
        let stem_w = stem.unwrap();
        let shape = PooledConvShape {
            in_ch: 1,
            out_ch: 8,
            kernel: 3,
            stride: 1,
            pad: 1,
            in_h: 12,
            in_w: 12,
        };
        let geo = shape.geometry();
        let mut out = vec![0.0f32; 8 * 144];
        for k in 0..8 {
            for oy in 0..12 {
                for ox in 0..12 {
                    let mut acc = 0.0;
                    for ky in 0..3 {
                        for kx in 0..3 {
                            if let (Some(iy), Some(ix)) =
                                (geo.input_row(oy, ky), geo.input_col(ox, kx))
                            {
                                acc += x.get4(0, 0, iy, ix) * stem_w.get4(k, 0, ky, kx);
                            }
                        }
                    }
                    out[(k * 12 + oy) * 12 + ox] = acc.max(0.0);
                }
            }
        }
        out
    };
    let codes: Vec<i32> = stem_out.iter().map(|&v| act.quantize(v) as i32).collect();

    let shape =
        PooledConvShape { in_ch: 8, out_ch: 16, kernel: 3, stride: 1, pad: 1, in_h: 12, in_w: 12 };
    let expect = bitserial_conv_acc(&codes, &shape, &indices, &lut, 8, ActEncoding::Unsigned);

    let mut mcu = Mcu::new(McuSpec::mc_large());
    let oq =
        OutputQuant { requant: Requantizer::from_real_multiplier(1.0), relu: false, out_bits: 31 };
    let bias = vec![0i32; 16];
    let got = weight_pools::kernels::conv_bitserial(
        &mut mcu,
        &codes,
        &shape,
        &indices,
        &lut,
        &bias,
        &oq,
        &BitSerialOptions::paper_default(8),
    );
    assert_eq!(got, expect, "instrumented kernel diverged from reference");
    assert!(mcu.cycles() > 0);
}

#[test]
fn finetuning_recovers_projection_loss() {
    let (mut net, data, _) = trained_model();
    let cfg = PoolConfig::new(16); // aggressive pool: visible projection loss
    let mut r = rng(15);
    let pool = compress::build_pool(&mut net, &cfg, &mut r).unwrap();
    compress::project(&mut net, &pool, &cfg);
    let projected = evaluate(&mut net, &data.test).accuracy;

    let mut ft = Sgd::new(0.02).momentum(0.9);
    compress::finetune(&mut net, &pool, &cfg, &mut ft, &data.train, 4);
    let finetuned = evaluate(&mut net, &data.test).accuracy;
    assert!(
        finetuned >= projected - 0.02,
        "fine-tuning should not hurt: {projected} -> {finetuned}"
    );
}
