//! Smoke test mirroring the quickstart in `src/lib.rs`'s crate docs: the
//! documented end-to-end pipeline (compress a tiny CNN onto a weight pool,
//! generate the LUT, simulate bit-serial execution) must keep working under
//! plain `cargo test`.

use rand::SeedableRng;
use weight_pools::data::SyntheticSpec;
use weight_pools::pool::simulate::calibrate_and_arm;
use weight_pools::prelude::*;

#[test]
fn quickstart_pipeline_runs_end_to_end() {
    // A tiny CNN: stem (kept exact) + one poolable conv, as in the docs.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut net = Sequential::new();
    net.push(Conv2d::new(3, 8, 3, 1, 1, &mut rng));
    net.push(Relu::new());
    net.push(Conv2d::new(8, 8, 3, 1, 1, &mut rng));

    // Compress: cluster z-vectors into a pool, project the model onto it.
    let cfg = PoolConfig::new(8);
    let pool = compress::build_pool(&mut net, &cfg, &mut rng).expect("pool build must succeed");
    let stats = compress::project(&mut net, &pool, &cfg);
    assert_eq!(stats.layers_compressed, 1, "exactly the non-stem conv should compress");

    // Generate the deployable lookup table (2^8 entries per pool vector).
    let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
    assert_eq!(lut.storage_bytes(), 256 * 8);

    // Beyond the doc example: classification head + bit-serial simulation.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut net = Sequential::new();
    net.push(Conv2d::new(1, 8, 3, 1, 1, &mut rng));
    net.push(Relu::new());
    net.push(Conv2d::new(8, 8, 3, 1, 1, &mut rng));
    net.push(Relu::new());
    net.push(GlobalAvgPool::new());
    net.push(Dense::new(8, 4, &mut rng));

    let data = SyntheticSpec::tiny_test(4).generate();
    let pool = compress::build_pool(&mut net, &cfg, &mut rng).expect("pool build must succeed");
    compress::project(&mut net, &pool, &cfg);

    let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
    let calib: Vec<Batch> = data.train.iter().take(1).cloned().collect();
    let install = calibrate_and_arm(&mut net, &pool, lut, &cfg, &calib, 8, false);
    let sim = evaluate(&mut net, &data.test);
    install.uninstall(&mut net);

    assert!(sim.accuracy.is_finite(), "simulated accuracy must be finite, got {}", sim.accuracy);
    assert!((0.0..=1.0).contains(&sim.accuracy), "accuracy out of range: {}", sim.accuracy);
}
