//! Serde round-trips of every persisted artifact: pools, lookup tables,
//! network specs, deploy bundles and model state dictionaries.

use rand::SeedableRng;
use weight_pools::models::specs;
use weight_pools::pool::netspec::{ConvSpec, LayerSpec};
use weight_pools::prelude::*;

#[test]
fn weight_pool_round_trips_through_json() {
    let pool = WeightPool::from_vectors(vec![
        vec![0.1, -0.2, 0.3, 0.0, 1.5, -1.0, 0.25, 0.125],
        vec![0.0; 8],
    ]);
    let json = serde_json::to_string(&pool).unwrap();
    let back: WeightPool = serde_json::from_str(&json).unwrap();
    assert_eq!(pool, back);
}

#[test]
fn lookup_table_round_trips_through_json() {
    let pool = WeightPool::from_vectors(vec![vec![0.5, -0.25, 0.125, 1.0]]);
    let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
    let json = serde_json::to_string(&lut).unwrap();
    let back: LookupTable = serde_json::from_str(&json).unwrap();
    assert_eq!(lut, back);
    // Codes must be identical entry by entry.
    for m in 0..lut.num_patterns() {
        assert_eq!(lut.code(0, m), back.code(0, m));
    }
}

#[test]
fn netspec_round_trips_through_json() {
    for net in specs::all_networks() {
        let json = serde_json::to_string(&net).unwrap();
        let back: NetSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(net, back);
        assert_eq!(net.params(), back.params());
    }
}

/// A deployable bundle with both payload kinds: int8 stem + pooled conv +
/// pooling/dense structure.
fn toy_bundle(order: LutOrder) -> DeployBundle {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let mut net = Sequential::new();
    net.push(Conv2d::new(3, 8, 3, 1, 1, &mut rng));
    net.push(Relu::new());
    net.push(Conv2d::new(8, 16, 3, 1, 1, &mut rng));
    let cfg = PoolConfig::new(8);
    let pool = compress::build_pool(&mut net, &cfg, &mut rng).unwrap();
    compress::project(&mut net, &pool, &cfg);
    let lut = LookupTable::build(&pool, 8, order);
    let spec = NetSpec {
        name: "serde-toy".into(),
        input: (3, 8, 8),
        classes: 4,
        layers: vec![
            LayerSpec::Conv(ConvSpec {
                in_ch: 3,
                out_ch: 8,
                kernel: 3,
                stride: 1,
                pad: 1,
                compressed: false,
            }),
            LayerSpec::Conv(ConvSpec {
                in_ch: 8,
                out_ch: 16,
                kernel: 3,
                stride: 1,
                pad: 1,
                compressed: true,
            }),
            LayerSpec::MaxPool { size: 2 },
            LayerSpec::GlobalAvgPool,
            LayerSpec::Dense { in_features: 16, out_features: 4, compressed: false },
        ],
    };
    DeployBundle::from_model(&mut net, spec, &pool, lut, &cfg, 8)
}

#[test]
fn deploy_bundle_round_trips_both_lut_orders() {
    for order in [LutOrder::InputOriented, LutOrder::WeightOriented] {
        let bundle = toy_bundle(order);
        // Both payload kinds must be present and survive the round trip.
        assert!(bundle.convs.iter().any(|c| matches!(c, ConvPayload::Direct { .. })));
        assert!(bundle.convs.iter().any(|c| matches!(c, ConvPayload::Pooled { .. })));
        let json = serde_json::to_string(&bundle).unwrap();
        let back: DeployBundle = serde_json::from_str(&json).unwrap();
        assert_eq!(bundle, back, "{order:?}");
        assert_eq!(bundle.flash_bytes(), back.flash_bytes());
        assert_eq!(bundle.index_histogram(), back.index_histogram());
    }
}

#[test]
fn deploy_bundle_file_round_trip_reruns_identically() {
    for (i, order) in [LutOrder::InputOriented, LutOrder::WeightOriented].iter().enumerate() {
        let bundle = toy_bundle(*order);
        let dir = std::env::temp_dir().join("wp_serde_bundle_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("bundle_{i}.json"));
        bundle.save(&path).unwrap();
        let back = DeployBundle::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(bundle, back);

        // Inference from the deserialized bundle must be code-for-code
        // identical to the original — including through the threaded
        // batch path.
        let opts = EngineOptions::default();
        let a = PreparedNet::from_bundle(&bundle, &opts);
        let b = PreparedNet::from_bundle(&back, &opts);
        let inputs = a.fabricate_inputs(5, 17);
        let out_a = BatchRunner::new(1).run(&a, &inputs);
        let out_b = BatchRunner::new(3).run(&b, &inputs);
        assert_eq!(out_a, out_b, "{order:?}");
    }
}

#[test]
fn model_state_round_trips_through_file() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut net = Sequential::new();
    net.push(Conv2d::new(3, 8, 3, 1, 1, &mut rng));
    net.push(Dense::new(8 * 4 * 4, 2, &mut rng));
    let dir = std::env::temp_dir().join("wp_integration_save");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    net.save(&path).unwrap();

    let x = Tensor::<f32>::full(&[1, 3, 4, 4], 0.5);
    let before = net.forward(&x, false);
    for p in net.params_mut() {
        p.value.data_mut().fill(0.0);
    }
    net.load(&path).unwrap();
    let after = net.forward(&x, false);
    assert_eq!(before, after);
    std::fs::remove_file(&path).ok();
}

#[test]
fn quant_params_round_trip_through_json() {
    let qp = QuantParams::symmetric_from_max_abs(1.5, 8);
    let uq = UnsignedQuantParams::from_max(4.0, 5);
    let r = Requantizer::from_real_multiplier(0.0173);
    let qp2: QuantParams = serde_json::from_str(&serde_json::to_string(&qp).unwrap()).unwrap();
    let uq2: UnsignedQuantParams =
        serde_json::from_str(&serde_json::to_string(&uq).unwrap()).unwrap();
    let r2: Requantizer = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
    assert_eq!(qp, qp2);
    assert_eq!(uq, uq2);
    assert_eq!(r, r2);
}

#[test]
fn tensor_round_trips_through_json() {
    let t = Tensor::from_vec(vec![1.0f32, -2.5, 3.25], &[3]);
    let back: Tensor<f32> = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
    assert_eq!(t, back);
}
