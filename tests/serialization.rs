//! Serde round-trips of every persisted artifact: pools, lookup tables,
//! network specs and model state dictionaries.

use rand::SeedableRng;
use weight_pools::models::specs;
use weight_pools::prelude::*;

#[test]
fn weight_pool_round_trips_through_json() {
    let pool = WeightPool::from_vectors(vec![
        vec![0.1, -0.2, 0.3, 0.0, 1.5, -1.0, 0.25, 0.125],
        vec![0.0; 8],
    ]);
    let json = serde_json::to_string(&pool).unwrap();
    let back: WeightPool = serde_json::from_str(&json).unwrap();
    assert_eq!(pool, back);
}

#[test]
fn lookup_table_round_trips_through_json() {
    let pool = WeightPool::from_vectors(vec![vec![0.5, -0.25, 0.125, 1.0]]);
    let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
    let json = serde_json::to_string(&lut).unwrap();
    let back: LookupTable = serde_json::from_str(&json).unwrap();
    assert_eq!(lut, back);
    // Codes must be identical entry by entry.
    for m in 0..lut.num_patterns() {
        assert_eq!(lut.code(0, m), back.code(0, m));
    }
}

#[test]
fn netspec_round_trips_through_json() {
    for net in specs::all_networks() {
        let json = serde_json::to_string(&net).unwrap();
        let back: NetSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(net, back);
        assert_eq!(net.params(), back.params());
    }
}

#[test]
fn model_state_round_trips_through_file() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut net = Sequential::new();
    net.push(Conv2d::new(3, 8, 3, 1, 1, &mut rng));
    net.push(Dense::new(8 * 4 * 4, 2, &mut rng));
    let dir = std::env::temp_dir().join("wp_integration_save");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    net.save(&path).unwrap();

    let x = Tensor::<f32>::full(&[1, 3, 4, 4], 0.5);
    let before = net.forward(&x, false);
    for p in net.params_mut() {
        p.value.data_mut().fill(0.0);
    }
    net.load(&path).unwrap();
    let after = net.forward(&x, false);
    assert_eq!(before, after);
    std::fs::remove_file(&path).ok();
}

#[test]
fn quant_params_round_trip_through_json() {
    let qp = QuantParams::symmetric_from_max_abs(1.5, 8);
    let uq = UnsignedQuantParams::from_max(4.0, 5);
    let r = Requantizer::from_real_multiplier(0.0173);
    let qp2: QuantParams = serde_json::from_str(&serde_json::to_string(&qp).unwrap()).unwrap();
    let uq2: UnsignedQuantParams =
        serde_json::from_str(&serde_json::to_string(&uq).unwrap()).unwrap();
    let r2: Requantizer = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
    assert_eq!(qp, qp2);
    assert_eq!(uq, uq2);
    assert_eq!(r, r2);
}

#[test]
fn tensor_round_trips_through_json() {
    let t = Tensor::from_vec(vec![1.0f32, -2.5, 3.25], &[3]);
    let back: Tensor<f32> = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
    assert_eq!(t, back);
}
