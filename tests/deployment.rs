//! Deployment-level integration: storage accounting vs flash placement,
//! fit/no-fit decisions, and CMSIS-vs-bit-serial latency ordering on the
//! full-size evaluation networks.

use rand::{Rng, SeedableRng};
use weight_pools::kernels::network::{flash_footprint, run_network, DeployMode};
use weight_pools::models::specs;
use weight_pools::pool::compression::{storage_report, CompressionConfig};
use weight_pools::prelude::*;

fn pool_and_lut(pool_size: usize) -> (WeightPool, LookupTable) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let vectors: Vec<Vec<f32>> =
        (0..pool_size).map(|_| (0..8).map(|_| rng.gen_range(-0.5f32..0.5)).collect()).collect();
    let pool = WeightPool::from_vectors(vectors);
    let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
    (pool, lut)
}

/// The storage report (wp-core) and the flash footprint (wp-kernels) are
/// independent implementations of the same accounting; their weight-side
/// numbers must agree (the footprint adds 4-byte biases the paper's CR
/// math ignores).
#[test]
fn storage_report_agrees_with_flash_footprint() {
    let (_pool, lut) = pool_and_lut(64);
    let cfg = CompressionConfig::paper_default(64);
    for net in specs::all_networks() {
        let report = storage_report(&net, &cfg);
        let mode = DeployMode::BitSerial { lut: &lut, opts: BitSerialOptions::paper_default(8) };
        let footprint = flash_footprint(&net, &mode);
        let bias_bytes: usize = net
            .layers
            .iter()
            .map(|l| match *l {
                weight_pools::pool::netspec::LayerSpec::Conv(c) => c.out_ch * 4,
                weight_pools::pool::netspec::LayerSpec::DwConv { channels, .. } => channels * 4,
                weight_pools::pool::netspec::LayerSpec::Dense { out_features, .. } => {
                    out_features * 4
                }
                _ => 0,
            })
            .sum();
        assert_eq!(
            footprint - bias_bytes,
            (report.compressed_bits / 8) as usize,
            "{}: footprint disagrees with storage report",
            net.name
        );
    }
}

/// Table 7's "/" cells: ResNet-14 and MobileNet-v2 overflow MC-large's
/// 1 MB flash as int8 networks but fit as weight pools.
#[test]
fn large_networks_fit_only_with_pools() {
    let (_pool, lut) = pool_and_lut(64);
    let device = McuSpec::mc_large();
    for name in ["ResNet-14", "MobileNet-v2"] {
        let net = specs::all_networks().into_iter().find(|n| n.name == name).unwrap();
        let int8 = flash_footprint(&net, &DeployMode::Cmsis);
        let pooled = flash_footprint(
            &net,
            &DeployMode::BitSerial { lut: &lut, opts: BitSerialOptions::paper_default(8) },
        );
        assert!(int8 > device.flash_bytes, "{name} unexpectedly fits as int8 ({int8} B)");
        assert!(pooled < device.flash_bytes, "{name} must fit as weight pool ({pooled} B)");
    }
}

/// TinyConv fits MC-small both ways; ResNet-s only fits once pooled.
///
/// Note a genuine inconsistency in the paper here: its own Table 3 gives
/// ResNet-s 170,928 8-bit weights (167 kB), which cannot fit the F103RB's
/// 128 kB flash from Table 2, yet Table 7 reports a CMSIS latency for it.
/// Strict byte accounting therefore marks ResNet-s/int8 as not fitting.
#[test]
fn small_networks_fit_mc_small() {
    let (_pool, lut) = pool_and_lut(64);
    let device = McuSpec::mc_small();
    let pooled_mode = DeployMode::BitSerial { lut: &lut, opts: BitSerialOptions::paper_default(8) };
    let tinyconv = specs::tinyconv();
    assert!(
        flash_footprint(&tinyconv, &DeployMode::Cmsis) <= device.flash_bytes,
        "TinyConv int8 should fit MC-small"
    );
    assert!(
        flash_footprint(&tinyconv, &pooled_mode) <= device.flash_bytes,
        "TinyConv pooled should fit MC-small"
    );
    let resnet_s = specs::resnet_s();
    assert!(
        flash_footprint(&resnet_s, &DeployMode::Cmsis) > device.flash_bytes,
        "ResNet-s int8 weights exceed 128 kB by the paper's own Table 3 count"
    );
    assert!(
        flash_footprint(&resnet_s, &pooled_mode) <= device.flash_bytes,
        "ResNet-s pooled should fit MC-small"
    );
}

/// Bit-serial weight pools beat the CMSIS baseline at 8 bits and scale
/// down with activation bitwidth (Table 7's column ordering), checked on
/// ResNet-s (small enough to simulate quickly).
#[test]
fn latency_ordering_matches_table7() {
    let (_p64, lut64) = pool_and_lut(64);
    let (_p32, lut32) = pool_and_lut(32);
    let device = McuSpec::mc_large();
    let net = specs::resnet_s();

    let cmsis = run_network(&device, &net, &DeployMode::Cmsis, 1).cycles;
    let bs = |lut: &LookupTable, bits: u8| {
        run_network(
            &device,
            &net,
            &DeployMode::BitSerial { lut, opts: BitSerialOptions::paper_default(bits) },
            1,
        )
        .cycles
    };
    let c64_8 = bs(&lut64, 8);
    let c32_8 = bs(&lut32, 8);
    let c64_4 = bs(&lut64, 4);
    let c32_4 = bs(&lut32, 4);

    assert!(c64_8 < cmsis, "64-8 ({c64_8}) should beat CMSIS ({cmsis})");
    assert!(c32_8 < c64_8, "pool 32 should beat pool 64 at 8 bits");
    assert!(c64_4 < c64_8, "4-bit should beat 8-bit");
    assert!(c32_4 < c32_8, "4-bit should beat 8-bit at pool 32");
}

/// Latency on the slower board is longer in seconds for the same network.
#[test]
fn mc_small_slower_in_wall_clock() {
    let net = specs::tinyconv();
    let large = run_network(&McuSpec::mc_large(), &net, &DeployMode::Cmsis, 2);
    let small = run_network(&McuSpec::mc_small(), &net, &DeployMode::Cmsis, 2);
    assert!(small.seconds > large.seconds);
}
