//! Smoke tests of the experiment harness: every table/figure generator must
//! run in fast mode and exhibit the paper's qualitative invariants.

use wp_bench::experiments;
use wp_bench::Effort;

fn fast() -> Effort {
    Effort { fast: true }
}

#[test]
fn table3_reports_expected_ordering() {
    let md = experiments::table3_compression();
    // Compression ratio must grow with network size: extract the CR column
    // for TinyConv (smallest) and ResNet-14 (largest).
    let cr = |name: &str| -> f64 {
        let line = md.lines().find(|l| l.contains(name)).unwrap();
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        cells[4].parse().unwrap()
    };
    assert!(cr("ResNet-14") > cr("ResNet-10"));
    assert!(cr("ResNet-10") > cr("ResNet-s"));
    assert!(cr("ResNet-s") > cr("TinyConv"));
    // ResNet CRs match the paper closely (architectures are exact).
    assert!((cr("ResNet-10") - 6.51).abs() < 0.15, "ResNet-10 CR {}", cr("ResNet-10"));
    assert!((cr("ResNet-14") - 7.55).abs() < 0.15, "ResNet-14 CR {}", cr("ResNet-14"));
}

#[test]
fn fig7_speedups_increase_with_filters() {
    let md = experiments::fig7_layer_optimizations(fast());
    let speedup = |filters: &str| -> (f64, f64) {
        let line = md
            .lines()
            .find(|l| l.trim_start().starts_with(&format!("| {filters}")))
            .unwrap_or_else(|| panic!("no row for {filters} in:\n{md}"));
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        (cells[2].parse().unwrap(), cells[3].parse().unwrap())
    };
    let (cache32, _) = speedup("32");
    let (cache64, pre64) = speedup("64");
    assert!(cache64 >= cache32, "caching speedup should grow with filters");
    assert!(pre64 > 0.5, "precompute column parses");
}

#[test]
fn fig8_speedup_monotone_in_bits() {
    let md = experiments::fig8_activation_speedup(fast());
    // The no-precompute column must increase monotonically as bits shrink.
    let mut values = Vec::new();
    for line in md.lines() {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        if cells.len() >= 4 {
            if let (Ok(bits), Ok(speedup)) = (cells[1].parse::<u8>(), cells[2].parse::<f64>()) {
                values.push((bits, speedup));
            }
        }
    }
    assert!(values.len() >= 6, "rows parsed from:\n{md}");
    for pair in values.windows(2) {
        assert!(pair[1].1 >= pair[0].1 * 0.98, "speedup should grow as bits shrink: {values:?}");
    }
    // 1-bit speedup is large but below the theoretical 8x.
    let one_bit = values.last().unwrap();
    assert_eq!(one_bit.0, 1);
    assert!((2.0..8.0).contains(&one_bit.1), "1-bit speedup {}", one_bit.1);
}

#[test]
fn lut_order_ablation_penalizes_weight_oriented() {
    let md = experiments::ablation_lut_order(fast());
    assert!(md.contains("Penalty"));
    // Penalty factor > 1.
    let line = md.lines().find(|l| l.contains('x') && l.starts_with("| 32")).unwrap();
    let cells: Vec<&str> = line.split('|').map(str::trim).collect();
    let penalty: f64 = cells[4].trim_end_matches('x').parse().unwrap();
    assert!(penalty > 1.0, "weight-oriented should cost more, got {penalty}");
}

#[test]
fn compression_formula_check_has_paper_example() {
    let md = experiments::compression_formula_check();
    assert!(md.contains("16.0"), "the 16 kB LUT example:\n{md}");
}
