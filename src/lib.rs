//! # Bit-serial Weight Pools
//!
//! A Rust reproduction of *"Bit-serial Weight Pools: Compression and
//! Arbitrary Precision Execution of Neural Networks on Resource Constrained
//! Processors"* (Li & Gupta, MLSys 2022).
//!
//! The framework has two halves, mirroring the paper's Figure 1:
//!
//! 1. **Compression (host side)** — group a trained CNN's conv weights into
//!    1×8 vectors along the channel dimension, cluster them into a small
//!    shared pool, fine-tune the index assignment, and generate the
//!    bit-serial dot-product lookup table ([`pool`], [`nn`], [`cluster`]).
//! 2. **Execution (device side)** — run compressed networks on
//!    microcontrollers with bit-serial lookup-table kernels supporting any
//!    activation bitwidth from 1 to 8, simulated here on a Cortex-M3-style
//!    cycle-cost model ([`kernels`], [`mcu`]).
//!
//! # Quickstart
//!
//! ```
//! use weight_pools::prelude::*;
//! use rand::SeedableRng;
//!
//! // A tiny CNN: stem (kept exact) + one poolable conv.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = Sequential::new();
//! net.push(Conv2d::new(3, 8, 3, 1, 1, &mut rng));
//! net.push(Relu::new());
//! net.push(Conv2d::new(8, 8, 3, 1, 1, &mut rng));
//!
//! // Compress: cluster z-vectors into a pool, project the model onto it.
//! let cfg = PoolConfig::new(8);
//! let pool = compress::build_pool(&mut net, &cfg, &mut rng)?;
//! let stats = compress::project(&mut net, &pool, &cfg);
//! assert_eq!(stats.layers_compressed, 1);
//!
//! // Generate the deployable lookup table (2^8 entries per pool vector).
//! let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
//! assert_eq!(lut.storage_bytes(), 256 * 8);
//! # Ok::<(), weight_pools::pool::PoolError>(())
//! ```
//!
//! See `examples/` for end-to-end walkthroughs (compression, MCU
//! deployment, precision sweeps) and `crates/bench` for the harness that
//! regenerates every table and figure of the paper's evaluation.

/// Weight pools, lookup tables, compression accounting (the paper's core).
pub use wp_core as pool;

/// K-means clustering (Euclidean + cosine).
pub use wp_cluster as cluster;

/// Synthetic datasets standing in for CIFAR-10 / Quickdraw-100.
pub use wp_data as data;

/// Native host-speed execution engine (bit-exact, threaded batch serving).
pub use wp_engine as engine;

/// Cost-model-instrumented MCU kernels (CMSIS baseline, bit-serial, BNN).
pub use wp_kernels as kernels;

/// Cortex-M3-style cycle-cost and memory simulator.
pub use wp_mcu as mcu;

/// The evaluation model zoo (full-size specs + trainable micro variants).
pub use wp_models as models;

/// The CNN training stack (layers with backward passes, SGD).
pub use wp_nn as nn;

/// Quantizers, activation-range search, fixed-point requantization.
pub use wp_quant as quant;

/// HTTP inference serving: micro-batching, model registry, metrics.
pub use wp_server as server;

/// Dense NCHW tensors and convolution geometry.
pub use wp_tensor as tensor;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use wp_core::compress;
    pub use wp_core::deploy::{ConvPayload, DeployBundle};
    pub use wp_core::netspec::NetSpec;
    pub use wp_core::reference::{ActEncoding, PooledConvShape};
    pub use wp_core::simulate;
    pub use wp_core::{LookupTable, LutOrder, PoolConfig, WeightPool};
    pub use wp_engine::{
        BackendKind, BatchRunner, EngineOptions, NativeBackend, PreparedNet, ResolvedBackend,
    };
    pub use wp_kernels::{conv_bitserial, BitSerialOptions, OutputQuant, PrecomputeMode};
    pub use wp_mcu::{Mcu, McuSpec};
    pub use wp_nn::train::{evaluate, train_epoch, Batch};
    pub use wp_nn::{
        BasicBlock, Conv2d, Dense, GlobalAvgPool, MaxPool2d, Relu, Sequential, Sgd,
        SoftmaxCrossEntropy,
    };
    pub use wp_quant::{QuantParams, Requantizer, UnsignedQuantParams};
    pub use wp_server::{serve, BatcherConfig, Metrics, ModelRegistry, ServerConfig, ServerHandle};
    pub use wp_tensor::{Conv2dGeometry, Shape, Tensor};
}
