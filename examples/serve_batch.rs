//! Batched, multi-threaded serving of a compressed network at host speed.
//!
//! The other examples execute through the cycle-accurate MCU simulator —
//! right for latency studies, far too slow for traffic. This one walks the
//! full deployment path (compress a model onto a pool, pack a
//! `DeployBundle`, reload it) and then serves a batch of inputs through
//! `wp_engine`'s native backend across worker threads, printing
//! images/sec per thread count and cross-checking that every thread count
//! produces identical outputs.
//!
//! ```sh
//! cargo run --release --example serve_batch
//! ```

use rand::SeedableRng;
use std::time::Instant;
use weight_pools::pool::netspec::{ConvSpec, LayerSpec};
use weight_pools::prelude::*;

fn main() {
    // --- Compress a small CNN onto a shared pool -------------------------
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut net = Sequential::new();
    net.push(Conv2d::new(3, 8, 3, 1, 1, &mut rng));
    net.push(Relu::new());
    net.push(Conv2d::new(8, 16, 3, 1, 1, &mut rng));
    net.push(Relu::new());
    net.push(Conv2d::new(16, 16, 3, 1, 1, &mut rng));

    let cfg = PoolConfig::new(16);
    let pool = compress::build_pool(&mut net, &cfg, &mut rng).expect("pool");
    compress::project(&mut net, &pool, &cfg);
    let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);

    let spec = NetSpec {
        name: "serve-demo".into(),
        input: (3, 16, 16),
        classes: 10,
        layers: vec![
            LayerSpec::Conv(ConvSpec {
                in_ch: 3,
                out_ch: 8,
                kernel: 3,
                stride: 1,
                pad: 1,
                compressed: false,
            }),
            LayerSpec::Conv(ConvSpec {
                in_ch: 8,
                out_ch: 16,
                kernel: 3,
                stride: 1,
                pad: 1,
                compressed: true,
            }),
            LayerSpec::Conv(ConvSpec {
                in_ch: 16,
                out_ch: 16,
                kernel: 3,
                stride: 1,
                pad: 1,
                compressed: true,
            }),
            LayerSpec::MaxPool { size: 2 },
            LayerSpec::GlobalAvgPool,
            LayerSpec::Dense { in_features: 16, out_features: 10, compressed: false },
        ],
    };
    let bundle = DeployBundle::from_model(&mut net, spec, &pool, lut, &cfg, 8);
    println!(
        "bundle: {} convs, {} B flash, {:.2} bits/index entropy",
        bundle.convs.len(),
        bundle.flash_bytes(),
        bundle.index_entropy_bits()
    );

    // --- Round-trip through disk, as a real deployment would -------------
    let path = std::env::temp_dir().join("wp_serve_batch_bundle.json");
    bundle.save(&path).expect("save bundle");
    let bundle = DeployBundle::load(&path).expect("load bundle");
    std::fs::remove_file(&path).ok();

    // --- Compile and serve ------------------------------------------------
    let prepared = PreparedNet::from_bundle(&bundle, &EngineOptions::default());
    let batch = 64;
    let inputs = prepared.fabricate_inputs(batch, 42);

    let reference = BatchRunner::new(1).run(&prepared, &inputs);
    println!("\nserving a {batch}-image batch:");
    for threads in [1usize, 2, 4, 8] {
        let runner = BatchRunner::new(threads);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            let out = runner.run(&prepared, &inputs);
            best = best.min(t.elapsed().as_secs_f64());
            assert_eq!(out, reference, "outputs must not depend on thread count");
        }
        println!("{threads:>2} threads: {:>10.1} images/sec", batch as f64 / best);
    }
    println!(
        "\noutputs identical across all thread counts; machine reports {} core(s)",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
}
