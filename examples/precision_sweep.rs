//! The runtime–accuracy tradeoff: sweep activation bitwidth on one
//! compressed network and print both simulated accuracy and simulated MCU
//! latency — the paper's headline capability ("arbitrary precision
//! execution", §3.3, Table 6 + Figure 8 combined).
//!
//! ```sh
//! cargo run --release --example precision_sweep
//! ```

use rand::SeedableRng;
use weight_pools::data::SyntheticSpec;
use weight_pools::kernels::network::{run_network, DeployMode};
use weight_pools::models::micro;
use weight_pools::pool::simulate::calibrate_and_arm;
use weight_pools::prelude::*;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);

    // Train a micro ResNet on the CIFAR-like task.
    let mut spec = SyntheticSpec::cifar_like(2, 3);
    spec.train_per_class = 80;
    spec.test_per_class = 25;
    let data = spec.generate();
    let mut built = micro::resnet_s(data.classes, &mut rng);
    let mut opt = Sgd::new(0.04).momentum(0.9).weight_decay(1e-4);
    for _ in 0..8 {
        train_epoch(&mut built.net, &mut opt, &data.train);
    }
    let float_acc = evaluate(&mut built.net, &data.test).accuracy;

    // Compress with a 64-vector pool and fine-tune.
    let cfg = PoolConfig::new(64);
    let pool = compress::build_pool(&mut built.net, &cfg, &mut rng).expect("pool");
    let mut ft = Sgd::new(0.01).momentum(0.9);
    compress::finetune(&mut built.net, &pool, &cfg, &mut ft, &data.train, 3);
    let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);

    // Latency reference: the full-size ResNet-s on MC-large.
    let full_spec = weight_pools::models::specs::resnet_s();
    let device = McuSpec::mc_large();

    println!("float accuracy: {:.1}%", float_acc * 100.0);
    println!();
    println!("act bits | sim accuracy | MC-large latency | speedup vs 8-bit");
    println!("---------|--------------|------------------|-----------------");
    let calib: Vec<Batch> = data.train.iter().take(2).cloned().collect();
    let mut base_latency = None;
    for bits in (2..=8u8).rev() {
        let install =
            calibrate_and_arm(&mut built.net, &pool, lut.clone(), &cfg, &calib, bits, false);
        // Accuracy on a subset for speed.
        let subset: Vec<Batch> = data.test.iter().take(4).cloned().collect();
        let acc = evaluate(&mut built.net, &subset).accuracy;
        install.uninstall(&mut built.net);

        let mode = DeployMode::BitSerial { lut: &lut, opts: BitSerialOptions::paper_default(bits) };
        let run = run_network(&device, &full_spec, &mode, 9);
        let base = *base_latency.get_or_insert(run.seconds);
        println!(
            "{bits:>8} | {:>11.1}% | {:>15.3}s | {:>15.2}x",
            acc * 100.0,
            run.seconds,
            base / run.seconds
        );
    }
    println!();
    println!(
        "Reducing activation bitwidth is a pure runtime knob: storage is\n\
         unchanged (weights live in the LUT), and the bit-serial loop simply\n\
         terminates earlier (paper S3.3)."
    );
}
