//! Storage planner: print the compression breakdown of every evaluation
//! network at a chosen pool size and LUT bitwidth.
//!
//! ```sh
//! cargo run --release --example compress_report            # defaults: 64, 8
//! cargo run --release --example compress_report -- 32 8    # pool 32
//! ```

use weight_pools::models::specs;
use weight_pools::pool::compression::{storage_report, CompressionConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pool_size: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(64);
    let lut_bits: u32 = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(8);

    let mut cfg = CompressionConfig::paper_default(pool_size);
    cfg.lut_bits = lut_bits;

    println!("pool size {pool_size}, {lut_bits}-bit LUT, byte indices, 8-bit baseline\n");
    println!(
        "{:>14} | {:>10} | {:>9} | {:>9} | {:>9} | {:>6} | {:>8}",
        "network", "weights", "idx kB", "LUT kB", "kept kB", "CR", "LUT %"
    );
    for net in specs::all_networks() {
        let r = storage_report(&net, &cfg);
        println!(
            "{:>14} | {:>10} | {:>9.1} | {:>9.1} | {:>9.1} | {:>6.2} | {:>8.1}",
            r.name,
            r.total_weights,
            r.index_bits_total as f64 / 8.0 / 1024.0,
            r.lut_bits_total as f64 / 8.0 / 1024.0,
            r.uncompressed_weight_bits as f64 / 8.0 / 1024.0,
            r.compression_ratio,
            r.lut_overhead * 100.0,
        );
    }
    println!(
        "\nCR = 8-bit baseline bits / (indices + LUT + uncompressed weights).\n\
         The LUT is a fixed cost, so compression improves with network size\n\
         (paper Table 3)."
    );
}
