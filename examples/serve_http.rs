//! Serving a weight-pool network over HTTP with dynamic micro-batching.
//!
//! The full serving path in one file: fabricate a deployable bundle,
//! calibrate per-layer requantization, register it, start the std-only
//! HTTP server on an ephemeral port, fire concurrent clients at it over
//! real sockets, verify bit-exactness against direct engine execution,
//! and read the metrics endpoint — then shut down cleanly.
//!
//! ```sh
//! cargo run --release --example serve_http
//! ```
//!
//! While it runs you can also poke the server from another terminal:
//!
//! ```sh
//! curl -s http://127.0.0.1:<printed port>/healthz
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use weight_pools::server::batcher::BatcherConfig;
use weight_pools::server::demo::{demo_deployment, DemoSize};
use weight_pools::server::metrics::Metrics;
use weight_pools::server::protocol::{InferRequest, InferResponse};
use weight_pools::server::registry::ModelRegistry;
use weight_pools::server::server::{serve, ServerConfig};
use weight_pools::server::MetricsSnapshot;

fn main() {
    // --- Deploy: bundle + calibrated engine options into the registry ----
    let (bundle, opts) = demo_deployment(DemoSize::Serve, 1);
    println!(
        "demo bundle: {} conv payloads, {} B flash, input {:?}",
        bundle.convs.len(),
        bundle.flash_bytes(),
        bundle.spec.input
    );
    let batcher = BatcherConfig {
        max_batch: 32,
        max_wait: Duration::from_millis(2),
        ..BatcherConfig::default()
    };
    let registry = Arc::new(ModelRegistry::new(batcher, Arc::new(Metrics::new())));
    registry.insert_bundle("demo", &bundle, opts);

    // --- Serve on an ephemeral loopback port ------------------------------
    let mut handle = serve(ServerConfig::default(), Arc::clone(&registry)).expect("bind");
    println!("serving on http://{} (try GET /healthz)", handle.addr());

    // --- Drive it: 16 concurrent clients, 128 requests --------------------
    let net = registry.get("demo").unwrap().net();
    let inputs = net.fabricate_inputs(128, 7);
    let expected: Vec<Vec<i32>> = inputs.iter().map(|x| net.run_one(x)).collect();
    let addr = handle.addr().to_string();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for (c, chunk) in inputs.chunks(8).enumerate() {
            let addr = &addr;
            let expected = &expected;
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut stream = BufReader::new(stream);
                for (i, input) in chunk.iter().enumerate() {
                    let body = serde_json::to_string(&InferRequest {
                        model: Some("demo".into()),
                        inputs: vec![input.clone()],
                    })
                    .unwrap();
                    write!(
                        stream.get_mut(),
                        "POST /v1/infer HTTP/1.1\r\nHost: demo\r\nContent-Length: {}\r\n\r\n{}",
                        body.len(),
                        body
                    )
                    .unwrap();
                    stream.get_mut().flush().unwrap();
                    let (status, body) = read_response(&mut stream);
                    assert_eq!(status, 200, "{body}");
                    let resp: InferResponse = serde_json::from_str(&body).unwrap();
                    assert_eq!(
                        resp.outputs,
                        vec![expected[c * 8 + i].clone()],
                        "coalesced responses must be bit-identical to solo execution"
                    );
                }
            });
        }
    });
    let elapsed = started.elapsed();
    println!(
        "served {} requests from 16 keep-alive connections in {:.2?} ({:.0} req/s)",
        inputs.len(),
        elapsed,
        inputs.len() as f64 / elapsed.as_secs_f64()
    );

    // --- Observe: the metrics endpoint ------------------------------------
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut stream = BufReader::new(stream);
    write!(stream.get_mut(), "GET /metrics HTTP/1.1\r\nHost: demo\r\n\r\n").unwrap();
    stream.get_mut().flush().unwrap();
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 200);
    let snap: MetricsSnapshot = serde_json::from_str(&body).unwrap();
    println!(
        "metrics: {} inferences in {} batches (mean batch {:.1}), request p50 {} us, p99 {} us",
        snap.inferences,
        snap.batches,
        snap.inferences as f64 / snap.batches.max(1) as f64,
        snap.request_latency.p50,
        snap.request_latency.p99
    );
    println!("batch-size histogram: {:?}", snap.batch_size_hist);
    for model in &snap.models {
        println!(
            "model {:?} ({}): {} inferences, queue p99 {} us",
            model.name, model.backend, model.inferences, model.queue_latency.p99
        );
    }

    // --- Shut down cleanly -------------------------------------------------
    handle.shutdown();
    println!("server drained and joined; all outputs bit-identical");
}

/// Reads one HTTP response, returning `(status, body)`.
fn read_response(stream: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut line = String::new();
    stream.read_line(&mut line).expect("status line");
    let status: u16 = line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status");
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        stream.read_line(&mut header).expect("header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((k, v)) = header.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().expect("length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8"))
}
