//! Deployment study: what fits and how fast does it run on the two
//! STM32-class microcontrollers from the paper's Table 2?
//!
//! Walks the full-size evaluation networks through the cycle-cost
//! simulator in CMSIS-int8 and bit-serial weight-pool modes and prints a
//! deployment report (latency, flash, SRAM).
//!
//! ```sh
//! cargo run --release --example deploy_mcu
//! ```

use rand::Rng;
use rand::SeedableRng;
use weight_pools::kernels::network::{flash_footprint, run_network, DeployMode};
use weight_pools::models::specs;
use weight_pools::prelude::*;

fn main() {
    // A synthetic 64-vector pool: runtime depends on shapes, not values.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let vectors: Vec<Vec<f32>> =
        (0..64).map(|_| (0..8).map(|_| rng.gen_range(-0.5f32..0.5)).collect()).collect();
    let pool = WeightPool::from_vectors(vectors);
    let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);

    for device in [McuSpec::mc_large(), McuSpec::mc_small()] {
        println!(
            "=== {} ({} MHz, {} kB SRAM, {} kB flash) ===",
            device.name,
            device.clock_hz / 1_000_000,
            device.sram_bytes / 1024,
            device.flash_bytes / 1024
        );
        for net in specs::all_networks() {
            // The big networks are pointless to simulate on the small buard's
            // flash budget; report the footprint and move on.
            let cmsis_mode = DeployMode::Cmsis;
            let bs_mode =
                DeployMode::BitSerial { lut: &lut, opts: BitSerialOptions::paper_default(8) };
            let cmsis_flash = flash_footprint(&net, &cmsis_mode);
            let bs_flash = flash_footprint(&net, &bs_mode);
            println!(
                "{:>14}: flash {:>8} B (int8) vs {:>7} B (pooled), {:.2}x smaller",
                net.name,
                cmsis_flash,
                bs_flash,
                cmsis_flash as f64 / bs_flash as f64
            );
            if cmsis_flash > device.flash_bytes && bs_flash > device.flash_bytes {
                println!("{:>14}  does not fit this device in either mode", "");
                continue;
            }
            if device.name.contains("small") && net.macs() > 30_000_000 {
                println!("{:>14}  (skipping latency simulation on the small target)", "");
                continue;
            }

            let cmsis = run_network(&device, &net, &cmsis_mode, 3);
            let bs = run_network(&device, &net, &bs_mode, 3);
            let cmsis_cell = if cmsis.fits_flash {
                format!("{:.2}s", cmsis.seconds)
            } else {
                "does not fit".to_string()
            };
            println!(
                "{:>14}  latency: int8 {} | bit-serial {:.2}s | SRAM peak {} kB",
                "",
                cmsis_cell,
                bs.seconds,
                bs.sram_peak / 1024
            );
        }
        println!();
    }
    println!(
        "The paper's headline: ResNet-14 and MobileNet-v2 do not fit a 1 MB\n\
         flash as int8 networks but do fit (and run) as weight pools, and\n\
         the bit-serial kernels beat the int8 baseline wherever both fit."
    );
}
