//! Bundle-format walkthrough: compress a model into a `DeployBundle`,
//! save it as JSON and as entropy-coded binary WPB, and prove the two
//! files deploy identically.
//!
//! ```sh
//! cargo run --release --example bundle_roundtrip
//! ```

use rand::SeedableRng;
use weight_pools::pool::deploy::codec::{index_stream_stats, Format};
use weight_pools::pool::netspec::{ConvSpec, LayerSpec};
use weight_pools::prelude::*;

fn main() {
    // --- Compress a small CNN onto an 8-vector pool --------------------
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut net = Sequential::new();
    net.push(Conv2d::new(3, 16, 3, 1, 1, &mut rng));
    net.push(Relu::new());
    net.push(Conv2d::new(16, 32, 3, 1, 1, &mut rng));
    net.push(Relu::new());
    net.push(Conv2d::new(32, 32, 3, 1, 1, &mut rng));
    let cfg = PoolConfig::new(8);
    let pool = compress::build_pool(&mut net, &cfg, &mut rng).expect("pool");
    compress::project(&mut net, &pool, &cfg);
    let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);

    let conv = |in_ch: usize, out_ch: usize, compressed: bool| {
        LayerSpec::Conv(ConvSpec { in_ch, out_ch, kernel: 3, stride: 1, pad: 1, compressed })
    };
    let spec = NetSpec {
        name: "roundtrip-demo".into(),
        input: (3, 8, 8),
        classes: 0,
        layers: vec![conv(3, 16, false), conv(16, 32, true), conv(32, 32, true)],
    };
    let bundle = DeployBundle::from_model(&mut net, spec, &pool, lut, &cfg, 8);

    // --- Save both formats; the extension picks the codec --------------
    let dir = std::env::temp_dir().join("wp_bundle_roundtrip");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json_path = dir.join("model.json");
    let wpb_path = dir.join("model.wpb");
    bundle.save(&json_path).expect("save json");
    bundle.save(&wpb_path).expect("save wpb");
    let json_bytes = std::fs::metadata(&json_path).unwrap().len();
    let wpb_bytes = std::fs::metadata(&wpb_path).unwrap().len();
    println!("json: {json_bytes:>7} bytes   {}", json_path.display());
    println!("wpb:  {wpb_bytes:>7} bytes   {}", wpb_path.display());
    println!("wpb is {:.2}x smaller", json_bytes as f64 / wpb_bytes as f64);

    // --- Where the coding gain comes from -------------------------------
    println!("\nper-layer index streams (coded vs entropy, bits/index):");
    for s in index_stream_stats(&bundle) {
        println!(
            "  conv {}: {:>5} indices  entropy {:.3}  coded {:.3}  {}",
            s.conv, s.count, s.entropy_bits, s.coded_bits, s.coding
        );
    }
    let flat_bits = (bundle.pool.len() as f64).log2();
    println!("  (flat coding would cost {flat_bits:.1} bits/index)");

    // --- Both files load back into bit-identical engines ----------------
    // `DeployBundle::load` / `PreparedNet::load` sniff the format from
    // the magic bytes, not the extension.
    let opts = EngineOptions::default();
    let from_json = PreparedNet::load(&json_path, &opts).expect("load json");
    let from_wpb = PreparedNet::load(&wpb_path, &opts).expect("load wpb");
    let inputs = from_json.fabricate_inputs(4, 42);
    for input in &inputs {
        assert_eq!(from_json.run_one(input), from_wpb.run_one(input));
    }
    println!("\nengine outputs bit-identical across formats on {} inputs", inputs.len());

    // Also provable without touching the engine: both byte streams decode
    // to the very same bundle.
    assert_eq!(
        DeployBundle::from_bytes(&bundle.to_bytes(Format::Json).unwrap()).unwrap(),
        DeployBundle::from_bytes(&bundle.to_bytes(Format::Wpb).unwrap()).unwrap(),
    );
    println!("decoded bundles compare equal");

    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&wpb_path).ok();
}
