//! Quickstart: train a small CNN, compress it with a bit-serial weight
//! pool, and compare float / weight-pool / bit-serial-LUT accuracy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use weight_pools::pool::simulate::calibrate_and_arm;
use weight_pools::prelude::*;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // --- 1. data: a CIFAR-shaped synthetic task -------------------------
    let mut spec = weight_pools::data::SyntheticSpec::cifar_like(2, 7);
    spec.train_per_class = 80;
    spec.test_per_class = 30;
    let data = spec.generate();
    println!(
        "dataset: {} classes, {} train / {} test images of {}x{}x{}",
        data.classes,
        data.train_len(),
        data.test_len(),
        data.channels,
        data.height,
        data.width
    );

    // --- 2. model: a small residual CNN ---------------------------------
    let mut net = Sequential::new();
    net.push(Conv2d::new(3, 16, 3, 1, 1, &mut rng)); // stem: kept exact
    net.push(Relu::new());
    net.push(BasicBlock::new(16, 16, 1, &mut rng));
    net.push(BasicBlock::new(16, 32, 2, &mut rng));
    net.push(GlobalAvgPool::new());
    net.push(Dense::new(32, data.classes, &mut rng));

    // --- 3. train --------------------------------------------------------
    let mut opt = Sgd::new(0.04).momentum(0.9).weight_decay(1e-4);
    for epoch in 0..8 {
        let stats = train_epoch(&mut net, &mut opt, &data.train);
        println!(
            "epoch {epoch}: loss {:.3}, train accuracy {:.1}%",
            stats.loss,
            stats.accuracy * 100.0
        );
    }
    let float_acc = evaluate(&mut net, &data.test).accuracy;
    println!("float test accuracy: {:.1}%", float_acc * 100.0);

    // --- 4. compress: build a 64-vector pool and fine-tune ---------------
    let cfg = PoolConfig::new(64);
    let pool = compress::build_pool(&mut net, &cfg, &mut rng).expect("pool");
    let stats = compress::project(&mut net, &pool, &cfg);
    println!(
        "projected {} conv layers ({} weight vectors) onto a {}-vector pool, mse {:.2e}",
        stats.layers_compressed,
        stats.vectors_replaced,
        pool.len(),
        stats.mse
    );
    let projected_acc = evaluate(&mut net, &data.test).accuracy;

    let mut ft_opt = Sgd::new(0.01).momentum(0.9);
    compress::finetune(&mut net, &pool, &cfg, &mut ft_opt, &data.train, 3);
    let finetuned_acc = evaluate(&mut net, &data.test).accuracy;
    println!(
        "weight-pool accuracy: {:.1}% after projection, {:.1}% after fine-tuning",
        projected_acc * 100.0,
        finetuned_acc * 100.0
    );

    // --- 5. deploy-side numerics: bit-serial lookup-table simulation -----
    let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
    println!(
        "lookup table: {} entries x {} vectors at {} bits = {} bytes",
        lut.num_patterns(),
        lut.pool_size(),
        lut.bits(),
        lut.storage_bytes()
    );
    let calib: Vec<Batch> = data.train.iter().take(2).cloned().collect();
    for act_bits in [8u8, 4] {
        let install =
            calibrate_and_arm(&mut net, &pool, lut.clone(), &cfg, &calib, act_bits, false);
        let acc = evaluate(&mut net, &data.test).accuracy;
        install.uninstall(&mut net);
        println!(
            "bit-serial execution at {act_bits}-bit activations: {:.1}% accuracy",
            acc * 100.0
        );
    }
}
