//! Criterion benchmarks of the native execution engine: single-layer
//! native vs. cycle-simulated execution, and batched whole-network
//! throughput across worker-thread counts. The printable summary version
//! of the same measurements is `cargo run --release --bin
//! engine_throughput -p wp_bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use wp_bench::runtime::synthetic_lut;
use wp_core::reference::{ActEncoding, PooledConvShape};
use wp_engine::{BatchRunner, NativeBackend};
use wp_kernels::{conv_bitserial, BitSerialOptions, OutputQuant};
use wp_mcu::{Mcu, McuSpec};
use wp_quant::Requantizer;

fn layer() -> (PooledConvShape, Vec<i32>, Vec<u8>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let shape =
        PooledConvShape { in_ch: 32, out_ch: 32, kernel: 3, stride: 1, pad: 1, in_h: 16, in_w: 16 };
    let codes: Vec<i32> =
        (0..shape.in_ch * shape.in_h * shape.in_w).map(|_| rng.gen_range(0..256)).collect();
    let indices: Vec<u8> = (0..shape.index_count(8)).map(|_| rng.gen_range(0..64) as u8).collect();
    (shape, codes, indices)
}

fn bench_native_vs_simulated(c: &mut Criterion) {
    let (shape, codes, indices) = layer();
    let (_pool, lut) = synthetic_lut(64, 8, 1);
    let backend = NativeBackend::new(&lut, 8, ActEncoding::Unsigned);
    let bias = vec![0i32; shape.out_ch];
    let oq =
        OutputQuant { requant: Requantizer::from_real_multiplier(2e-4), relu: true, out_bits: 8 };
    let opts = BitSerialOptions::paper_default(8);

    let mut group = c.benchmark_group("conv_32x16x16_pool64");
    group.sample_size(20);
    group.bench_function("native", |b| b.iter(|| backend.conv_pooled(&codes, &shape, &indices)));
    group.bench_function("simulated", |b| {
        b.iter(|| {
            let mut mcu = Mcu::new(McuSpec::mc_large());
            conv_bitserial(&mut mcu, &codes, &shape, &indices, &lut, &bias, &oq, &opts)
        })
    });
    group.finish();
}

fn bench_batch_threads(c: &mut Criterion) {
    let net = wp_bench::runtime::synthetic_prepared_net(64, 3);
    let inputs = net.fabricate_inputs(32, 11);
    let mut group = c.benchmark_group("batch32_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let runner = BatchRunner::new(t);
            b.iter(|| runner.run(&net, &inputs))
        });
    }
    group.finish();
}

criterion_group!(
    name = engine;
    config = Criterion::default().sample_size(10);
    targets = bench_native_vs_simulated, bench_batch_threads
);
criterion_main!(engine);
