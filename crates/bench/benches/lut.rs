//! Criterion benchmarks of the compression-side pipeline: LUT generation,
//! pool clustering and model projection (host-side costs in Figure 1's
//! offline phase).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use wp_core::{LookupTable, LutOrder, PoolConfig, WeightPool};

fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-0.5f32..0.5)).collect()).collect()
}

fn bench_lut_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("lut_build");
    for pool_size in [32usize, 64, 128] {
        let pool = WeightPool::from_vectors(random_vectors(pool_size, 8, 1));
        group.bench_with_input(BenchmarkId::from_parameter(pool_size), &pool, |b, pool| {
            b.iter(|| LookupTable::build(pool, 8, LutOrder::InputOriented))
        });
    }
    group.finish();
}

fn bench_pool_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_pool_build");
    group.sample_size(10);
    for n in [1024usize, 4096] {
        let samples = random_vectors(n, 8, 2);
        let cfg = PoolConfig::new(64).kmeans_iters(20);
        group.bench_with_input(BenchmarkId::from_parameter(n), &samples, |b, samples| {
            b.iter(|| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(3);
                WeightPool::build(samples, &cfg, &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_assignment(c: &mut Criterion) {
    let pool = WeightPool::from_vectors(random_vectors(64, 8, 4));
    let samples = random_vectors(4096, 8, 5);
    c.bench_function("assign_4096_vectors", |b| {
        b.iter(|| {
            pool.assign_all(std::hint::black_box(&samples), wp_cluster::DistanceMetric::Cosine)
        })
    });
}

criterion_group!(
    name = lut;
    config = Criterion::default().sample_size(20);
    targets = bench_lut_build, bench_pool_clustering, bench_assignment
);
criterion_main!(lut);
