//! Criterion microbenchmarks of the instrumented kernels: wall-clock time
//! of the simulator itself plus, more importantly, a harness that reports
//! the *simulated cycle counts* driving Figures 7/8 and Table 7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wp_bench::runtime::{synthetic_lut, LayerBench};
use wp_core::reference::PooledConvShape;
use wp_kernels::cmsis::conv_cmsis;
use wp_kernels::{conv_bitserial, BitSerialOptions, OutputQuant, PrecomputeMode};
use wp_mcu::{Mcu, McuSpec};

fn bench_bitserial_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitserial_conv_16x16x64");
    let bench = LayerBench { channels: 64, hw: 16, pool_size: 64 };
    let variants: [(&str, BitSerialOptions); 3] = [
        (
            "baseline",
            BitSerialOptions {
                lut_cache: false,
                precompute: PrecomputeMode::ForceOff,
                ..BitSerialOptions::paper_default(8)
            },
        ),
        (
            "lut_cache",
            BitSerialOptions {
                precompute: PrecomputeMode::ForceOff,
                ..BitSerialOptions::paper_default(8)
            },
        ),
        (
            "cache_precompute",
            BitSerialOptions {
                precompute: PrecomputeMode::ForceOn,
                ..BitSerialOptions::paper_default(8)
            },
        ),
    ];
    for (name, opts) in variants {
        // Print the simulated cycles once per variant so `cargo bench`
        // output doubles as a Figure 7 datapoint dump.
        let cycles = bench.run_bitserial(&opts, 7);
        eprintln!("[cycles] bitserial 64f/{name}: {cycles}");
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, opts| {
            b.iter(|| bench.run_bitserial(std::hint::black_box(opts), 7))
        });
    }
    group.finish();
}

fn bench_act_bits(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitserial_act_bits");
    let bench = LayerBench { channels: 32, hw: 8, pool_size: 32 };
    for bits in [1u8, 4, 8] {
        let opts = BitSerialOptions {
            precompute: PrecomputeMode::ForceOff,
            ..BitSerialOptions::paper_default(bits)
        };
        let cycles = bench.run_bitserial(&opts, 8);
        eprintln!("[cycles] bitserial {bits}-bit: {cycles}");
        group.bench_with_input(BenchmarkId::from_parameter(bits), &opts, |b, opts| {
            b.iter(|| bench.run_bitserial(std::hint::black_box(opts), 8))
        });
    }
    group.finish();
}

fn bench_cmsis_baseline(c: &mut Criterion) {
    let shape =
        PooledConvShape { in_ch: 32, out_ch: 32, kernel: 3, stride: 1, pad: 1, in_h: 16, in_w: 16 };
    let codes = vec![1i32; 32 * 256];
    let weights = vec![1i8; 32 * 32 * 9];
    let bias = vec![0i32; 32];
    let oq = OutputQuant::identity(8);
    let mut mcu = Mcu::new(McuSpec::mc_large());
    conv_cmsis(&mut mcu, &codes, &shape, &weights, &bias, &oq);
    eprintln!("[cycles] cmsis 32f 3x3 16x16: {}", mcu.cycles());

    c.bench_function("cmsis_conv_16x16x32", |b| {
        b.iter(|| {
            let mut mcu = Mcu::new(McuSpec::mc_large());
            conv_cmsis(&mut mcu, std::hint::black_box(&codes), &shape, &weights, &bias, &oq);
            mcu.cycles()
        })
    });
}

fn bench_bitserial_vs_cmsis_cycles(c: &mut Criterion) {
    // Not only a wall-clock benchmark: report the simulated-cycle ratio the
    // paper's Table 7 is about, on one mid-size layer.
    let bench = LayerBench { channels: 64, hw: 16, pool_size: 64 };
    let shape = bench.shape();
    let codes = vec![1i32; shape.in_ch * 256];
    let weights = vec![1i8; shape.out_ch * shape.in_ch * 9];
    let bias = vec![0i32; shape.out_ch];
    let oq = OutputQuant::identity(8);
    let mut mcu = Mcu::new(McuSpec::mc_large());
    conv_cmsis(&mut mcu, &codes, &shape, &weights, &bias, &oq);
    let cmsis_cycles = mcu.cycles();
    let (_pool, lut) = synthetic_lut(64, 8, 3);
    let mut mcu2 = Mcu::new(McuSpec::mc_large());
    let indices = vec![0u8; shape.index_count(8)];
    conv_bitserial(
        &mut mcu2,
        &codes,
        &shape,
        &indices,
        &lut,
        &bias,
        &oq,
        &BitSerialOptions::paper_default(8),
    );
    eprintln!(
        "[cycles] 64f layer: cmsis {} vs bitserial {} => speedup {:.2}x",
        cmsis_cycles,
        mcu2.cycles(),
        cmsis_cycles as f64 / mcu2.cycles() as f64
    );
    c.bench_function("table7_single_layer_pair", |b| {
        b.iter(|| {
            let mut m = Mcu::new(McuSpec::mc_large());
            conv_bitserial(
                &mut m,
                std::hint::black_box(&codes),
                &shape,
                &indices,
                &lut,
                &bias,
                &oq,
                &BitSerialOptions::paper_default(8),
            );
            m.cycles()
        })
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets =
        bench_bitserial_variants,
        bench_act_bits,
        bench_cmsis_baseline,
        bench_bitserial_vs_cmsis_cycles
);
criterion_main!(kernels);
