//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section.
//!
//! Each experiment is a library function returning a rendered report (so it
//! is testable and composable); the `src/bin/*` binaries are thin wrappers.
//! `run_all` executes everything and writes the measured results used by
//! `EXPERIMENTS.md`.
//!
//! Experiments come in two families:
//!
//! * **Accuracy** (Tables 1/4/5/6, Figure 4, §5.5): train micro models on
//!   synthetic datasets, compress with weight pools, fine-tune, and
//!   evaluate — optionally through the bit-serial LUT simulation.
//!   Absolute accuracies differ from the paper (different data, scaled
//!   models); the *deltas and trends* are the reproduction target.
//! * **Runtime** (Table 7, Figures 7/8, §4 claims): run the instrumented
//!   kernels on the cycle-cost MCU simulator at full network scale.

pub mod accuracy;
pub mod experiments;
pub mod runtime;
pub mod table;

/// Global effort level for experiments: `fast` shrinks training epochs and
/// evaluation subsets for smoke testing; full runs reproduce the shapes
/// with tighter noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Effort {
    /// Reduced-effort mode.
    pub fast: bool,
}

impl Effort {
    /// Reads effort from the process arguments/environment: `--fast` or
    /// `WP_FAST=1` selects fast mode.
    pub fn from_env() -> Self {
        let fast = std::env::args().any(|a| a == "--fast")
            || std::env::var("WP_FAST").map(|v| v == "1").unwrap_or(false);
        Self { fast }
    }

    /// Base-training epochs.
    pub fn train_epochs(&self) -> usize {
        if self.fast {
            4
        } else {
            10
        }
    }

    /// Pool fine-tuning epochs.
    pub fn finetune_epochs(&self) -> usize {
        if self.fast {
            2
        } else {
            3
        }
    }

    /// Cap on test images for simulation-based (bit-serial) evaluations.
    pub fn sim_eval_images(&self) -> usize {
        if self.fast {
            48
        } else {
            160
        }
    }

    /// Cap on test images for plain float evaluations.
    pub fn eval_images(&self) -> usize {
        if self.fast {
            200
        } else {
            usize::MAX
        }
    }
}
