//! Minimal markdown table rendering for experiment reports.

/// A titled markdown table accumulated row by row.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a footnote rendered under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as column-aligned markdown.
    pub fn to_markdown(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for i in 0..cols {
                line.push_str(&format!(" {:width$} |", cells[i], width = widths[i]));
            }
            line
        };
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("\n*{note}*\n"));
        }
        out
    }
}

/// Formats a float with `prec` decimals.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats an accuracy fraction as a percentage with one decimal.
pub fn pct(x: f32) -> String {
    format!("{:.1}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "22.5".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| alpha | 1     |"), "got:\n{md}");
        assert!(md.contains("|-------|-------|"), "got:\n{md}");
    }

    #[test]
    fn notes_are_appended() {
        let mut t = Table::new("T", &["a"]);
        t.row(&["1".into()]);
        t.note("caveat");
        assert!(t.to_markdown().contains("*caveat*"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.2345, 2), "1.23");
        assert_eq!(pct(0.9137), "91.4");
    }
}
