//! Regenerates the paper's table3 compression result. Pass `--fast` for a quick
//! smoke run.

fn main() {
    let effort = wp_bench::Effort::from_env();
    let _ = effort;
    println!("{}", wp_bench::experiments::table3_compression());
}
