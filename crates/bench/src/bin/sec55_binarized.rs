//! Regenerates the paper's sec55 binarized result. Pass `--fast` for a quick
//! smoke run.

fn main() {
    let effort = wp_bench::Effort::from_env();
    let _ = effort;
    println!("{}", wp_bench::experiments::sec55_binarized(effort));
}
