//! Regenerates the ablation lut order study. Pass `--fast` for a quick smoke run.

fn main() {
    let effort = wp_bench::Effort::from_env();
    println!("{}", wp_bench::experiments::ablation_lut_order(effort));
}
