//! Runs every experiment and writes the combined report to
//! `experiments_output.md` in the current directory. Pass `--fast` for a
//! quick smoke run.

fn main() {
    let effort = wp_bench::Effort::from_env();
    let report = wp_bench::experiments::run_all(effort);
    println!("{report}");
    let path = "experiments_output.md";
    if let Err(e) = std::fs::write(path, &report) {
        eprintln!("could not write {path}: {e}");
    } else {
        eprintln!("[run_all] report written to {path}");
    }
}
