//! Native engine throughput report: the committed benchmark behind the
//! engine's two headline claims.
//!
//! 1. **Native vs. simulated**: the same pooled conv layer executed by
//!    `wp_engine::NativeBackend` and by the cycle-accurate `wp_kernels`
//!    path (both produce identical codes; only wall-clock differs).
//! 2. **Batch scaling**: whole-network images/sec through
//!    `wp_engine::BatchRunner` at increasing worker-thread counts.
//! 3. **Batched vs solo** whole-network execution on one thread.
//! 4. **Backend tiers**: the same serving demos A/B'd across the
//!    `scalar` / `swar` / `avx2` kernel tiers, outputs verified
//!    bit-identical, with the ≥2x swar-over-scalar acceptance gate
//!    (pooled-conv and batched tile sections) enforced at exit.
//! 5. **Batched popcount vs int8 tiles**: both serving demos at
//!    `act_bits` {1, 2, 3, 4}, the same tier with the bit-plane popcount
//!    routing disabled vs enabled, outputs verified bit-identical, with
//!    a ≥1.5x popcount-over-int8 gate on the best regime.
//! 6. **Tracing overhead + profile**: the serving demo with and without
//!    the engine's aggregate [`wp_engine::NetProfile`] attached — the
//!    profile-off run must match the plain tier numbers — plus the
//!    per-layer share breakdown (`--profile` prints the full table).
//!
//! ```sh
//! cargo run --release --bin engine_throughput -p wp_bench \
//!     [-- --fast] [-- --profile] [-- --out BENCH_engine.json]
//! ```

use rand::{Rng, SeedableRng};
use std::time::Instant;
use wp_bench::runtime::{synthetic_lut, synthetic_prepared_net};
use wp_bench::Effort;
use wp_core::reference::{ActEncoding, PooledConvShape};
use wp_engine::{avx2_available, BackendKind, BatchRunner, NativeBackend, PreparedNet};
use wp_kernels::{conv_bitserial, BitSerialOptions, OutputQuant};
use wp_mcu::{Mcu, McuSpec};
use wp_quant::Requantizer;

fn main() {
    let effort = Effort::from_env();
    let reps = if effort.fast { 3 } else { 10 };
    let mut out_path: Option<String> = None;
    let mut show_profile = false;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        if flag == "--out" {
            out_path = Some(argv.next().expect("--out needs a value"));
        } else if flag == "--profile" {
            show_profile = true;
        }
    }

    // --- 1. Single layer: native vs cycle-simulated -----------------------
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let shape =
        PooledConvShape { in_ch: 32, out_ch: 32, kernel: 3, stride: 1, pad: 1, in_h: 16, in_w: 16 };
    let (_pool, lut) = synthetic_lut(64, 8, 1);
    let codes: Vec<i32> =
        (0..shape.in_ch * shape.in_h * shape.in_w).map(|_| rng.gen_range(0..256)).collect();
    let indices: Vec<u8> = (0..shape.index_count(8)).map(|_| rng.gen_range(0..64) as u8).collect();
    let bias = vec![0i32; shape.out_ch];
    let oq =
        OutputQuant { requant: Requantizer::from_real_multiplier(2e-4), relu: true, out_bits: 8 };
    let opts = BitSerialOptions::paper_default(8);
    let backend = NativeBackend::new(&lut, 8, ActEncoding::Unsigned);

    let mut sim_best = f64::INFINITY;
    let mut native_best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let mut mcu = Mcu::new(McuSpec::mc_large());
        let sim = conv_bitserial(&mut mcu, &codes, &shape, &indices, &lut, &bias, &oq, &opts);
        sim_best = sim_best.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        let acc = backend.conv_pooled(&codes, &shape, &indices);
        native_best = native_best.min(t.elapsed().as_secs_f64());

        let native: Vec<i32> = acc.iter().map(|&a| oq.apply_value(a)).collect();
        assert_eq!(native, sim, "native and simulated paths must agree bit-for-bit");
    }
    println!("== Single pooled conv (32x16x16, pool 64, 8-bit) ==");
    println!("simulated (Mcu):  {:>9.3} ms", sim_best * 1e3);
    println!("native  (engine): {:>9.3} ms", native_best * 1e3);
    println!("speedup:          {:>9.1}x  (outputs verified identical)", sim_best / native_best);
    println!();

    // --- 2. Whole-network batch throughput vs worker threads --------------
    let net = synthetic_prepared_net(64, 3);
    let batch = if effort.fast { 16 } else { 64 };
    let inputs = net.fabricate_inputs(batch, 9);
    println!("== Batch throughput (3-conv net, {batch}-image batch) ==");
    let mut base = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let runner = BatchRunner::new(threads);
        let mut best = f64::INFINITY;
        for _ in 0..reps.min(5) {
            let t = Instant::now();
            let out = runner.run(&net, &inputs);
            best = best.min(t.elapsed().as_secs_f64());
            assert_eq!(out.len(), batch);
        }
        let ips = batch as f64 / best;
        if threads == 1 {
            base = ips;
        }
        println!("{threads:>2} threads: {ips:>10.1} images/sec  ({:.2}x vs 1 thread)", ips / base);
    }
    println!();
    println!(
        "(Thread scaling tracks physical cores; this machine reports {}.)",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    println!();

    // --- 3. Batched vs solo whole-network execution ----------------------
    // The serving path: `PreparedNet::run_batch` executes every layer
    // through its Kernel::run_batch entry point, amortizing each
    // weight/tap decode across the batch, on a single thread — this is
    // what the server's micro-batcher buys over per-request execution,
    // before any thread parallelism. Both serving regimes are measured:
    // the scatter-heavy pooled demo and the stem-heavy direct/dw/dense
    // demo (the batched kernels this harness used to lack).
    for (label, size) in [
        ("scatter-heavy serving demo", wp_server::demo::DemoSize::Serve),
        ("stem-heavy serving demo", wp_server::demo::DemoSize::Stem),
    ] {
        let net = wp_server::demo::demo_prepared(size, 1);
        println!("== Batched vs solo execution ({label}, 1 thread) ==");
        for batch in [1usize, 8, 32] {
            let inputs = net.fabricate_inputs(batch, 5);
            let refs: Vec<&[i32]> = inputs.iter().map(|x| x.as_slice()).collect();
            let solo_out: Vec<Vec<i32>> = inputs.iter().map(|x| net.run_one(x)).collect();
            assert_eq!(net.run_batch(&refs), solo_out, "batched must be bit-identical");
            let mut solo = f64::INFINITY;
            let mut batched = f64::INFINITY;
            for _ in 0..reps.min(5) {
                let t = Instant::now();
                for x in &inputs {
                    std::hint::black_box(net.run_one(x));
                }
                solo = solo.min(t.elapsed().as_secs_f64());
                let t = Instant::now();
                std::hint::black_box(net.run_batch(&refs));
                batched = batched.min(t.elapsed().as_secs_f64());
            }
            println!(
                "batch {batch:>2}: solo {:>8.1} img/s  batched {:>8.1} img/s  ({:.2}x, outputs identical)",
                batch as f64 / solo,
                batch as f64 / batched,
                solo / batched
            );
        }
        println!();
    }

    // --- 4. Backend tiers: scalar vs swar (vs avx2) -----------------------
    // The backend-selection A/B: the same serving demos compiled per
    // kernel tier via EngineOptions::with_backend, run through the plain
    // run_batch serving path on one thread. The scalar tier executes the
    // reference per-element loops per image; swar adds the bit-plane
    // fills, the weight-stationary batched tile kernels with fused
    // bias+requant write-out, and batched pooling; avx2 routes popcount
    // inner loops through 256-bit lanes. Outputs must be bit-identical
    // across every tier, and the acceptance gate pins swar >= 2x scalar
    // on both serving regimes.
    let ab_batch = if effort.fast { 16 } else { 64 };
    let mut kinds = vec![BackendKind::Scalar, BackendKind::Swar];
    if avx2_available() {
        kinds.push(BackendKind::Avx2);
    }
    let mut sections = Vec::new(); // (key, Vec<(name, img/s)>)
    for (label, key, size) in [
        ("pooled-conv serving demo", "pooled_conv", wp_server::demo::DemoSize::Serve),
        ("batched tile (stem) demo", "tile_kernels", wp_server::demo::DemoSize::Stem),
    ] {
        let (bundle, opts) = wp_server::demo::demo_deployment(size, 1);
        println!("== Backend tiers ({label}, batch {ab_batch}, 1 thread) ==");
        let mut rates: Vec<(&'static str, f64)> = Vec::new();
        let mut reference: Option<Vec<Vec<i32>>> = None;
        for &kind in &kinds {
            let net = PreparedNet::from_bundle(&bundle, &opts.clone().with_backend(kind));
            let inputs = net.fabricate_inputs(ab_batch, 5);
            let refs: Vec<&[i32]> = inputs.iter().map(|x| x.as_slice()).collect();
            let out = net.run_batch(&refs);
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "{} outputs must be bit-identical", kind),
            }
            let mut best = f64::INFINITY;
            for _ in 0..reps.min(5) {
                let t = Instant::now();
                std::hint::black_box(net.run_batch(&refs));
                best = best.min(t.elapsed().as_secs_f64());
            }
            let name = net.backend_kind().name();
            let ips = ab_batch as f64 / best;
            println!("{name:>7}: {ips:>10.1} images/sec");
            rates.push((name, ips));
        }
        let scalar = rates[0].1;
        let swar = rates[1].1;
        println!("swar vs scalar: {:.2}x  (outputs verified identical)", swar / scalar);
        println!();
        sections.push((key, rates));
    }

    // --- 5. Batched bit-plane popcount vs int8 tiles ----------------------
    // At act_bits <= POPCOUNT_BATCH_MAX_BITS the direct-conv and dense
    // kernels route batches through the 8-lane bit-plane popcount tiles:
    // each packed weight-plane word is loaded once and AND+popcounted
    // against all eight images' activation planes. The A/B compiles the
    // same demo twice on the auto-resolved tier — popcount routing
    // disabled (with_popcount_max_bits(0), the int8 batched tile path)
    // vs enabled — with bit-identical outputs required, and the exit
    // gate pins the popcount win at >=1.5x on at least one regime.
    let mut popcount_rows: Vec<String> = Vec::new();
    let mut popcount_best = 0.0f64;
    for (label, key, size) in [
        ("scatter-heavy serving demo", "serve", wp_server::demo::DemoSize::Serve),
        ("stem-heavy serving demo", "stem", wp_server::demo::DemoSize::Stem),
    ] {
        let (bundle, opts) = wp_server::demo::demo_deployment(size, 1);
        println!("== Batched popcount vs int8 tiles ({label}, batch {ab_batch}, 1 thread) ==");
        let mut bits_rows: Vec<String> = Vec::new();
        for bits in [1u8, 2, 3, 4] {
            let tile_net = PreparedNet::from_bundle(
                &bundle,
                &opts.clone().with_act_bits(bits).with_popcount_max_bits(0),
            );
            let pop_net = PreparedNet::from_bundle(
                &bundle,
                &opts.clone().with_act_bits(bits).with_popcount_max_bits(bits),
            );
            let inputs = tile_net.fabricate_inputs(ab_batch, 5);
            let refs: Vec<&[i32]> = inputs.iter().map(|x| x.as_slice()).collect();
            let expected = tile_net.run_batch(&refs);
            assert_eq!(
                pop_net.run_batch(&refs),
                expected,
                "popcount routing must be bit-identical at act_bits {bits}"
            );
            let mut tile = f64::INFINITY;
            let mut pop = f64::INFINITY;
            for _ in 0..reps.min(5) {
                let t = Instant::now();
                std::hint::black_box(tile_net.run_batch(&refs));
                tile = tile.min(t.elapsed().as_secs_f64());
                let t = Instant::now();
                std::hint::black_box(pop_net.run_batch(&refs));
                pop = pop.min(t.elapsed().as_secs_f64());
            }
            let tile_ips = ab_batch as f64 / tile;
            let pop_ips = ab_batch as f64 / pop;
            let ratio = tile / pop;
            popcount_best = popcount_best.max(ratio);
            println!(
                "act_bits {bits}: int8 tile {tile_ips:>9.1} img/s  popcount {pop_ips:>9.1} img/s  ({ratio:.2}x, outputs identical)"
            );
            bits_rows.push(format!(
                "\"{bits}\":{{\"int8_tile\":{tile_ips:.1},\"popcount\":{pop_ips:.1},\"ratio\":{ratio:.2}}}"
            ));
        }
        println!();
        popcount_rows.push(format!("\"{key}\":{{{}}}", bits_rows.join(",")));
    }

    // --- 5. Tracing overhead + per-layer profile --------------------------
    // The observability gate: the aggregate profile is a handful of
    // relaxed atomic adds per layer span when attached and a single
    // Option check per run when not, so the profile-off path must sit
    // within noise of the plain serving numbers and the profile-on path
    // within a couple percent of profile-off. The resulting per-layer
    // shares are the committed breakdown of where engine time goes.
    let (bundle, opts) = wp_server::demo::demo_deployment(wp_server::demo::DemoSize::Serve, 1);
    let mut net = PreparedNet::from_bundle(&bundle, &opts);
    let inputs = net.fabricate_inputs(ab_batch, 5);
    let refs: Vec<&[i32]> = inputs.iter().map(|x| x.as_slice()).collect();
    let expected = net.run_batch(&refs);
    let mut disabled = f64::INFINITY;
    for _ in 0..reps.min(5) {
        let t = Instant::now();
        std::hint::black_box(net.run_batch(&refs));
        disabled = disabled.min(t.elapsed().as_secs_f64());
    }
    let profile = std::sync::Arc::new(net.make_profile());
    net.set_profile(Some(std::sync::Arc::clone(&profile)));
    assert_eq!(net.run_batch(&refs), expected, "profiled run must be bit-identical");
    let mut profiled = f64::INFINITY;
    for _ in 0..reps.min(5) {
        let t = Instant::now();
        std::hint::black_box(net.run_batch(&refs));
        profiled = profiled.min(t.elapsed().as_secs_f64());
    }
    let disabled_ips = ab_batch as f64 / disabled;
    let profiled_ips = ab_batch as f64 / profiled;
    let overhead_pct = (profiled - disabled) / disabled * 100.0;
    let tier = net.backend_kind().name();
    // The pooled_conv A/B above ran the same demo at the same batch per
    // tier — the profile-off rate must match the auto-resolved tier's.
    let baseline = sections[0]
        .1
        .iter()
        .find(|(name, _)| *name == tier)
        .map(|(_, ips)| *ips)
        .expect("auto-resolved tier measured in the pooled_conv section");
    let vs_baseline_pct = (disabled_ips / baseline - 1.0) * 100.0;
    println!("== Tracing overhead (scatter-heavy serving demo, batch {ab_batch}, 1 thread) ==");
    println!("profile off: {disabled_ips:>10.1} images/sec  ({vs_baseline_pct:+.2}% vs plain {tier} run)");
    println!("profile on:  {profiled_ips:>10.1} images/sec  ({overhead_pct:+.2}% wall time)");
    let prof = profile.snapshot();
    let share_sum: f64 = prof.layers.iter().map(|l| l.share).sum();
    println!("layer shares cover {:.1}% of recorded engine time", share_sum * 100.0);
    if show_profile {
        println!(
            "  {:<3} {:<16} {:>7} {:>10} {:>10} {:>10}",
            "L", "kind", "share", "p50 us", "p99 us", "mean us"
        );
        for l in &prof.layers {
            println!(
                "  {:<3} {:<16} {:>6.1}% {:>10.1} {:>10.1} {:>10.1}",
                l.index,
                l.kind,
                l.share * 100.0,
                l.latency.p50 as f64 / 1e3,
                l.latency.p99 as f64 / 1e3,
                l.latency.mean / 1e3
            );
        }
    }
    println!();

    if let Some(path) = &out_path {
        let body: Vec<String> = sections
            .iter()
            .map(|(key, rates)| {
                let tiers: Vec<String> = rates
                    .iter()
                    .map(|(name, ips)| format!("\"{name}\":{ips:.1}"))
                    .collect();
                format!(
                    "\"{key}\":{{\"batch\":{ab_batch},\"images_per_sec\":{{{}}},\"swar_over_scalar\":{:.2}}}",
                    tiers.join(","),
                    rates[1].1 / rates[0].1
                )
            })
            .collect();
        let layer_rows: Vec<String> = prof
            .layers
            .iter()
            .map(|l| {
                format!(
                    "{{\"layer\":{},\"kind\":\"{}\",\"share\":{:.4},\"p50_ns\":{},\"p99_ns\":{},\"mean_ns\":{:.0}}}",
                    l.index, l.kind, l.share, l.latency.p50, l.latency.p99, l.latency.mean
                )
            })
            .collect();
        let report = format!(
            "{{\"bench\":\"engine_backends\",{},\
             \"popcount_batched\":{{\"batch\":{ab_batch},\"best_ratio\":{popcount_best:.2},\"regimes\":{{{}}}}},\
             \"trace_overhead\":{{\"batch\":{ab_batch},\"backend\":\"{tier}\",\
             \"images_per_sec\":{{\"disabled\":{disabled_ips:.1},\"profiled\":{profiled_ips:.1}}},\
             \"disabled_vs_baseline_pct\":{vs_baseline_pct:.2},\"profiled_overhead_pct\":{overhead_pct:.2}}},\
             \"profile\":{{\"model\":\"demo-serve\",\"share_sum\":{share_sum:.4},\"layers\":[{}]}}}}\n",
            body.join(","),
            popcount_rows.join(","),
            layer_rows.join(",")
        );
        std::fs::write(path, &report).expect("write bench JSON");
        println!("wrote {path}");
    }

    // Acceptance gates: the swar tier must hold >=2x over scalar on both
    // serving regimes (floor well under the typical measured margin, so
    // shared-runner scheduler noise cannot flake CI).
    for (key, rates) in &sections {
        let ratio = rates[1].1 / rates[0].1;
        assert!(
            ratio >= 2.0,
            "swar backend only {ratio:.2}x over scalar on the {key} section (gate: >=2x)"
        );
    }
    // And the batched popcount tiles must beat the int8 tiles by >=1.5x
    // at low act_bits on at least one serving regime.
    assert!(
        popcount_best >= 1.5,
        "batched popcount only {popcount_best:.2}x over int8 tiles at best (gate: >=1.5x)"
    );
}
