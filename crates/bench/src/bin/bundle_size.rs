//! Bundle-format benchmark: JSON vs entropy-coded WPB vs the entropy
//! bound, on the serving demo model — with the Rice-only and forced-ANS
//! codecs A/B'd against the auto chooser, and the streaming decode path
//! differentially checked against the buffer path.
//!
//! ```sh
//! cargo run --release --bin bundle_size -p wp_bench [-- --out BENCH_bundle.json]
//! ```
//!
//! Writes `BENCH_bundle.json` and **fails (exit 1)** unless
//!
//! * WPB is at least 5x smaller than JSON,
//! * the coded index stream sits within 15% of the measured index
//!   entropy,
//! * the auto codec's total bundle is no larger than the Rice-only
//!   baseline (per-layer ANS must only ever help),
//! * WPB decodes at least 1.8x faster than JSON (hot-swap latency term;
//!   measured ~2.4x on an idle host, gated with CI-noise headroom),
//! * the streaming `from_reader` decode reconstructs the buffer decode
//!   exactly with peak transient buffering bounded by the largest
//!   section, and
//! * a bundle decoded from WPB produces engine outputs bit-identical to
//!   one decoded from JSON.
//!
//! These are the acceptance gates of the WPB format; CI runs this binary
//! so a regression in the codec's compression, speed, or fidelity fails
//! the build, not just a dashboard.

use std::time::Instant;
use wp_core::deploy::codec::{index_stream_stats, EncodeOptions, Format, IndexCodecPref};
use wp_core::deploy::DeployBundle;
use wp_engine::{EngineOptions, PreparedNet};
use wp_server::demo::{demo_bundle, DemoSize};

fn main() {
    let mut out = "BENCH_bundle.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = args.next().expect("--out needs a value"),
            other => {
                eprintln!("bundle_size: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    let bundle = demo_bundle(DemoSize::Serve, 1);
    let json = bundle.to_bytes(Format::Json).expect("json encode");
    let encode_wpb = |pref: IndexCodecPref| {
        bundle
            .to_bytes_with(&EncodeOptions::new(Format::Wpb).with_index_codec(pref))
            .expect("wpb encode")
    };
    let wpb = encode_wpb(IndexCodecPref::Auto);
    let wpb_rice = encode_wpb(IndexCodecPref::Rice);
    let wpb_ans = encode_wpb(IndexCodecPref::Ans);
    let ratio = json.len() as f64 / wpb.len() as f64;
    let auto_over_rice = wpb.len() as f64 / wpb_rice.len() as f64;

    // Decode wall time (best of 15, after warmup): the hot-swap reload
    // latency term. Best-of damps scheduler noise on shared CI runners.
    let best_decode = |bytes: &[u8]| {
        let _ = DeployBundle::from_bytes(bytes).expect("decode");
        (0..15)
            .map(|_| {
                let t = Instant::now();
                let decoded = DeployBundle::from_bytes(bytes).expect("decode");
                assert_eq!(decoded.spec.name, bundle.spec.name);
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let json_decode_ms = best_decode(&json) * 1e3;
    let wpb_decode_ms = best_decode(&wpb) * 1e3;
    let decode_speedup = json_decode_ms / wpb_decode_ms;

    // Streaming differential: `from_reader` must reconstruct exactly what
    // the buffer decode does — for every codec — while never transiently
    // buffering more than the largest section (the "no whole-file
    // intermediate buffer" property the registry cold-start relies on).
    let mut streaming_identical = true;
    let mut peak_transient_bytes = 0usize;
    let mut largest_section_bytes = 0usize;
    for bytes in [&wpb, &wpb_rice, &wpb_ans] {
        let buffered = DeployBundle::from_bytes(bytes).expect("buffer decode");
        let (streamed, stats) =
            DeployBundle::from_reader_with_stats(bytes.as_slice()).expect("streaming decode");
        streaming_identical &= buffered == streamed;
        assert!(
            stats.peak_transient_bytes <= stats.largest_section_bytes,
            "peak transient {} exceeds largest section {}",
            stats.peak_transient_bytes,
            stats.largest_section_bytes
        );
        if bytes.as_slice() == wpb.as_slice() {
            peak_transient_bytes = stats.peak_transient_bytes;
            largest_section_bytes = stats.largest_section_bytes;
        }
    }

    // Index-stream accounting: fixed width vs WPB coding vs entropy.
    let stats = index_stream_stats(&bundle);
    let total_indices: usize = stats.iter().map(|s| s.count).sum();
    let coded_bits_per_idx: f64 =
        stats.iter().map(|s| s.coded_bits * s.count as f64).sum::<f64>() / total_indices as f64;
    let entropy_bits_per_idx = bundle.index_entropy_bits();
    // Per-layer entropies weighted by stream length: the bound a
    // per-layer coder is actually held to (the global histogram blurs
    // layers with different popular vectors into something flatter).
    let layer_entropy_bits_per_idx: f64 =
        stats.iter().map(|s| s.entropy_bits * s.count as f64).sum::<f64>() / total_indices as f64;
    let entropy_bound_index_bytes = (entropy_bits_per_idx * total_indices as f64 / 8.0).ceil();
    let coded_vs_entropy = coded_bits_per_idx / entropy_bits_per_idx;
    let coded_vs_layer_entropy = coded_bits_per_idx / layer_entropy_bits_per_idx;

    // Fidelity: both decodes must compile to bit-identical engines.
    let opts = EngineOptions::default();
    let from_json =
        PreparedNet::from_bundle(&DeployBundle::from_bytes(&json).expect("json decode"), &opts);
    let from_wpb =
        PreparedNet::from_bundle(&DeployBundle::from_bytes(&wpb).expect("wpb decode"), &opts);
    let inputs = from_json.fabricate_inputs(8, 0x517E);
    let outputs_identical = inputs.iter().all(|x| from_json.run_one(x) == from_wpb.run_one(x));

    println!("== Bundle format: demo-serve ==");
    println!("json:          {:>9} bytes  (decode {:.2} ms)", json.len(), json_decode_ms);
    println!(
        "wpb (auto):    {:>9} bytes  (decode {:.2} ms, {decode_speedup:.2}x faster than json)",
        wpb.len(),
        wpb_decode_ms
    );
    println!("wpb (rice):    {:>9} bytes  (auto/rice {auto_over_rice:.4}x)", wpb_rice.len());
    println!("wpb (ans):     {:>9} bytes", wpb_ans.len());
    println!("ratio:         {ratio:>9.2}x smaller than json");
    println!(
        "streaming:     peak transient {peak_transient_bytes} bytes <= largest section \
         {largest_section_bytes} bytes (identical: {streaming_identical})"
    );
    println!("index streams: {total_indices} indices");
    println!("  entropy:     {entropy_bits_per_idx:>9.3} bits/idx global, {layer_entropy_bits_per_idx:.3} per-layer  (bound {entropy_bound_index_bytes:.0} bytes)");
    println!("  wpb coded:   {coded_bits_per_idx:>9.3} bits/idx  ({coded_vs_entropy:.3}x global, {coded_vs_layer_entropy:.3}x per-layer entropy)");
    for s in &stats {
        println!(
            "  conv {:>2}: {:>7} idx, entropy {:.3}, coded {:.3} b/idx, {}",
            s.conv, s.count, s.entropy_bits, s.coded_bits, s.coding
        );
    }
    println!("outputs bit-identical across formats: {outputs_identical}");

    let layers: Vec<String> = stats
        .iter()
        .map(|s| {
            format!(
                "{{\"conv\":{},\"indices\":{},\"entropy_bits\":{:.4},\"coded_bits\":{:.4},\"coding\":\"{}\"}}",
                s.conv, s.count, s.entropy_bits, s.coded_bits, s.coding
            )
        })
        .collect();
    let json_report = format!(
        "{{\"bench\":\"bundle\",\"model\":\"demo-serve\",\"json_bytes\":{},\"wpb_bytes\":{},\"wpb_rice_bytes\":{},\"wpb_ans_bytes\":{},\"auto_over_rice\":{:.4},\"json_over_wpb\":{:.2},\"json_decode_ms\":{:.3},\"wpb_decode_ms\":{:.3},\"decode_speedup\":{:.2},\"peak_transient_bytes\":{},\"largest_section_bytes\":{},\"total_indices\":{},\"index_entropy_bits\":{:.4},\"layer_entropy_bits\":{:.4},\"coded_index_bits\":{:.4},\"coded_over_entropy\":{:.4},\"coded_over_layer_entropy\":{:.4},\"entropy_bound_index_bytes\":{:.0},\"outputs_identical\":{},\"streaming_identical\":{},\"layers\":[{}]}}\n",
        json.len(),
        wpb.len(),
        wpb_rice.len(),
        wpb_ans.len(),
        auto_over_rice,
        ratio,
        json_decode_ms,
        wpb_decode_ms,
        decode_speedup,
        peak_transient_bytes,
        largest_section_bytes,
        total_indices,
        entropy_bits_per_idx,
        layer_entropy_bits_per_idx,
        coded_bits_per_idx,
        coded_vs_entropy,
        coded_vs_layer_entropy,
        entropy_bound_index_bytes,
        outputs_identical,
        streaming_identical,
        layers.join(",")
    );
    std::fs::write(&out, &json_report).expect("write BENCH_bundle.json");
    println!("wrote {out}");

    // Acceptance gates.
    assert!(outputs_identical, "WPB-decoded engine outputs must equal JSON-decoded outputs");
    assert!(streaming_identical, "from_reader must reconstruct the buffer decode exactly");
    assert!(ratio >= 5.0, "WPB must be >=5x smaller than JSON (got {ratio:.2}x)");
    assert!(
        auto_over_rice <= 1.0,
        "auto codec selection must never exceed the Rice-only baseline \
         (got {auto_over_rice:.4}x)"
    );
    assert!(
        decode_speedup >= 1.8,
        "WPB must decode >=1.8x faster than JSON (got {decode_speedup:.2}x; \
         measured ~2.4x on an idle host, gated with shared-runner headroom)"
    );
    assert!(
        coded_vs_entropy <= 1.15,
        "coded index bits must be within 15% of entropy (got {coded_vs_entropy:.3}x)"
    );
    assert!(
        coded_vs_layer_entropy <= 1.15,
        "coded index bits must be within 15% of the per-layer entropy bound \
         (got {coded_vs_layer_entropy:.3}x)"
    );
}
