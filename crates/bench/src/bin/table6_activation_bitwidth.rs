//! Regenerates the paper's table6 activation bitwidth result. Pass `--fast` for a quick
//! smoke run.

fn main() {
    let effort = wp_bench::Effort::from_env();
    let _ = effort;
    println!("{}", wp_bench::experiments::table6_activation_bitwidth(effort));
}
