//! Regenerates the footnote1 fc compression study. Pass `--fast` for a quick smoke run.

fn main() {
    let effort = wp_bench::Effort::from_env();
    println!("{}", wp_bench::experiments::footnote1_fc_compression(effort));
}
