//! Regenerates the paper's fig4 pool dimension result. Pass `--fast` for a quick
//! smoke run.

fn main() {
    let effort = wp_bench::Effort::from_env();
    let _ = effort;
    println!("{}", wp_bench::experiments::fig4_pool_dimension(effort));
}
