//! Bundle tooling: inspect, convert and verify deployable bundles in
//! either format (JSON or entropy-coded binary WPB).
//!
//! ```sh
//! # Fabricate a demo bundle (format picked by extension):
//! cargo run --release --bin wp_bundle -p wp_bench -- demo /tmp/demo.json --size serve
//!
//! # Convert it to WPB and back:
//! cargo run --release --bin wp_bundle -p wp_bench -- convert /tmp/demo.json /tmp/demo.wpb
//!
//! # Per-layer coded-vs-entropy report:
//! cargo run --release --bin wp_bundle -p wp_bench -- inspect /tmp/demo.wpb
//!
//! # Verify: one path re-encodes and round-trips; two paths must decode
//! # to bundles with identical engine outputs.
//! cargo run --release --bin wp_bundle -p wp_bench -- verify /tmp/demo.wpb
//! cargo run --release --bin wp_bundle -p wp_bench -- verify /tmp/demo.json /tmp/demo.wpb
//! ```
//!
//! Every failure exits nonzero, so the subcommands compose into CI smoke
//! checks (`demo` → `convert` → `verify`).

use std::path::Path;
use std::process::exit;
use wp_core::deploy::codec::{
    index_stream_stats, wpb_recorded_codings, EncodeOptions, Format, IndexCodecPref,
};
use wp_core::deploy::DeployBundle;
use wp_engine::{EngineOptions, PreparedNet};
use wp_server::demo::{demo_bundle, DemoSize};

const HELP: &str = "wp_bundle — deploy-bundle tooling (JSON and WPB formats)
    demo OUT [--size tiny|serve] [--seed N]   fabricate a demo bundle
    inspect PATH                              summary + per-layer codec and coded-vs-entropy bits
    convert IN OUT [--codec rice|ans|auto]    re-encode (formats from extensions/magic)
    verify PATH [PATH2]                       round-trip check; 2 paths: bit-identical outputs";

fn fail(msg: &str) -> ! {
    eprintln!("wp_bundle: {msg}");
    exit(1);
}

fn load(path: &str) -> DeployBundle {
    DeployBundle::load(path).unwrap_or_else(|e| fail(&format!("loading {path}: {e}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.as_slice() {
        ["demo", out, rest @ ..] => demo(out, rest),
        ["inspect", path] => inspect(path),
        ["convert", from, to, rest @ ..] => convert(from, to, rest),
        ["verify", path] => verify_one(path),
        ["verify", a, b] => verify_pair(a, b),
        ["--help"] | ["-h"] | [] => println!("{HELP}"),
        other => fail(&format!("bad arguments {other:?}\n{HELP}")),
    }
}

/// `demo OUT [--size tiny|serve] [--seed N]`.
fn demo(out: &str, rest: &[&str]) {
    let mut size = DemoSize::Serve;
    let mut seed = 1u64;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let value = |name: &str| {
            it.clone().next().copied().unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match *flag {
            "--size" => {
                size = match value("--size") {
                    "tiny" => DemoSize::Tiny,
                    "serve" => DemoSize::Serve,
                    other => fail(&format!("unknown --size {other:?} (tiny|serve)")),
                };
                it.next();
            }
            "--seed" => {
                seed =
                    value("--seed").parse().unwrap_or_else(|e| fail(&format!("bad --seed: {e}")));
                it.next();
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    let bundle = demo_bundle(size, seed);
    bundle.save(out).unwrap_or_else(|e| fail(&format!("saving {out}: {e}")));
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {out} ({bytes} bytes, {:?} format, model {:?})",
        Format::for_path(Path::new(out)),
        bundle.spec.name
    );
}

/// `inspect PATH`: bundle summary plus the per-layer index-stream report.
fn inspect(path: &str) {
    let raw = std::fs::read(path).unwrap_or_else(|e| fail(&format!("reading {path}: {e}")));
    let format = Format::sniff(&raw);
    let bundle =
        DeployBundle::from_bytes(&raw).unwrap_or_else(|e| fail(&format!("decoding {path}: {e}")));
    println!("{path}: {format:?} bundle, {} bytes on disk", raw.len());
    println!(
        "model {:?}: input {:?}, {} classes, {} layers, act_bits {}",
        bundle.spec.name,
        bundle.spec.input,
        bundle.spec.classes,
        bundle.spec.layers.len(),
        bundle.act_bits
    );
    println!(
        "pool: {} vectors x {} | lut: {} entries at {} bits ({} bytes)",
        bundle.pool.len(),
        bundle.pool.group_size(),
        bundle.lut.num_patterns() * bundle.lut.pool_size(),
        bundle.lut.bits(),
        bundle.lut.storage_bytes()
    );
    println!("flash payload (fixed-width accounting): {} bytes", bundle.flash_bytes());

    // For WPB files report the codec each layer *recorded on disk* (a
    // forced --codec conversion differs from what the chooser would pick
    // today); for JSON there is no recorded coding, so show the choice
    // an auto WPB encode would make.
    let recorded = if format == Format::Wpb { wpb_recorded_codings(&raw).ok() } else { None };
    let stats = index_stream_stats(&bundle);
    if stats.is_empty() {
        println!("no pooled layers (nothing to entropy-code)");
    } else {
        let source = if recorded.is_some() { "recorded in file" } else { "auto choice" };
        println!("pooled index streams (codec {source}, coded vs entropy bound):");
        println!("  conv   indices   entropy b/idx   coded b/idx   codec");
        let mut rows: Vec<(usize, usize, f64, f64, String)> = Vec::with_capacity(stats.len());
        for s in &stats {
            // Under a recorded coding, charge the stream at *that* coding's
            // cost, not what the auto chooser would pick today.
            let (coded, coding) = match recorded.as_ref().and_then(|r| r.get(s.conv)) {
                Some(Some(rec)) => {
                    let indices = match &bundle.convs[s.conv] {
                        wp_core::deploy::ConvPayload::Pooled { indices } => indices.as_slice(),
                        wp_core::deploy::ConvPayload::Direct { .. } => &[],
                    };
                    let bits = rec.coded_bits(indices) as f64 / s.count.max(1) as f64;
                    (bits, rec.describe())
                }
                _ => (s.coded_bits, s.coding.clone()),
            };
            println!(
                "  {:>4}   {:>7}   {:>13.3}   {:>11.3}   {}",
                s.conv, s.count, s.entropy_bits, coded, coding
            );
            rows.push((s.conv, s.count, s.entropy_bits, coded, coding));
        }
        let total: usize = rows.iter().map(|r| r.1).sum();
        let entropy: f64 = rows.iter().map(|r| r.2 * r.1 as f64).sum();
        let coded: f64 = rows.iter().map(|r| r.3 * r.1 as f64).sum();
        println!(
            "  all    {:>7}   {:>13.3}   {:>11.3}   (coded/entropy {:.3}x)",
            total,
            entropy / total.max(1) as f64,
            coded / total.max(1) as f64,
            if entropy > 0.0 { coded / entropy } else { 1.0 }
        );
    }
    let json = bundle.to_bytes(Format::Json).map(|b| b.len()).unwrap_or(0);
    let wpb = bundle.to_bytes(Format::Wpb).map(|b| b.len()).unwrap_or(0);
    println!(
        "re-encoded sizes: json {json} bytes, wpb {wpb} bytes ({:.2}x smaller)",
        json as f64 / wpb.max(1) as f64
    );
}

/// `convert IN OUT [--codec rice|ans|auto]`: decode (sniffed) and
/// re-encode (format by extension, index codec by flag for A/B runs).
fn convert(from: &str, to: &str, rest: &[&str]) {
    let mut pref = IndexCodecPref::Auto;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match *flag {
            "--codec" => {
                let value = it.next().copied().unwrap_or_else(|| fail("--codec needs a value"));
                pref = value.parse::<IndexCodecPref>().unwrap_or_else(|e| fail(&e));
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    let bundle = load(from);
    let opts = EncodeOptions::for_path(Path::new(to)).with_index_codec(pref);
    if pref != IndexCodecPref::Auto && opts.format() != Format::Wpb {
        fail(&format!("--codec {pref} only applies to .wpb outputs; {to} is JSON"));
    }
    bundle.save_with(to, &opts).unwrap_or_else(|e| fail(&format!("saving {to}: {e}")));
    // Paranoia worth having in a storage tool: what we wrote must load
    // back equal before we report success.
    let back = load(to);
    if back != bundle {
        fail(&format!("round-trip mismatch converting {from} -> {to}"));
    }
    let from_bytes = std::fs::metadata(from).map(|m| m.len()).unwrap_or(0);
    let to_bytes = std::fs::metadata(to).map(|m| m.len()).unwrap_or(0);
    println!(
        "{from} ({from_bytes} bytes) -> {to} ({to_bytes} bytes, {:.2}x)",
        from_bytes as f64 / to_bytes.max(1) as f64
    );
}

/// `verify PATH`: the bundle re-encodes and round-trips in both formats.
fn verify_one(path: &str) {
    let bundle = load(path);
    for format in [Format::Json, Format::Wpb] {
        let bytes =
            bundle.to_bytes(format).unwrap_or_else(|e| fail(&format!("encoding {format:?}: {e}")));
        let back = DeployBundle::from_bytes(&bytes)
            .unwrap_or_else(|e| fail(&format!("decoding re-encoded {format:?}: {e}")));
        if back != bundle {
            fail(&format!("{format:?} round trip is not equal for {path}"));
        }
    }
    println!("{path}: OK (decodes, and round-trips bit-equal through JSON and WPB)");
}

/// `verify A B`: both decode, bundles are equal, and the compiled engines
/// produce bit-identical outputs.
fn verify_pair(a: &str, b: &str) {
    let ba = load(a);
    let bb = load(b);
    if ba != bb {
        fail(&format!("{a} and {b} decode to different bundles"));
    }
    let opts = EngineOptions::default();
    let na = PreparedNet::from_bundle(&ba, &opts);
    let nb = PreparedNet::from_bundle(&bb, &opts);
    let inputs = na.fabricate_inputs(8, 0xB17);
    for input in &inputs {
        if na.run_one(input) != nb.run_one(input) {
            fail(&format!("engine outputs differ between {a} and {b}"));
        }
    }
    println!("{a} == {b}: bundles equal, engine outputs bit-identical on {} inputs", inputs.len());
}
