//! Regenerates the paper's fig8 activation speedup result. Pass `--fast` for a quick
//! smoke run.

fn main() {
    let effort = wp_bench::Effort::from_env();
    let _ = effort;
    println!("{}", wp_bench::experiments::fig8_activation_speedup(effort));
}
