//! Load generator for `wp_server`: drives a server over real sockets at
//! configurable concurrency, verifies every response bit-for-bit against
//! direct engine execution, and reports throughput and latency.
//!
//! Two ways to run:
//!
//! * **Self-contained benchmark** (default): spawns in-process servers on
//!   ephemeral ports and measures the `max_batch = 1` configuration
//!   against the batched configuration for **both** serving regimes — the
//!   scatter-heavy pooled demo (`demo-serve`) and the stem-heavy
//!   direct/depthwise/dense demo (`demo-stem`) — asserting every response
//!   is bit-identical to `PreparedNet::run_one`, and writes a sectioned
//!   `BENCH_serve.json`.
//!
//!   ```sh
//!   cargo run --release --bin serve_loadgen -p wp_bench [-- --smoke]
//!   ```
//!
//! * **External target**: `--url http://HOST:PORT` drives an already
//!   running `wp_serve` (same demo model seeds, so bit-identity is still
//!   checked); `--model demo|demo-stem` picks which deployed demo to
//!   drive (`wp_serve --demo` serves `demo`, `--demo-stem` adds
//!   `demo-stem`); `--shutdown` sends `POST /v1/shutdown` afterwards and
//!   verifies the server acknowledges (requires `--allow-shutdown` on the
//!   server).
//!
//! Flags: `--concurrency N` (default 16), `--requests N` (default 384),
//! `--smoke` (quick pass: fewer requests, no speedup assertions),
//! `--out PATH` (default `BENCH_serve.json`), `--trace PATH` (export the
//! driven server's span ring as Chrome `trace_event` JSON after the run —
//! self-contained mode enables tracing on the batched server; `--url`
//! mode asks the external server, which must have been started with
//! `--trace-events`).
//!
//! The **mostly-idle herd** (self-contained mode): the event front's
//! reason to exist is thousands of open-but-quiet keep-alive connections
//! costing a handful of event threads nothing. `--connections N`
//! (default 2000) opens that many keep-alive connections (each proves
//! itself live with one request, then sits), re-measures batched
//! throughput *through the herd*, and gates: every connection served,
//! `connections / event-threads >= 500`, and herd-loaded throughput
//! within 10% of the unloaded measurement. `--mostly-idle` runs only
//! this scenario (the CI smoke hook); by default it runs after the A/B
//! sections. Results land in the `event_front` section of the JSON.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wp_server::batcher::BatcherConfig;
use wp_server::demo::{demo_deployment, DemoSize};
use wp_server::metrics::Metrics;
use wp_server::protocol::{InferRequest, InferResponse};
use wp_server::registry::ModelRegistry;
use wp_server::server::{serve, ServerConfig};

/// The demo seed shared with `wp_serve --demo` (bit-identity across
/// processes relies on both fabricating the same model).
const DEMO_SEED: u64 = 1;

struct Args {
    url: Option<String>,
    model: String,
    concurrency: usize,
    requests: usize,
    smoke: bool,
    shutdown: bool,
    out: String,
    trace: Option<String>,
    connections: usize,
    mostly_idle: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        url: None,
        model: "demo".into(),
        concurrency: 16,
        requests: 384,
        smoke: false,
        shutdown: false,
        out: "BENCH_serve.json".into(),
        trace: None,
        connections: 2000,
        mostly_idle: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--url" => args.url = Some(value("--url")),
            "--model" => args.model = value("--model"),
            "--concurrency" => args.concurrency = value("--concurrency").parse().expect("number"),
            "--requests" => args.requests = value("--requests").parse().expect("number"),
            "--smoke" => args.smoke = true,
            "--shutdown" => args.shutdown = true,
            "--out" => args.out = value("--out"),
            "--trace" => args.trace = Some(value("--trace")),
            "--connections" => args.connections = value("--connections").parse().expect("number"),
            "--mostly-idle" => args.mostly_idle = true,
            other => panic!("unknown flag {other:?}"),
        }
    }
    if args.smoke {
        args.requests = args.requests.min(96);
    }
    assert!(args.concurrency >= 1, "concurrency must be positive");
    assert!(args.connections >= 1, "connections must be positive");
    assert!(
        !(args.mostly_idle && args.url.is_some()),
        "--mostly-idle is self-contained (it needs to know the server's event-thread count); \
         it cannot drive --url"
    );
    args
}

/// One measured configuration.
struct RunResult {
    label: String,
    requests: usize,
    errors: usize,
    elapsed: Duration,
    latencies_us: Vec<u64>,
}

impl RunResult {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64()
    }

    fn percentile(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }
}

/// Sends `POST /v1/infer` over an existing connection, returns
/// `(status, body, wall time)`.
fn infer_once(
    stream: &mut BufReader<TcpStream>,
    host: &str,
    body: &str,
) -> (u16, String, Duration) {
    let started = Instant::now();
    write!(
        stream.get_mut(),
        "POST /v1/infer HTTP/1.1\r\nHost: {host}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write");
    stream.get_mut().flush().expect("flush");
    let (status, body) = read_response(stream);
    (status, body, started.elapsed())
}

fn read_response(stream: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut line = String::new();
    stream.read_line(&mut line).expect("status line");
    let status: u16 =
        line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status code");
    let mut content_length = 0usize;
    let mut chunked = false;
    loop {
        let mut header = String::new();
        stream.read_line(&mut header).expect("header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((k, v)) = header.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().expect("length");
            } else if k.eq_ignore_ascii_case("transfer-encoding") {
                chunked = v.trim().eq_ignore_ascii_case("chunked");
            }
        }
    }
    let body = if chunked {
        // Large responses (multi-plane outputs past the server's chunk
        // threshold) arrive chunk-framed; reassemble them.
        let mut body = Vec::new();
        loop {
            let mut size_line = String::new();
            stream.read_line(&mut size_line).expect("chunk size");
            let size = usize::from_str_radix(size_line.trim(), 16).expect("chunk size hex");
            if size == 0 {
                let mut epilogue = String::new();
                stream.read_line(&mut epilogue).expect("chunk epilogue");
                break;
            }
            let start = body.len();
            body.resize(start + size, 0);
            stream.read_exact(&mut body[start..]).expect("chunk data");
            let mut crlf = [0u8; 2];
            stream.read_exact(&mut crlf).expect("chunk terminator");
            assert_eq!(&crlf, b"\r\n", "chunk not CRLF-terminated");
        }
        body
    } else {
        let mut body = vec![0u8; content_length];
        stream.read_exact(&mut body).expect("body");
        body
    };
    (status, String::from_utf8(body).expect("utf-8"))
}

/// Drives `requests` inferences at `concurrency` over `addr`, verifying
/// each response against `expected`.
fn drive(
    label: &str,
    addr: &str,
    model: &str,
    inputs: &[Vec<i32>],
    expected: &[Vec<i32>],
    requests: usize,
    concurrency: usize,
) -> RunResult {
    let cursor = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let started = Instant::now();
    let latencies: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|_| {
                let cursor = &cursor;
                let errors = &errors;
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).ok();
                    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
                    let mut stream = BufReader::new(stream);
                    let mut lat = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= requests {
                            break;
                        }
                        let slot = i % inputs.len();
                        let body = serde_json::to_string(&InferRequest {
                            model: Some(model.to_string()),
                            inputs: vec![inputs[slot].clone()],
                        })
                        .unwrap();
                        let (status, body, elapsed) = infer_once(&mut stream, addr, &body);
                        lat.push(elapsed.as_micros() as u64);
                        if status != 200 {
                            errors.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        let resp: InferResponse = serde_json::from_str(&body).expect("json");
                        if resp.outputs.len() != 1 || resp.outputs[0] != expected[slot] {
                            panic!(
                                "response for input {slot} differs from direct execution \
                                 (batching must be bit-invisible)"
                            );
                        }
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    RunResult {
        label: label.to_string(),
        requests,
        errors: errors.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
        latencies_us: latencies.into_iter().flatten().collect(),
    }
}

/// Starts an in-process server deploying one demo model under `name`
/// with the given flush size; `trace_events > 0` attaches a span ring of
/// that many events.
fn local_server(
    max_batch: usize,
    size: DemoSize,
    name: &str,
    trace_events: usize,
) -> wp_server::ServerHandle {
    let batcher =
        BatcherConfig { max_batch, max_wait: Duration::from_millis(2), ..BatcherConfig::default() };
    let registry = Arc::new(
        ModelRegistry::new(batcher, Arc::new(Metrics::new())).with_trace_capacity(trace_events),
    );
    let (bundle, opts) = demo_deployment(size, DEMO_SEED);
    registry.insert_bundle(name, &bundle, opts);
    serve(
        ServerConfig { workers: 32, allow_remote_shutdown: true, ..ServerConfig::default() },
        registry,
    )
    .expect("bind server")
}

/// One plain GET over a fresh connection.
fn http_get(addr: &str, path: &str) -> (u16, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut stream = BufReader::new(stream);
    write!(stream.get_mut(), "GET {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\n\r\n")
        .expect("write");
    stream.get_mut().flush().expect("flush");
    read_response(&mut stream)
}

/// Exports the server's span ring for `model` to `path` (Chrome
/// `trace_event` JSON, loadable in chrome://tracing or Perfetto).
fn export_trace(addr: &str, model: &str, path: &str) {
    let (status, body) = http_get(addr, &format!("/v1/models/{model}/trace"));
    assert_eq!(
        status, 200,
        "trace export failed ({status}); external servers need --trace-events: {body}"
    );
    assert!(body.contains("\"traceEvents\""), "not a Chrome trace: {body}");
    std::fs::write(path, &body).expect("write trace file");
    println!("wrote {path} ({} bytes of Chrome trace)", body.len());
}

fn report(result: &RunResult) {
    println!(
        "{:<18} {:>7} req  {:>9.1} req/s  p50 {:>7} us  p99 {:>7} us  errors {}",
        result.label,
        result.requests,
        result.rps(),
        result.percentile(0.50),
        result.percentile(0.99),
        result.errors
    );
}

fn json_entry(result: &RunResult, max_batch: usize) -> String {
    format!(
        "{{\"label\":\"{}\",\"max_batch\":{},\"requests\":{},\"errors\":{},\"rps\":{:.1},\"p50_us\":{},\"p99_us\":{}}}",
        result.label,
        max_batch,
        result.requests,
        result.errors,
        result.rps(),
        result.percentile(0.50),
        result.percentile(0.99)
    )
}

/// The demo a deployed model name refers to — bit-identity checks only
/// make sense against the demo fabrication, so anything else is a hard
/// error, not a silent fallback to the wrong oracle.
fn demo_size_for(model: &str) -> DemoSize {
    match model {
        "demo" | "demo-serve" => DemoSize::Serve,
        "demo-stem" => DemoSize::Stem,
        other => panic!(
            "--model {other:?} is not a fabricated demo model; this load generator verifies \
             responses bit-for-bit against the demo oracle, so only 'demo', 'demo-serve' and \
             'demo-stem' are supported"
        ),
    }
}

/// The expected-output oracle for a deployed demo model name.
fn oracle(model: &str) -> (Vec<Vec<i32>>, Vec<Vec<i32>>) {
    let net = wp_server::demo::demo_prepared(demo_size_for(model), DEMO_SEED);
    let inputs = net.fabricate_inputs(64, 777);
    let expected: Vec<Vec<i32>> = inputs.iter().map(|x| net.run_one(x)).collect();
    (inputs, expected)
}

/// One self-contained A/B section: unbatched vs batched server over one
/// demo model, returning the section's JSON and its measured speedup.
fn run_ab_section(model: &str, min_speedup: f64, args: &Args) -> (String, f64) {
    let batched_size = 32;
    let size = demo_size_for(model);
    let (inputs, expected) = oracle(model);

    println!("-- model {model} --");
    // Trace export (when asked) comes from the batched server of the
    // first section, the configuration the trace is most useful for.
    let trace_out = args.trace.as_deref().filter(|_| model == "demo-serve");
    let mut unbatched_server = local_server(1, size, model, 0);
    let unbatched = drive(
        "max_batch=1",
        &unbatched_server.addr().to_string(),
        model,
        &inputs,
        &expected,
        args.requests,
        args.concurrency,
    );
    unbatched_server.shutdown();
    report(&unbatched);

    let mut batched_server =
        local_server(batched_size, size, model, if trace_out.is_some() { 1 << 16 } else { 0 });
    let batched = drive(
        &format!("max_batch={batched_size}"),
        &batched_server.addr().to_string(),
        model,
        &inputs,
        &expected,
        args.requests,
        args.concurrency,
    );
    let snapshot = batched_server.registry().metrics_snapshot();
    if let Some(path) = trace_out {
        export_trace(&batched_server.addr().to_string(), model, path);
    }
    batched_server.shutdown();
    report(&batched);

    assert_eq!(unbatched.errors + batched.errors, 0, "every request must return 200");
    let speedup = batched.rps() / unbatched.rps();
    println!(
        "batched/unbatched throughput ({model}): {speedup:.2}x  (batches: {}, mean planes/batch {:.1})",
        snapshot.batches,
        snapshot.inferences as f64 / snapshot.batches.max(1) as f64
    );
    if !args.smoke {
        assert!(
            speedup >= min_speedup,
            "dynamic micro-batching on {model} must be >= {min_speedup}x over max_batch=1 \
             (got {speedup:.2}x)"
        );
    }
    let section = format!(
        "{{\"model\":\"{model}\",\"configs\":[{},{}],\"batched_speedup\":{speedup:.2}}}",
        json_entry(&unbatched, 1),
        json_entry(&batched, batched_size)
    );
    (section, speedup)
}

/// Reads an integer counter out of a `/metrics` JSON snapshot without a
/// full JSON parser (the vendored shim deserializes into structs, not a
/// generic value tree, and the load generator only needs two gauges).
fn snapshot_counter(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = body.find(&pat).unwrap_or_else(|| panic!("{key} missing from /metrics: {body}"));
    body[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("counter value")
}

/// One `GET /healthz` over an already-open keep-alive connection.
fn poke(stream: &mut BufReader<TcpStream>, host: &str) -> u16 {
    write!(stream.get_mut(), "GET /healthz HTTP/1.1\r\nHost: {host}\r\nContent-Length: 0\r\n\r\n")
        .expect("write poke");
    stream.get_mut().flush().expect("flush poke");
    read_response(stream).0
}

/// The mostly-idle herd scenario: `connections` keep-alive connections
/// parked on a small pool of event threads while the batched workload
/// runs through them. Gates the event front's acceptance criteria and
/// returns the `event_front` JSON section.
fn run_event_front_section(args: &Args) -> String {
    let model = "demo-serve";
    let event_threads = 2usize;
    let (inputs, expected) = oracle(model);
    // The herd must outlive the measurement, so the idle reaper gets a
    // horizon far beyond the run; batching config matches the A/B
    // batched arm so throughput numbers are comparable.
    let batcher = BatcherConfig {
        max_batch: 32,
        max_wait: Duration::from_millis(2),
        ..BatcherConfig::default()
    };
    let registry = Arc::new(ModelRegistry::new(batcher, Arc::new(Metrics::new())));
    let (bundle, opts) = demo_deployment(DemoSize::Serve, DEMO_SEED);
    registry.insert_bundle(model, &bundle, opts);
    let mut server = serve(
        ServerConfig {
            event_threads,
            idle_timeout: Duration::from_secs(600),
            ..ServerConfig::default()
        },
        registry,
    )
    .expect("bind event-front server");
    let addr = server.addr().to_string();

    println!("-- event front: {} mostly-idle connections --", args.connections);
    // A measurement this scenario gates at +/-10% needs enough requests
    // to settle, independent of the smoke cap; warm up first so neither
    // arm pays first-touch costs.
    let requests = args.requests.max(256);
    drive("warmup", &addr, model, &inputs, &expected, 64, args.concurrency);

    // Each arm takes its best of two passes: the gate compares two
    // measurements on shared hardware, and one descheduled pass must not
    // masquerade as an event-front regression.
    let best_of = |label: &str| -> RunResult {
        let a = drive(label, &addr, model, &inputs, &expected, requests, args.concurrency);
        let b = drive(label, &addr, model, &inputs, &expected, requests, args.concurrency);
        if b.rps() > a.rps() {
            b
        } else {
            a
        }
    };
    let unloaded = best_of("no idle herd");
    report(&unloaded);

    // Open the herd. Every connection proves itself live with one
    // request, then sits in keep-alive.
    let herd_started = Instant::now();
    let mut herd = Vec::with_capacity(args.connections);
    for i in 0..args.connections {
        let stream = TcpStream::connect(&addr).unwrap_or_else(|e| {
            panic!("herd connect {i}/{} failed: {e} (check ulimit -n)", args.connections)
        });
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let mut stream = BufReader::new(stream);
        assert_eq!(poke(&mut stream, &addr), 200, "herd connection {i} refused");
        herd.push(stream);
    }
    println!("herd up: {} connections in {:.2}s", herd.len(), herd_started.elapsed().as_secs_f64());
    let (status, body) = http_get(&addr, "/metrics");
    assert_eq!(status, 200, "metrics probe failed");
    let open = snapshot_counter(&body, "connections_open");
    assert!(
        open >= args.connections as u64,
        "server reports only {open} open connections with a {} herd parked",
        args.connections
    );

    // "Mostly idle", not comatose: while the batched workload runs
    // through the herd, a sampling of parked connections keeps trickling
    // the occasional health check.
    let pokers: Vec<_> = {
        let step = (herd.len() / 40).max(1);
        let mut sampled = Vec::new();
        let mut i = 0;
        while i < herd.len() {
            sampled.push(herd.swap_remove(i));
            i += step;
        }
        sampled
    };
    let running = AtomicBool::new(true);
    let poke_errors = AtomicUsize::new(0);
    let loaded = std::thread::scope(|scope| {
        let running = &running;
        let poke_errors = &poke_errors;
        let addr_ref = &addr;
        let poker = scope.spawn(move || {
            let mut pokers = pokers;
            while running.load(Ordering::Relaxed) {
                for stream in &mut pokers {
                    if poke(stream, addr_ref) != 200 {
                        poke_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            pokers
        });
        let loaded = best_of("with idle herd");
        running.store(false, Ordering::Relaxed);
        herd.extend(poker.join().expect("poker thread"));
        loaded
    });
    report(&loaded);
    drop(herd);
    server.shutdown();

    let errors = unloaded.errors + loaded.errors + poke_errors.load(Ordering::Relaxed);
    assert_eq!(errors, 0, "the event front must serve every request with zero errors");
    let conns_per_thread = args.connections as f64 / event_threads as f64;
    assert!(
        conns_per_thread >= 500.0,
        "event front must carry >= 500 connections per event thread (got {conns_per_thread:.0} \
         from {} connections on {event_threads} threads)",
        args.connections
    );
    let ratio = loaded.rps() / unloaded.rps();
    println!(
        "idle-herd throughput ratio: {ratio:.3} ({:.1} -> {:.1} req/s, {:.0} conns/event-thread)",
        unloaded.rps(),
        loaded.rps(),
        conns_per_thread
    );
    assert!(
        ratio >= 0.9,
        "{} parked connections must not cost more than 10% batched throughput \
         (got {:.1} -> {:.1} req/s, ratio {ratio:.3})",
        args.connections,
        unloaded.rps(),
        loaded.rps()
    );
    format!(
        "{{\"connections\":{},\"event_threads\":{event_threads},\
         \"connections_per_event_thread\":{conns_per_thread:.0},\
         \"rps_unloaded\":{:.1},\"rps_mostly_idle\":{:.1},\"idle_load_ratio\":{ratio:.3},\
         \"p99_us_unloaded\":{},\"p99_us_mostly_idle\":{},\"errors\":{errors}}}",
        args.connections,
        unloaded.rps(),
        loaded.rps(),
        unloaded.percentile(0.99),
        loaded.percentile(0.99)
    )
}

fn main() {
    let args = parse_args();
    println!(
        "serve_loadgen: {} requests, concurrency {}{}",
        args.requests,
        args.concurrency,
        if args.smoke { " (smoke)" } else { "" }
    );

    let mut sections = Vec::new();
    let mut event_front = None;
    if let Some(url) = &args.url {
        // External server: one configuration, whatever the server runs.
        let (inputs, expected) = oracle(&args.model);
        let addr = url.strip_prefix("http://").unwrap_or(url).trim_end_matches('/').to_string();
        let result = drive(
            "external",
            &addr,
            &args.model,
            &inputs,
            &expected,
            args.requests,
            args.concurrency,
        );
        report(&result);
        assert_eq!(result.errors, 0, "every request must return 200");
        sections.push(format!(
            "{{\"model\":\"{}\",\"configs\":[{}],\"batched_speedup\":1.0}}",
            args.model,
            json_entry(&result, 0)
        ));
        if let Some(path) = &args.trace {
            export_trace(&addr, &args.model, path);
        }
        if args.shutdown {
            let stream = TcpStream::connect(&addr).expect("connect for shutdown");
            let mut stream = BufReader::new(stream);
            write!(
                stream.get_mut(),
                "POST /v1/shutdown HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\n\r\n"
            )
            .expect("write shutdown");
            stream.get_mut().flush().unwrap();
            let (status, body) = read_response(&mut stream);
            assert_eq!(status, 200, "clean shutdown refused: {body}");
            println!("server acknowledged shutdown");
        }
    } else {
        // Self-contained A/B over both serving regimes: the scatter-heavy
        // pooled demo and the stem-heavy direct/depthwise/dense demo.
        // `--mostly-idle` skips the A/B arms and runs only the herd
        // scenario (the CI smoke hook).
        if !args.mostly_idle {
            for (model, min_speedup) in [("demo-serve", 2.0), ("demo-stem", 1.8)] {
                let (section, _) = run_ab_section(model, min_speedup, &args);
                sections.push(section);
            }
        }
        event_front = Some(run_event_front_section(&args));
    }

    let json = format!(
        "{{\"bench\":\"serve\",\"concurrency\":{},\"sections\":[{}]{}}}\n",
        args.concurrency,
        sections.join(","),
        event_front.map(|e| format!(",\"event_front\":{e}")).unwrap_or_default()
    );
    std::fs::write(&args.out, &json).expect("write BENCH_serve.json");
    println!("wrote {}", args.out);
    println!("all responses bit-identical to direct PreparedNet execution");
}
