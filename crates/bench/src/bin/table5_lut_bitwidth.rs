//! Regenerates the paper's table5 lut bitwidth result. Pass `--fast` for a quick
//! smoke run.

fn main() {
    let effort = wp_bench::Effort::from_env();
    let _ = effort;
    println!("{}", wp_bench::experiments::table5_lut_bitwidth(effort));
}
