//! Regenerates the baseline-core-strength ablation.

fn main() {
    let effort = wp_bench::Effort::from_env();
    println!("{}", wp_bench::experiments::ablation_m4_baseline(effort));
}
