//! Regenerates the paper's table1 group size result. Pass `--fast` for a quick
//! smoke run.

fn main() {
    let effort = wp_bench::Effort::from_env();
    let _ = effort;
    println!("{}", wp_bench::experiments::table1_group_size(effort));
}
