//! Regenerates the paper's table4 pool size result. Pass `--fast` for a quick
//! smoke run.

fn main() {
    let effort = wp_bench::Effort::from_env();
    let _ = effort;
    println!("{}", wp_bench::experiments::table4_pool_size(effort));
}
