//! Regenerates the paper's table7 full network result. Pass `--fast` for a quick
//! smoke run.

fn main() {
    let effort = wp_bench::Effort::from_env();
    let _ = effort;
    println!("{}", wp_bench::experiments::table7_full_network(effort));
}
