//! Regenerates the paper's fig7 layer optimizations result. Pass `--fast` for a quick
//! smoke run.

fn main() {
    let effort = wp_bench::Effort::from_env();
    let _ = effort;
    println!("{}", wp_bench::experiments::fig7_layer_optimizations(effort));
}
