//! One function per table and figure of the paper's evaluation section.
//!
//! Every function renders a markdown report with the paper's reference
//! numbers alongside the measured ones. Accuracy experiments run micro
//! models on synthetic data, so absolute accuracies differ by design; the
//! reproduction target is the *trend* (who wins, by roughly what factor,
//! where crossovers fall).

use crate::accuracy::{
    eval_subset, lut_sim_eval, pool_finetune_eval, qat_retrain, train_base, xy_pool_eval,
    MicroKind, TrainedModel,
};
use crate::runtime::{latency_cell, run, synthetic_lut, LayerBench};
use crate::table::{f, pct, Table};
use crate::Effort;
use wp_cluster::DistanceMetric;
use wp_core::compression::{storage_report, CompressionConfig};
use wp_core::PoolConfig;
use wp_kernels::network::DeployMode;
use wp_kernels::{BitSerialOptions, PrecomputeMode};
use wp_mcu::McuSpec;

fn default_cfg(pool_size: usize) -> PoolConfig {
    PoolConfig::new(pool_size).group_size(8).metric(DistanceMetric::Cosine)
}

/// Table 1: accuracy of the z-dimension weight pool at group sizes
/// {4, 8, 16} on ResNet-14 (pool 64).
pub fn table1_group_size(effort: Effort) -> String {
    let mut tm = train_base(MicroKind::ResNet14, effort, 14);
    let mut t = Table::new(
        "Table 1 - accuracy vs group (vector) size, ResNet-14, pool 64",
        &["Group size", "Accuracy (%)", "Paper (%)"],
    );
    let paper = [(4usize, "91.22"), (8, "91.13"), (16, "87.96")];
    for (g, paper_acc) in paper {
        tm.restore();
        let cfg = default_cfg(64).group_size(g);
        let (_pool, acc) = pool_finetune_eval(&mut tm, &cfg, effort, 14);
        t.row(&[g.to_string(), pct(acc), paper_acc.to_string()]);
    }
    t.note(format!(
        "Original (uncompressed) accuracy: {}% here vs 92.26% in the paper. \
         Expected trend: group 4 and 8 close to original, group 16 clearly worse.",
        pct(tm.float_acc)
    ));
    t.to_markdown()
}

/// Figure 4: z-dimension pools vs xy-dimension (3×3-kernel) pools with and
/// without scaling coefficients, at pool sizes {16, 32, 64}.
pub fn fig4_pool_dimension(effort: Effort) -> String {
    let mut tm = train_base(MicroKind::ResNet14, effort, 4);
    let mut t = Table::new(
        "Figure 4 - pool dimension study, ResNet-14 (fine-tuned accuracy, %)",
        &["Pool size", "xy", "xy + coeff", "z (g=8)"],
    );
    for pool_size in [16usize, 32, 64] {
        tm.restore();
        let xy = xy_pool_eval(&mut tm, pool_size, false, effort, 40 + pool_size as u64);
        tm.restore();
        let xy_coeff = xy_pool_eval(&mut tm, pool_size, true, effort, 41 + pool_size as u64);
        tm.restore();
        let cfg = default_cfg(pool_size);
        let (_pool, z) = pool_finetune_eval(&mut tm, &cfg, effort, 42 + pool_size as u64);
        t.row(&[pool_size.to_string(), pct(xy), pct(xy_coeff), pct(z)]);
    }
    t.note(format!(
        "Original accuracy {}%. Paper (Fig. 4): z-pools beat xy-with-coefficients \
         slightly and xy-without-coefficients clearly; pool size 64 suffices. \
         Every column is fine-tuned against its pool (the paper's Figure 2 \
         pipeline) for a like-for-like comparison.",
        pct(tm.float_acc)
    ));
    t.to_markdown()
}

/// Table 3: parameters, compression ratio and LUT overhead of the five
/// full-size networks (pool 64, 8-bit indices, 8-bit LUT).
pub fn table3_compression() -> String {
    let cfg = CompressionConfig::paper_default(64);
    let mut t = Table::new(
        "Table 3 - compression ratio (pool 64, 8-bit LUT, byte indices)",
        &[
            "Network",
            "Conv params",
            "Paper params",
            "CR",
            "Paper CR",
            "LUT overhead (%)",
            "Paper (%)",
        ],
    );
    let paper: [(&str, u64, &str, &str); 5] = [
        ("TinyConv", 81_600, "2.32", "29.8"),
        ("ResNet-s", 170_928, "4.43", "29.7"),
        ("ResNet-10", 665_280, "6.51", "13.8"),
        ("ResNet-14", 2_729_664, "7.55", "4.3"),
        ("MobileNet-v2", 2_249_792, "6.22", "4.5"),
    ];
    for (spec, (name, paper_params, paper_cr, paper_lut)) in
        wp_models::specs::all_networks().iter().zip(paper)
    {
        assert_eq!(spec.name, name);
        let report = storage_report(spec, &cfg);
        t.row(&[
            spec.name.clone(),
            report.conv_weights.to_string(),
            paper_params.to_string(),
            f(report.compression_ratio, 2),
            paper_cr.to_string(),
            f(report.lut_overhead * 100.0, 1),
            paper_lut.to_string(),
        ]);
    }
    t.note(
        "ResNet parameter counts match the paper exactly; TinyConv/MobileNet-v2 are \
         reconstructions (DESIGN.md). CR counts conv+dense weights at 8 bits vs \
         indices + LUT + uncompressed layers.",
    );
    t.to_markdown()
}

/// Table 4: accuracy vs pool size {32, 64, 128} on all five networks.
pub fn table4_pool_size(effort: Effort) -> String {
    let mut t = Table::new(
        "Table 4 - accuracy (%) vs weight pool size (float weights, no quantization)",
        &["Network", "Dataset", "Original", "32", "64", "128", "Paper orig/32/64/128"],
    );
    let paper: [(&str, &str); 5] = [
        ("ResNet-s", "85.3 / 82.0 / 83.0 / 84.0"),
        ("ResNet-10", "91.0 / 89.3 / 89.8 / 90.1"),
        ("ResNet-14", "92.3 / 90.7 / 91.1 / 91.0"),
        ("TinyConv", "82.2 / 81.7 / 82.2 / 82.3"),
        ("MobileNet-v2", "86.5 / 86.7 / 86.8 / 86.9"),
    ];
    for (kind, (pname, paper_row)) in MicroKind::all().iter().zip(paper) {
        assert_eq!(kind.name(), pname);
        let mut tm = train_base(*kind, effort, 100 + *kind as u64);
        let mut cells =
            vec![kind.name().to_string(), kind.dataset_name().to_string(), pct(tm.float_acc)];
        for pool_size in [32usize, 64, 128] {
            tm.restore();
            let cfg = default_cfg(pool_size);
            let (_pool, acc) = pool_finetune_eval(&mut tm, &cfg, effort, 100 + pool_size as u64);
            cells.push(pct(acc));
        }
        cells.push(paper_row.to_string());
        t.row(&cells);
    }
    t.note(
        "Expected trend: small drop vs original, shrinking as pool size grows; \
         64 suffices for most networks (paper default).",
    );
    t.to_markdown()
}

/// Table 5: accuracy vs lookup-table bitwidth {no-LUT, 16, 8, 4} at 8-bit
/// activations.
pub fn table5_lut_bitwidth(effort: Effort) -> String {
    let mut t = Table::new(
        "Table 5 - accuracy (%) vs LUT bitwidth (8-bit activations, pool 64)",
        &["Network", "No-LUT", "16", "8", "4", "Paper no-LUT/16/8/4"],
    );
    let paper: [(&str, &str); 5] = [
        ("ResNet-s", "83.0 / 83.0 / 82.9 / 82.3"),
        ("ResNet-10", "89.6 / 89.9 / 89.9 / 89.4"),
        ("ResNet-14", "91.1 / 91.1 / 91.1 / 90.4"),
        ("TinyConv", "82.2 / 82.2 / 82.1 / 81.6"),
        ("MobileNet-v2", "86.8 / 86.6 / 86.6 / 85.5"),
    ];
    for (kind, (pname, paper_row)) in MicroKind::all().iter().zip(paper) {
        assert_eq!(kind.name(), pname);
        let mut tm = train_base(*kind, effort, 200 + *kind as u64);
        let cfg = default_cfg(64);
        let (pool, _no_quant_acc) = pool_finetune_eval(&mut tm, &cfg, effort, 200);
        let no_lut = lut_sim_eval(&mut tm, &pool, &cfg, None, 8, effort);
        let mut cells = vec![kind.name().to_string(), pct(no_lut)];
        for bits in [16u8, 8, 4] {
            let acc = lut_sim_eval(&mut tm, &pool, &cfg, Some(bits), 8, effort);
            cells.push(pct(acc));
        }
        cells.push(paper_row.to_string());
        t.row(&cells);
    }
    t.note(
        "Expected trend: 16- and 8-bit LUTs lossless vs no-LUT; 4-bit loses \
         fractions of a point (paper keeps 8-bit as default).",
    );
    t.to_markdown()
}

/// Table 6: accuracy vs activation bitwidth 8→3 (8-bit LUT, pool 64), with
/// quantization-aware retraining where the drop exceeds 1%.
pub fn table6_activation_bitwidth(effort: Effort) -> String {
    let mut t = Table::new(
        "Table 6 - accuracy (%) vs activation bitwidth (8-bit LUT, pool 64); \
         values in parentheses are after retraining",
        &["Network", "8", "7", "6", "5", "4", "3", "Min bits (<1% drop)", "Paper min"],
    );
    let paper_min: [(&str, u8); 5] =
        [("ResNet-s", 4), ("ResNet-10", 4), ("ResNet-14", 3), ("TinyConv", 4), ("MobileNet-v2", 5)];
    for (kind, (pname, paper_m)) in MicroKind::all().iter().zip(paper_min) {
        assert_eq!(kind.name(), pname);
        let mut tm = train_base(*kind, effort, 300 + *kind as u64);
        let cfg = default_cfg(64);
        let (pool, pool_acc) = pool_finetune_eval(&mut tm, &cfg, effort, 300);
        let projected = tm.built.net.state_dict();
        let mut cells = vec![kind.name().to_string()];
        let mut min_bits: Option<u8> = None;
        for bits in [8u8, 7, 6, 5, 4, 3] {
            tm.built.net.load_state_dict(&projected);
            let acc = lut_sim_eval(&mut tm, &pool, &cfg, Some(8), bits, effort);
            let drop = pool_acc - acc;
            let cell = if drop > 0.01 && bits <= 5 {
                // Retrain with activation fake-quant, then re-evaluate.
                tm.built.net.load_state_dict(&projected);
                qat_retrain(&mut tm, &pool, &cfg, bits, effort);
                let retrained = lut_sim_eval(&mut tm, &pool, &cfg, Some(8), bits, effort);
                let best = acc.max(retrained);
                if pool_acc - best <= 0.01 {
                    min_bits = Some(bits);
                }
                format!("{} ({})", pct(acc), pct(retrained))
            } else {
                if drop <= 0.01 {
                    min_bits = Some(bits);
                }
                pct(acc)
            };
            cells.push(cell);
        }
        tm.built.net.load_state_dict(&projected);
        cells.push(min_bits.map(|b| b.to_string()).unwrap_or_else(|| ">8".into()));
        cells.push(paper_m.to_string());
        t.row(&cells);
    }
    t.note(
        "Expected trend: 8-6 bits lossless, degradation from 5 bits down, \
         retraining recovering several points; MobileNet-v2 the most \
         quantization-sensitive (paper min 5 bits).",
    );
    t.to_markdown()
}

/// The paper's minimum activation bitwidths (Table 6, last column) used by
/// the `-m` columns of Table 7.
fn paper_min_bits(name: &str) -> u8 {
    match name {
        "ResNet-14" => 3,
        "MobileNet-v2" => 5,
        _ => 4,
    }
}

/// Table 7: full-network inference latency (seconds) on both
/// microcontrollers: CMSIS vs weight pools {64, 32} at {8-bit, min} act.
pub fn table7_full_network(effort: Effort) -> String {
    let mut t = Table::new(
        "Table 7 - full-network latency in seconds ('/' = does not fit in flash)",
        &[
            "Device",
            "Network",
            "CMSIS",
            "64-8",
            "32-8",
            "64-m",
            "32-m",
            "Paper (CM/64-8/32-8/64-m/32-m)",
        ],
    );
    let paper: &[(&str, &str, &str)] = &[
        ("MC-large", "TinyConv", "1.06 / 0.83 / 0.75 / 0.60 / 0.57"),
        ("MC-large", "ResNet-s", "0.60 / 0.49 / 0.43 / 0.31 / 0.28"),
        ("MC-large", "ResNet-10", "5.28 / 3.00 / 2.22 / 1.87 / 1.61"),
        ("MC-large", "ResNet-14", "/ / 3.46 / 2.59 / 1.92 / 1.73"),
        ("MC-large", "MobileNet-v2", "/ / 3.60 / 3.12 / 3.07 / 2.78"),
        ("MC-small", "TinyConv", "1.95 / 1.49 / 1.33 / 0.99 / 0.89"),
        ("MC-small", "ResNet-s", "1.24 / 1.07 / 0.89 / 0.63 / 0.55"),
    ];
    let nets = wp_models::specs::all_networks();
    let (_p64, lut64) = synthetic_lut(64, 8, 7);
    let (_p32, lut32) = synthetic_lut(32, 8, 7);
    for &(dev_name, net_name, paper_row) in paper {
        if effort.fast && !matches!(net_name, "TinyConv" | "ResNet-s") {
            continue;
        }
        let device = if dev_name == "MC-large" { McuSpec::mc_large() } else { McuSpec::mc_small() };
        let net = nets.iter().find(|n| n.name == net_name).unwrap();
        let m = paper_min_bits(net_name);

        let cmsis = run(&device, net, &DeployMode::Cmsis);
        let bs = |lut, bits| {
            let mode = DeployMode::BitSerial { lut, opts: BitSerialOptions::paper_default(bits) };
            run(&device, net, &mode)
        };
        let r64_8 = bs(&lut64, 8);
        let r32_8 = bs(&lut32, 8);
        let r64_m = bs(&lut64, m);
        let r32_m = bs(&lut32, m);
        t.row(&[
            dev_name.to_string(),
            net_name.to_string(),
            latency_cell(&cmsis),
            latency_cell(&r64_8),
            latency_cell(&r32_8),
            latency_cell(&r64_m),
            latency_cell(&r32_m),
            paper_row.to_string(),
        ]);
    }
    t.note(
        "Minimum bitwidths (-m) use the paper's Table 6 values (4/4/3/4/5). \
         Expected shape: weight pools beat CMSIS everywhere; pool 32 beats 64; \
         lower bitwidth beats 8; ResNet-14 and MobileNet-v2 only fit with pools.",
    );
    t.to_markdown()
}

/// Figure 7: per-layer speedup of LUT caching and caching+precomputation
/// over the unoptimized bit-serial implementation, vs filter count.
pub fn fig7_layer_optimizations(effort: Effort) -> String {
    let mut t = Table::new(
        "Figure 7 - layer speedup vs baseline bit-serial implementation (3x3 conv, 16x16 input, pool 64)",
        &["Filters", "LUT caching", "Caching + precompute", "Paper caching", "Paper cache+pre"],
    );
    let paper: [(usize, &str, &str); 4] = [
        (32, "~1.05", "~0.95"),
        (64, "~1.15", "~1.2"),
        (128, "~1.3", "~1.9"),
        (192, "1.4", "2.45"),
    ];
    let filters: Vec<usize> = if effort.fast { vec![32, 64] } else { vec![32, 64, 128, 192] };
    for (fcount, paper_cache, paper_pre) in paper {
        if !filters.contains(&fcount) {
            continue;
        }
        let bench = if effort.fast {
            LayerBench { channels: fcount, hw: 8, pool_size: 64 }
        } else {
            LayerBench::paper(fcount)
        };
        let base = bench.run_bitserial(
            &BitSerialOptions {
                lut_cache: false,
                precompute: PrecomputeMode::ForceOff,
                ..BitSerialOptions::paper_default(8)
            },
            fcount as u64,
        );
        let cache = bench.run_bitserial(
            &BitSerialOptions {
                precompute: PrecomputeMode::ForceOff,
                ..BitSerialOptions::paper_default(8)
            },
            fcount as u64,
        );
        let cache_pre = bench.run_bitserial(
            &BitSerialOptions {
                precompute: PrecomputeMode::ForceOn,
                ..BitSerialOptions::paper_default(8)
            },
            fcount as u64,
        );
        t.row(&[
            fcount.to_string(),
            f(base as f64 / cache as f64, 2),
            f(base as f64 / cache_pre as f64, 2),
            paper_cache.to_string(),
            paper_pre.to_string(),
        ]);
    }

    // §4.1's claim: naive per-dot-product unpacking is several times slower.
    let bench = if effort.fast {
        LayerBench { channels: 64, hw: 8, pool_size: 64 }
    } else {
        LayerBench::paper(64)
    };
    let tuned = bench.run_bitserial(
        &BitSerialOptions {
            precompute: PrecomputeMode::ForceOff,
            lut_cache: false,
            ..BitSerialOptions::paper_default(8)
        },
        99,
    );
    let naive = bench.run_bitserial(
        &BitSerialOptions {
            input_reuse: false,
            lut_cache: false,
            precompute: PrecomputeMode::ForceOff,
            ..BitSerialOptions::paper_default(8)
        },
        99,
    );
    t.note(format!(
        "Expected shape: caching benefit grows with filter count; precompute \
         helps only above the pool size (64). Naive per-dot-product bit \
         unpacking (S4.1) measured {:.1}x slower than the input-reuse dataflow \
         (paper: ~9x slower than baseline overall).",
        naive as f64 / tuned as f64
    ));
    t.to_markdown()
}

/// Figure 8: speedup vs activation bitwidth, without and with
/// precomputation (128 channels/filters, pool 64).
pub fn fig8_activation_speedup(effort: Effort) -> String {
    let mut t = Table::new(
        "Figure 8 - speedup over 8-bit bit-serial execution vs activation bitwidth (128ch, pool 64)",
        &["Act bits", "No precompute", "With precompute", "Paper no-pre (approx)"],
    );
    let bench = if effort.fast {
        LayerBench { channels: 32, hw: 8, pool_size: 16 }
    } else {
        LayerBench::paper(128)
    };
    let run_at = |bits: u8, pre: PrecomputeMode| {
        bench.run_bitserial(
            &BitSerialOptions { precompute: pre, ..BitSerialOptions::paper_default(bits) },
            1000 + bits as u64,
        )
    };
    let base_no = run_at(8, PrecomputeMode::ForceOff);
    let base_pre = run_at(8, PrecomputeMode::ForceOn);
    let paper = ["1.0", "~1.1", "~1.3", "~1.5", "~1.8", "~2.2", "~2.9", "~3.9"];
    for (i, bits) in (1..=8u8).rev().enumerate() {
        let no = run_at(bits, PrecomputeMode::ForceOff);
        let pre = run_at(bits, PrecomputeMode::ForceOn);
        t.row(&[
            bits.to_string(),
            f(base_no as f64 / no as f64, 2),
            f(base_pre as f64 / pre as f64, 2),
            paper[i].to_string(),
        ]);
    }
    t.note(
        "Expected shape: near-linear speedup as bits shrink (slope limited by \
         the fixed unpack overhead, ~4x at 1 bit); precompute compresses the \
         range because the result-lookup phase is bitwidth-independent.",
    );
    t.to_markdown()
}

/// §5.5: weight pools vs binarized networks — accuracy collapse of the
/// binarized TinyConv and the BNN kernel's speed.
pub fn sec55_binarized(effort: Effort) -> String {
    let mut t = Table::new(
        "S5.5 - weight pools vs binarized networks (TinyConv)",
        &["Variant", "Accuracy (%)", "Paper (%)"],
    );
    let mut tm = train_base(MicroKind::TinyConv, effort, 55);
    t.row(&["float".into(), pct(tm.float_acc), "-".into()]);

    // Weight pool (64) accuracy.
    let cfg = default_cfg(64);
    let (_pool, wp_acc) = pool_finetune_eval(&mut tm, &cfg, effort, 55);
    t.row(&["weight pool 64".into(), pct(wp_acc), "81.2".into()]);

    // Binarized: straight-through fine-tuning with sign(w)*mean|w| weights
    // and 1-bit activations.
    tm.restore();
    binarize_finetune(&mut tm, effort);
    let bnn_acc = eval_subset(&mut tm.built.net, &tm.data.test, effort.eval_images());
    t.row(&["binarized (1-bit w, 1-bit act)".into(), pct(bnn_acc), "66.9".into()]);

    // Kernel speed: binary conv vs CMSIS int8 conv on a TinyConv-scale layer.
    let shape = wp_core::reference::PooledConvShape {
        in_ch: 32,
        out_ch: 32,
        kernel: 5,
        stride: 1,
        pad: 2,
        in_h: 14,
        in_w: 14,
    };
    let mut m_int8 = wp_mcu::Mcu::new(McuSpec::mc_large());
    let codes = vec![1i32; 32 * 14 * 14];
    let weights = vec![1i8; 32 * 32 * 25];
    let oq = wp_kernels::OutputQuant::identity(8);
    wp_kernels::cmsis::conv_cmsis(&mut m_int8, &codes, &shape, &weights, &[0; 32], &oq);
    let mut m_bnn = wp_mcu::Mcu::new(McuSpec::mc_large());
    let packed_in = vec![0u32; 14 * 14];
    let packed_w = vec![0u32; 32 * 25];
    wp_kernels::bnn::conv_bnn(&mut m_bnn, &packed_in, &shape, &packed_w, &oq);
    t.note(format!(
        "BNN kernel speedup over CMSIS int8 on a 5x5x32x32 layer: {:.1}x \
         (binarized-network MCU papers report 2-4x). The accuracy collapse \
         with matching compression is the paper's argument for weight pools.",
        m_int8.cycles() as f64 / m_bnn.cycles() as f64
    ));
    t.to_markdown()
}

/// Straight-through binarization fine-tuning: forward with
/// `sign(w)·mean|w|` weights and 1-bit activations, gradients to latent
/// weights.
fn binarize_finetune(tm: &mut TrainedModel, effort: Effort) {
    use wp_nn::ActQuantMode;
    // Calibrate 1-bit activation quantizers.
    for h in &tm.built.act_handles {
        h.clear_samples();
        h.set_mode(ActQuantMode::Observe);
    }
    for batch in tm.data.train.iter().take(2) {
        tm.built.net.forward(&batch.images, false);
    }
    for h in &tm.built.act_handles {
        h.finalize(1, 20);
        h.set_mode(ActQuantMode::Quantize);
    }

    let mut opt = wp_nn::Sgd::new(0.005).momentum(0.9);
    let epochs = effort.finetune_epochs();
    for _ in 0..epochs {
        for batch in tm.data.train.clone() {
            let latent = tm.built.net.state_dict();
            binarize_convs(&mut tm.built.net);
            let logits = tm.built.net.forward(&batch.images, true);
            let out = wp_nn::SoftmaxCrossEntropy::compute(&logits, &batch.labels);
            tm.built.net.backward(&out.grad);
            tm.built.net.load_state_dict(&latent);
            opt.step(&mut tm.built.net);
        }
    }
    binarize_convs(&mut tm.built.net);
}

/// Replaces every non-stem conv's weights with `sign(w)·mean|w|` per layer.
fn binarize_convs(net: &mut wp_nn::Sequential) {
    wp_core::compress::for_each_conv_indexed(net, |pos, conv| {
        if pos == 0 {
            return;
        }
        let w = conv.weight_mut();
        let mean_abs = w.data().iter().map(|v| v.abs()).sum::<f32>() / w.len() as f32;
        for v in w.data_mut() {
            *v = if *v >= 0.0 { mean_abs } else { -mean_abs };
        }
    });
}

/// The §3.2 storage example and Eq. 4 curves: a quick numeric check table.
pub fn compression_formula_check() -> String {
    let mut t = Table::new(
        "Eq. 3/4 - lookup table storage and theoretical compression ratio",
        &["Pool size", "LUT storage (kB)", "Eq.4 CR (W=1M, 8-bit)", "Eq.4 CR (W=100k)"],
    );
    for pool_size in [32usize, 64, 128] {
        let cfg = CompressionConfig::paper_default(pool_size);
        let lut_kb = cfg.lut_storage_bits() as f64 / 8.0 / 1024.0;
        let cr1m = wp_core::compression::theoretical_cr(1_000_000, 8, 8, pool_size, 8);
        let cr100k = wp_core::compression::theoretical_cr(100_000, 8, 8, pool_size, 8);
        t.row(&[pool_size.to_string(), f(lut_kb, 1), f(cr1m, 2), f(cr100k, 2)]);
    }
    t.note("Paper S3.2: 64-vector pool at 8-bit entries = 16 kB of LUT.");
    t.to_markdown()
}

/// Footnote 1 (§5.2): compressing the fully-connected layers too —
/// compression ratio gained vs accuracy lost (ResNet-s and TinyConv, the
/// networks where FC weight share matters).
pub fn footnote1_fc_compression(effort: Effort) -> String {
    let mut t = Table::new(
        "Footnote 1 - pooling the FC layer (pool 64): CR and accuracy deltas",
        &["Network", "CR (conv only)", "CR (conv+FC)", "Acc conv-only (%)", "Acc +FC (%)", "Paper"],
    );
    let paper: [(MicroKind, &str); 2] = [
        (MicroKind::ResNetS, "CR 4.43->4.5 at -0.7% acc"),
        (MicroKind::TinyConv, "CR 2.32->3.1 at -2.8% acc"),
    ];
    for (kind, paper_note) in paper {
        // Storage side: full-size spec with/without FC compression.
        let spec_name = kind.name();
        let mut spec =
            wp_models::specs::all_networks().into_iter().find(|n| n.name == spec_name).unwrap();
        let ccfg = CompressionConfig::paper_default(64);
        let cr_conv = storage_report(&spec, &ccfg).compression_ratio;
        for layer in &mut spec.layers {
            if let wp_core::netspec::LayerSpec::Dense { in_features, compressed, .. } = layer {
                if *in_features % 8 == 0 {
                    *compressed = true;
                }
            }
        }
        let cr_fc = storage_report(&spec, &ccfg).compression_ratio;

        // Accuracy side on the micro model: pool conv-only vs conv+FC.
        let mut tm = train_base(kind, effort, 501);
        let cfg = default_cfg(64);
        let (pool, acc_conv) = pool_finetune_eval(&mut tm, &cfg, effort, 501);
        let replaced = wp_core::fc_pool::project_dense(&mut tm.built.net, &pool, &cfg);
        assert!(replaced > 0, "{spec_name}: FC projection replaced nothing");
        let acc_fc = tm.eval(effort.eval_images());

        t.row(&[
            spec_name.to_string(),
            f(cr_conv, 2),
            f(cr_fc, 2),
            pct(acc_conv),
            pct(acc_fc),
            paper_note.to_string(),
        ]);
    }
    t.note(
        "Expected trend: FC pooling buys extra compression on small networks \
         at a visible accuracy cost - why the paper leaves FC uncompressed.",
    );
    t.to_markdown()
}

/// Ablation (DESIGN.md): cosine vs Euclidean clustering metric for pool
/// generation, on ResNet-14 at pool 64.
pub fn ablation_metric(effort: Effort) -> String {
    let mut tm = train_base(MicroKind::ResNet14, effort, 601);
    let mut t = Table::new(
        "Ablation - pool clustering metric (ResNet-14, pool 64)",
        &["Metric", "Projection acc (%)", "Fine-tuned acc (%)"],
    );
    for (name, metric) in
        [("cosine (paper)", DistanceMetric::Cosine), ("euclidean", DistanceMetric::Euclidean)]
    {
        tm.restore();
        let cfg = default_cfg(64).metric(metric);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(601);
        let pool = wp_core::compress::build_pool(&mut tm.built.net, &cfg, &mut rng).unwrap();
        wp_core::compress::project(&mut tm.built.net, &pool, &cfg);
        let proj_acc = tm.eval(effort.eval_images());
        let mut opt = wp_nn::Sgd::new(0.01).momentum(0.9);
        wp_core::compress::finetune(
            &mut tm.built.net,
            &pool,
            &cfg,
            &mut opt,
            &tm.data.train,
            effort.finetune_epochs(),
        );
        let ft_acc = tm.eval(effort.eval_images());
        t.row(&[name.to_string(), pct(proj_acc), pct(ft_acc)]);
    }
    t.note(format!(
        "Original accuracy {}%. The paper picks cosine to avoid scaling \
         dependence; fine-tuning narrows whatever gap projection opens.",
        pct(tm.float_acc)
    ));
    t.to_markdown()
}

/// Ablation (§4.2 + appendix): input-oriented vs weight-oriented LUT
/// memory order under the caching optimization.
pub fn ablation_lut_order(effort: Effort) -> String {
    use wp_core::{LutOrder, WeightPool};
    let mut t = Table::new(
        "Ablation - LUT memory order with caching (3x3 conv, pool 64)",
        &["Filters", "Input-oriented (cycles)", "Weight-oriented (cycles)", "Penalty"],
    );
    let filters: Vec<usize> = if effort.fast { vec![32] } else { vec![32, 128] };
    for fcount in filters {
        let bench = if effort.fast {
            LayerBench { channels: fcount, hw: 8, pool_size: 64 }
        } else {
            LayerBench::paper(fcount)
        };
        let run_order = |order: LutOrder| {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
            use rand::Rng;
            let vectors: Vec<Vec<f32>> =
                (0..64).map(|_| (0..8).map(|_| rng.gen_range(-0.5f32..0.5)).collect()).collect();
            let pool = WeightPool::from_vectors(vectors);
            let lut = wp_core::LookupTable::build(&pool, 8, order);
            let shape = bench.shape();
            let codes = vec![1i32; shape.in_ch * shape.in_h * shape.in_w];
            let indices = vec![0u8; shape.index_count(8)];
            let bias = vec![0i32; shape.out_ch];
            let mut mcu = wp_mcu::Mcu::new(McuSpec::mc_large());
            wp_kernels::conv_bitserial(
                &mut mcu,
                &codes,
                &shape,
                &indices,
                &lut,
                &bias,
                &wp_kernels::OutputQuant::identity(8),
                &BitSerialOptions {
                    precompute: PrecomputeMode::ForceOff,
                    ..BitSerialOptions::paper_default(8)
                },
            );
            mcu.cycles()
        };
        let input_or = run_order(LutOrder::InputOriented);
        let weight_or = run_order(LutOrder::WeightOriented);
        t.row(&[
            fcount.to_string(),
            input_or.to_string(),
            weight_or.to_string(),
            format!("{:.2}x", weight_or as f64 / input_or as f64),
        ]);
    }
    t.note(
        "Input-oriented order makes each cached block a contiguous burst \
         copy; weight-oriented order degrades to per-entry gathers - the \
         reason the paper picks input-oriented (S4.2).",
    );
    t.to_markdown()
}

/// Ablation: how much of the bit-serial advantage survives a stronger
/// baseline core? Re-runs the ResNet-s Table-7 comparison on a
/// hypothetical Cortex-M4 (single-cycle DSP MAC) next to the paper's M3.
pub fn ablation_m4_baseline(_effort: Effort) -> String {
    let mut t = Table::new(
        "Ablation - baseline core strength (ResNet-s, pool 64, 8-bit and 4-bit act)",
        &["Core", "CMSIS (s)", "64-8 (s)", "Speedup 8b", "64-4 (s)", "Speedup 4b"],
    );
    let net = wp_models::specs::resnet_s();
    let (_p, lut) = synthetic_lut(64, 8, 13);
    for device in [McuSpec::mc_large(), McuSpec::mc_large_m4()] {
        let cmsis = run(&device, &net, &DeployMode::Cmsis);
        let b8 = run(
            &device,
            &net,
            &DeployMode::BitSerial { lut: &lut, opts: BitSerialOptions::paper_default(8) },
        );
        let b4 = run(
            &device,
            &net,
            &DeployMode::BitSerial { lut: &lut, opts: BitSerialOptions::paper_default(4) },
        );
        t.row(&[
            device.name.clone(),
            f(cmsis.seconds, 3),
            f(b8.seconds, 3),
            format!("{:.2}x", cmsis.seconds / b8.seconds),
            f(b4.seconds, 3),
            format!("{:.2}x", cmsis.seconds / b4.seconds),
        ]);
    }
    t.note(
        "The bit-serial inner loop does no multiplies, so a single-cycle DSP \
         MAC only helps the int8 baseline. The paper's choice of DSP-less \
         M0/M3 targets is where weight pools shine brightest; sub-byte \
         bitwidths keep a margin even against the M4.",
    );
    t.to_markdown()
}

/// A named experiment: report title plus the closure that renders it.
type NamedExperiment = (&'static str, Box<dyn Fn() -> String>);

/// Runs every experiment and returns the combined report.
pub fn run_all(effort: Effort) -> String {
    let mut out = String::new();
    let experiments: Vec<NamedExperiment> = vec![
        ("Table 3", Box::new(table3_compression)),
        ("Eq. 3/4", Box::new(compression_formula_check)),
        ("Figure 7", Box::new(move || fig7_layer_optimizations(effort))),
        ("Figure 8", Box::new(move || fig8_activation_speedup(effort))),
        ("Table 7", Box::new(move || table7_full_network(effort))),
        ("Table 1", Box::new(move || table1_group_size(effort))),
        ("Figure 4", Box::new(move || fig4_pool_dimension(effort))),
        ("Table 4", Box::new(move || table4_pool_size(effort))),
        ("Table 5", Box::new(move || table5_lut_bitwidth(effort))),
        ("Table 6", Box::new(move || table6_activation_bitwidth(effort))),
        ("S5.5", Box::new(move || sec55_binarized(effort))),
        ("Footnote 1", Box::new(move || footnote1_fc_compression(effort))),
        ("Metric ablation", Box::new(move || ablation_metric(effort))),
        ("LUT-order ablation", Box::new(move || ablation_lut_order(effort))),
        ("M4-baseline ablation", Box::new(move || ablation_m4_baseline(effort))),
    ];
    for (name, run_fn) in experiments {
        eprintln!("[run_all] running {name} ...");
        let started = std::time::Instant::now();
        out.push_str(&run_fn());
        out.push('\n');
        eprintln!("[run_all] {name} done in {:.1}s", started.elapsed().as_secs_f32());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_is_deterministic_and_complete() {
        let a = table3_compression();
        let b = table3_compression();
        assert_eq!(a, b);
        for name in ["TinyConv", "ResNet-s", "ResNet-10", "ResNet-14", "MobileNet-v2"] {
            assert!(a.contains(name), "missing {name}");
        }
    }

    #[test]
    fn compression_formula_table_renders() {
        let s = compression_formula_check();
        assert!(s.contains("16.0"), "64-pool LUT should be 16 kB:\n{s}");
    }

    #[test]
    fn fig7_runs_fast() {
        let s = fig7_layer_optimizations(Effort { fast: true });
        assert!(s.contains("Figure 7"));
        assert!(s.contains("32"));
    }
}
