//! Shared pipeline for the accuracy experiments (Tables 1/4/5/6, Figure 4).
//!
//! One base model per network family is trained on its synthetic dataset;
//! each experiment configuration then restores the base weights, applies
//! the compression under test (z-pool / xy-pool, pool size, group size),
//! fine-tunes, and evaluates — either in float (pool-only accuracy) or
//! through the bit-serial LUT simulation (LUT/activation bitwidth tables).

use crate::Effort;
use rand::SeedableRng;
use wp_core::compress;
use wp_core::simulate::{calibrate_and_arm, SimInstallation};
use wp_core::xy_pool::{extract_xy_kernels, project_xy, XyPool};
use wp_core::{LookupTable, LutOrder, PoolConfig, WeightPool};
use wp_data::{Dataset, SyntheticSpec};
use wp_models::micro;
use wp_models::BuiltModel;
use wp_nn::train::{evaluate, train_epoch, Batch, EpochStats};
use wp_nn::{ActQuantMode, LrSchedule, Sgd};

/// The five evaluation network families, micro-scaled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroKind {
    /// TinyConv on the Quickdraw-like dataset.
    TinyConv,
    /// ResNet-s on the CIFAR-like dataset.
    ResNetS,
    /// ResNet-10 on the CIFAR-like dataset.
    ResNet10,
    /// ResNet-14 on the CIFAR-like dataset.
    ResNet14,
    /// MobileNet-v2 on the Quickdraw-like dataset.
    MobileNetV2,
}

impl MicroKind {
    /// All five families in the paper's table order.
    pub fn all() -> [MicroKind; 5] {
        [
            MicroKind::ResNetS,
            MicroKind::ResNet10,
            MicroKind::ResNet14,
            MicroKind::TinyConv,
            MicroKind::MobileNetV2,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            MicroKind::TinyConv => "TinyConv",
            MicroKind::ResNetS => "ResNet-s",
            MicroKind::ResNet10 => "ResNet-10",
            MicroKind::ResNet14 => "ResNet-14",
            MicroKind::MobileNetV2 => "MobileNet-v2",
        }
    }

    /// The dataset family this network is evaluated on.
    pub fn dataset_name(&self) -> &'static str {
        match self {
            MicroKind::TinyConv | MicroKind::MobileNetV2 => "Quickdraw-like",
            _ => "CIFAR-like",
        }
    }

    fn dataset(&self, effort: Effort, seed: u64) -> Dataset {
        match self {
            MicroKind::TinyConv | MicroKind::MobileNetV2 => {
                let mut spec = SyntheticSpec::quickdraw_like(2, seed);
                // 100 classes is the paper's Quickdraw-100 setting; shrink
                // per-class counts instead of classes.
                if effort.fast {
                    spec.classes = 20;
                    spec.train_per_class = 24;
                    spec.test_per_class = 8;
                } else {
                    spec.train_per_class = 24;
                    spec.test_per_class = 6;
                }
                spec.generate()
            }
            _ => {
                let mut spec = SyntheticSpec::cifar_like(2, seed);
                if effort.fast {
                    spec.train_per_class = 48;
                    spec.test_per_class = 20;
                } else {
                    spec.train_per_class = 100;
                    spec.test_per_class = 40;
                }
                spec.generate()
            }
        }
    }

    fn build(&self, classes: usize, rng: &mut rand::rngs::StdRng) -> BuiltModel {
        match self {
            MicroKind::TinyConv => micro::tinyconv(classes, rng),
            MicroKind::ResNetS => micro::resnet_s(classes, rng),
            MicroKind::ResNet10 => micro::resnet_10(classes, rng),
            MicroKind::ResNet14 => micro::resnet_14(classes, rng),
            MicroKind::MobileNetV2 => micro::mobilenet_v2(classes, rng),
        }
    }
}

/// A trained base model, its data, and a snapshot to restore between
/// experiment configurations.
pub struct TrainedModel {
    /// The model (weights mutate as configurations are applied).
    pub built: BuiltModel,
    /// Train/test data.
    pub data: Dataset,
    /// Snapshot of the trained base weights.
    pub base_state: wp_nn::StateDict,
    /// Float test accuracy of the base model ("Original" columns).
    pub float_acc: f32,
    /// Network family.
    pub kind: MicroKind,
}

impl std::fmt::Debug for TrainedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedModel")
            .field("kind", &self.kind)
            .field("float_acc", &self.float_acc)
            .finish()
    }
}

/// Trains the base model for a network family.
pub fn train_base(kind: MicroKind, effort: Effort, seed: u64) -> TrainedModel {
    let data = kind.dataset(effort, seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xB17);
    let mut built = kind.build(data.classes, &mut rng);
    let epochs = effort.train_epochs();
    let schedule = LrSchedule::step(0.04, vec![epochs * 2 / 3], 0.2);
    let mut opt = Sgd::new(schedule.at(0)).momentum(0.9).weight_decay(1e-4);
    let mut last = EpochStats { loss: f32::NAN, accuracy: 0.0 };
    for epoch in 0..epochs {
        opt.set_lr(schedule.at(epoch));
        last = train_epoch(&mut built.net, &mut opt, &data.train);
    }
    let _ = last;
    let float_acc = evaluate(&mut built.net, &data.test).accuracy;
    let base_state = built.net.state_dict();
    TrainedModel { built, data, base_state, float_acc, kind }
}

impl TrainedModel {
    /// Restores the trained base weights (undoing any projection).
    pub fn restore(&mut self) {
        self.built.net.load_state_dict(&self.base_state);
        // Also clear any leftover quantization state.
        for h in &self.built.act_handles {
            h.set_mode(ActQuantMode::Off);
        }
    }

    /// Evaluates float test accuracy on up to `max_images` test images.
    pub fn eval(&mut self, max_images: usize) -> f32 {
        eval_subset(&mut self.built.net, &self.data.test, max_images)
    }
}

/// Evaluates accuracy on a bounded number of test images.
pub fn eval_subset(net: &mut wp_nn::Sequential, batches: &[Batch], max_images: usize) -> f32 {
    let mut used = Vec::new();
    let mut count = 0usize;
    for b in batches {
        if count >= max_images {
            break;
        }
        used.push(b.clone());
        count += b.len();
    }
    if used.is_empty() {
        used.push(batches[0].clone());
    }
    evaluate(net, &used).accuracy
}

/// Builds a z-dimension pool from the current (trained) weights, projects
/// the model onto it, fine-tunes, and returns the pool with the float
/// ("No-LUT") accuracy.
pub fn pool_finetune_eval(
    tm: &mut TrainedModel,
    cfg: &PoolConfig,
    effort: Effort,
    seed: u64,
) -> (WeightPool, f32) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9001);
    let pool =
        compress::build_pool(&mut tm.built.net, cfg, &mut rng).expect("pool construction failed");
    let mut opt = Sgd::new(0.01).momentum(0.9);
    compress::finetune(
        &mut tm.built.net,
        &pool,
        cfg,
        &mut opt,
        &tm.data.train,
        effort.finetune_epochs(),
    );
    let acc = tm.eval(effort.eval_images());
    (pool, acc)
}

/// Evaluates the projected model through the bit-serial LUT simulation.
///
/// `lut_bits = None` uses exact (unquantized) partial dot products — the
/// ablation isolating activation quantization. The model must already be
/// projected onto `pool`.
pub fn lut_sim_eval(
    tm: &mut TrainedModel,
    pool: &WeightPool,
    cfg: &PoolConfig,
    lut_bits: Option<u8>,
    act_bits: u8,
    effort: Effort,
) -> f32 {
    let lut = LookupTable::build(pool, lut_bits.unwrap_or(16), LutOrder::InputOriented);
    let calib: Vec<Batch> = tm.data.train.iter().take(2).cloned().collect();
    let install: SimInstallation =
        calibrate_and_arm(&mut tm.built.net, pool, lut, cfg, &calib, act_bits, lut_bits.is_none());
    let acc = eval_subset(&mut tm.built.net, &tm.data.test, effort.sim_eval_images());
    install.uninstall(&mut tm.built.net);
    acc
}

/// Quantization-aware retraining at a given activation bitwidth (the
/// bracketed numbers in Table 6): calibrate the fake-quant sites, enable
/// them, and fine-tune against the pool.
pub fn qat_retrain(
    tm: &mut TrainedModel,
    pool: &WeightPool,
    cfg: &PoolConfig,
    act_bits: u8,
    effort: Effort,
) {
    // Calibrate the activation sites on a couple of training batches.
    for h in &tm.built.act_handles {
        h.clear_samples();
        h.set_mode(ActQuantMode::Observe);
    }
    for batch in tm.data.train.iter().take(2) {
        tm.built.net.forward(&batch.images, false);
    }
    for h in &tm.built.act_handles {
        if h.sample_count() == 0 {
            // A site that saw no activations (should not happen for the
            // micro models, but stay robust): leave it off.
            continue;
        }
        h.finalize(act_bits, 30);
        h.set_mode(ActQuantMode::Quantize);
    }
    let mut opt = Sgd::new(0.005).momentum(0.9);
    compress::finetune(
        &mut tm.built.net,
        pool,
        cfg,
        &mut opt,
        &tm.data.train,
        effort.finetune_epochs(),
    );
    for h in &tm.built.act_handles {
        h.set_mode(ActQuantMode::Off);
    }
}

/// Figure 4's baseline: xy-dimension (whole 3×3 kernel) pooling with or
/// without per-kernel scaling coefficients. Builds the kernel pool,
/// straight-through fine-tunes against it (mirroring the z-pool pipeline
/// so the comparison is like for like), and returns test accuracy with the
/// model left projected.
pub fn xy_pool_eval(
    tm: &mut TrainedModel,
    pool_size: usize,
    with_coeff: bool,
    effort: Effort,
    seed: u64,
) -> f32 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x2277);
    // Collect all 3x3 kernels (skip first conv).
    let mut samples = Vec::new();
    compress::for_each_conv_indexed(&mut tm.built.net, |pos, conv| {
        if pos > 0 && conv.kernel() == 3 {
            samples.extend(extract_xy_kernels(conv.weight(), 3));
        }
    });
    let pool = XyPool::build(&samples, pool_size, 3, &mut rng).expect("xy pool build");
    let project_all = |net: &mut wp_nn::Sequential| {
        compress::for_each_conv_indexed(net, |pos, conv| {
            if pos > 0 && conv.kernel() == 3 {
                project_xy(conv.weight_mut(), &pool, with_coeff);
            }
        });
    };
    // Straight-through fine-tuning: forward/backward at the projected
    // point, update the latent weights.
    let mut opt = Sgd::new(0.01).momentum(0.9);
    for _ in 0..effort.finetune_epochs() {
        for batch in tm.data.train.clone() {
            let latent = tm.built.net.state_dict();
            project_all(&mut tm.built.net);
            let logits = tm.built.net.forward(&batch.images, true);
            let out = wp_nn::SoftmaxCrossEntropy::compute(&logits, &batch.labels);
            tm.built.net.backward(&out.grad);
            tm.built.net.load_state_dict(&latent);
            opt.step(&mut tm.built.net);
        }
    }
    project_all(&mut tm.built.net);
    tm.eval(effort.eval_images())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Effort {
        Effort { fast: true }
    }

    #[test]
    fn base_training_learns() {
        let tm = train_base(MicroKind::ResNetS, fast(), 3);
        // 10-class task, 2 fast epochs: anything clearly above chance.
        assert!(tm.float_acc > 0.2, "accuracy {}", tm.float_acc);
    }

    #[test]
    fn restore_round_trips() {
        let mut tm = train_base(MicroKind::ResNetS, fast(), 4);
        let before = tm.eval(100);
        let cfg = PoolConfig::new(16).kmeans_iters(10);
        let (_pool, _acc) = pool_finetune_eval(&mut tm, &cfg, fast(), 4);
        tm.restore();
        let after = tm.eval(100);
        assert!((before - after).abs() < 1e-6, "restore changed accuracy");
    }

    #[test]
    fn pool_pipeline_produces_accuracy() {
        let mut tm = train_base(MicroKind::ResNetS, fast(), 5);
        let cfg = PoolConfig::new(32).kmeans_iters(10);
        let (pool, acc) = pool_finetune_eval(&mut tm, &cfg, fast(), 5);
        assert_eq!(pool.len(), 32);
        assert!((0.0..=1.0).contains(&acc));
        // LUT simulation runs end to end.
        let sim_acc = lut_sim_eval(&mut tm, &pool, &cfg, Some(8), 8, fast());
        assert!((0.0..=1.0).contains(&sim_acc));
    }

    #[test]
    fn xy_eval_runs() {
        let mut tm = train_base(MicroKind::ResNetS, fast(), 6);
        let acc = xy_pool_eval(&mut tm, 16, true, fast(), 6);
        assert!((0.0..=1.0).contains(&acc));
    }
}
