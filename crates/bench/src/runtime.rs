//! Shared helpers for the runtime experiments (Table 7, Figures 7/8).

use rand::{Rng, SeedableRng};
use wp_core::reference::PooledConvShape;
use wp_core::{LookupTable, LutOrder, WeightPool};
use wp_kernels::network::{DeployMode, NetworkRunResult};
use wp_kernels::{conv_bitserial, BitSerialOptions, OutputQuant};
use wp_mcu::{Mcu, McuSpec};

/// A deterministic random pool + LUT of the given size (runtime results
/// are value-independent; only shapes matter).
pub fn synthetic_lut(pool_size: usize, lut_bits: u8, seed: u64) -> (WeightPool, LookupTable) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let vectors: Vec<Vec<f32>> =
        (0..pool_size).map(|_| (0..8).map(|_| rng.gen_range(-0.5f32..0.5)).collect()).collect();
    let pool = WeightPool::from_vectors(vectors);
    let lut = LookupTable::build(&pool, lut_bits, LutOrder::InputOriented);
    (pool, lut)
}

/// The single-layer benchmark configuration of Figures 7 and 8: a 3×3
/// convolution on a square input with equal channel and filter counts.
#[derive(Debug, Clone, Copy)]
pub struct LayerBench {
    /// Channels = filters.
    pub channels: usize,
    /// Input height = width.
    pub hw: usize,
    /// Pool size.
    pub pool_size: usize,
}

impl LayerBench {
    /// The paper's Figure 7/8 setting: 16×16 input, pool 64.
    pub fn paper(channels: usize) -> Self {
        Self { channels, hw: 16, pool_size: 64 }
    }

    /// The conv shape.
    pub fn shape(&self) -> PooledConvShape {
        PooledConvShape {
            in_ch: self.channels,
            out_ch: self.channels,
            kernel: 3,
            stride: 1,
            pad: 1,
            in_h: self.hw,
            in_w: self.hw,
        }
    }

    /// Runs the bit-serial kernel once on MC-large, returning cycles.
    pub fn run_bitserial(&self, opts: &BitSerialOptions, seed: u64) -> u64 {
        let shape = self.shape();
        let (_pool, lut) = synthetic_lut(self.pool_size, 8, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xFEED);
        let hi = 1i32 << opts.act_bits;
        let codes: Vec<i32> =
            (0..shape.in_ch * shape.in_h * shape.in_w).map(|_| rng.gen_range(0..hi)).collect();
        let indices: Vec<u8> =
            (0..shape.index_count(8)).map(|_| rng.gen_range(0..self.pool_size) as u8).collect();
        let bias = vec![0i32; shape.out_ch];
        let oq = OutputQuant::identity(8);
        let mut mcu = Mcu::new(McuSpec::mc_large());
        conv_bitserial(&mut mcu, &codes, &shape, &indices, &lut, &bias, &oq, opts);
        mcu.cycles()
    }
}

/// A synthetic deployable bundle compiled for the native engine: direct
/// stem + two pooled convs + pooling + dense head, sized by `channels`.
/// Runtime throughput depends only on shapes, so weights are fabricated.
pub fn synthetic_prepared_net(channels: usize, seed: u64) -> wp_engine::PreparedNet {
    use wp_core::deploy::{ConvPayload, DeployBundle};
    use wp_core::netspec::{ConvSpec, LayerSpec, NetSpec};

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (pool, lut) = synthetic_lut(64, 8, seed);
    let conv = |in_ch: usize, out_ch: usize, compressed: bool| {
        LayerSpec::Conv(ConvSpec { in_ch, out_ch, kernel: 3, stride: 1, pad: 1, compressed })
    };
    let spec = NetSpec {
        name: format!("serve-{channels}"),
        input: (3, 16, 16),
        classes: 10,
        layers: vec![
            conv(3, channels, false),
            conv(channels, channels, true),
            LayerSpec::MaxPool { size: 2 },
            conv(channels, channels, true),
            LayerSpec::GlobalAvgPool,
            LayerSpec::Dense { in_features: channels, out_features: 10, compressed: false },
        ],
    };
    let stem: Vec<i8> = (0..channels * 3 * 9).map(|_| rng.gen_range(-127i32..=127) as i8).collect();
    let mut pooled = || -> Vec<u8> {
        (0..channels * (channels / 8) * 9).map(|_| rng.gen_range(0..64) as u8).collect()
    };
    let convs = vec![
        ConvPayload::Direct { weights: stem, scale: 0.01 },
        ConvPayload::Pooled { indices: pooled() },
        ConvPayload::Pooled { indices: pooled() },
    ];
    let bundle = DeployBundle { spec, pool, lut, convs, act_bits: 8 };
    wp_engine::PreparedNet::from_bundle(&bundle, &wp_engine::EngineOptions::default())
}

/// Formats a network-run latency cell for Table 7 ("/" when the network
/// does not fit in flash, as in the paper).
pub fn latency_cell(result: &NetworkRunResult) -> String {
    if result.fits_flash {
        format!("{:.2}", result.seconds)
    } else {
        "/".to_string()
    }
}

/// Convenience: run a network spec in a deploy mode on a device.
pub fn run(
    device: &McuSpec,
    net: &wp_core::netspec::NetSpec,
    mode: &DeployMode<'_>,
) -> NetworkRunResult {
    wp_kernels::network::run_network(device, net, mode, 42)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_kernels::PrecomputeMode;

    #[test]
    fn layer_bench_runs() {
        let bench = LayerBench { channels: 16, hw: 4, pool_size: 8 };
        let cycles = bench.run_bitserial(&BitSerialOptions::paper_default(8), 0);
        assert!(cycles > 0);
    }

    #[test]
    fn figure7_shape_holds_at_small_scale() {
        // Caching + precompute beats caching-only beats no-caching for
        // filters > pool, even at reduced scale.
        let bench = LayerBench { channels: 32, hw: 4, pool_size: 16 };
        let base = bench.run_bitserial(
            &BitSerialOptions {
                lut_cache: false,
                precompute: PrecomputeMode::ForceOff,
                ..BitSerialOptions::paper_default(8)
            },
            1,
        );
        let cache = bench.run_bitserial(
            &BitSerialOptions {
                precompute: PrecomputeMode::ForceOff,
                ..BitSerialOptions::paper_default(8)
            },
            1,
        );
        let cache_pre = bench.run_bitserial(
            &BitSerialOptions {
                precompute: PrecomputeMode::ForceOn,
                ..BitSerialOptions::paper_default(8)
            },
            1,
        );
        assert!(cache < base, "caching should win: {cache} vs {base}");
        assert!(cache_pre < cache, "precompute should stack: {cache_pre} vs {cache}");
    }
}
