//! Seeded synthetic classification datasets.
//!
//! The paper evaluates on CIFAR-10 and Quickdraw-100. Neither is available
//! in this offline reproduction, so this crate generates **deterministic
//! synthetic stand-ins with the same tensor shapes**: each class is a smooth
//! procedural prototype (Gaussian blobs + sinusoid gratings) and samples are
//! produced by randomly shifting, scaling and noising the prototype. The
//! tasks are learnable but not trivial, which is what the accuracy
//! experiments need — they measure the *relative* accuracy deltas between
//! float, weight-pool and quantized variants of the same trained network.
//!
//! # Example
//!
//! ```
//! use wp_data::SyntheticSpec;
//!
//! let data = SyntheticSpec::tiny_test(4).generate();
//! assert_eq!(data.classes, 4);
//! assert!(!data.train.is_empty());
//! ```

use rand::{Rng, SeedableRng};
use wp_nn::train::Batch;
use wp_tensor::Tensor;

/// A generated dataset: batched train and test splits plus shape metadata.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Training batches.
    pub train: Vec<Batch>,
    /// Held-out evaluation batches.
    pub test: Vec<Batch>,
    /// Number of classes.
    pub classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
}

impl Dataset {
    /// Total number of training examples.
    pub fn train_len(&self) -> usize {
        self.train.iter().map(Batch::len).sum()
    }

    /// Total number of test examples.
    pub fn test_len(&self) -> usize {
        self.test.iter().map(Batch::len).sum()
    }
}

/// Configuration for synthetic dataset generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticSpec {
    /// Number of classes.
    pub classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Training examples per class.
    pub train_per_class: usize,
    /// Test examples per class.
    pub test_per_class: usize,
    /// Examples per batch.
    pub batch_size: usize,
    /// Standard deviation of additive pixel noise.
    pub noise: f32,
    /// RNG seed; equal specs generate identical datasets.
    pub seed: u64,
}

impl SyntheticSpec {
    /// CIFAR-10-shaped task: 10 classes of 3×32×32 images.
    ///
    /// `scale` shrinks the spatial extent (`scale=2` gives 16×16) so
    /// accuracy experiments can trade fidelity for training time.
    pub fn cifar_like(scale: usize, seed: u64) -> Self {
        let s = scale.max(1);
        Self {
            classes: 10,
            channels: 3,
            height: 32 / s,
            width: 32 / s,
            train_per_class: 200,
            test_per_class: 50,
            batch_size: 32,
            noise: 0.25,
            seed,
        }
    }

    /// Quickdraw-100-shaped task: 100 classes of 1×28×28 sketches.
    pub fn quickdraw_like(scale: usize, seed: u64) -> Self {
        let s = scale.max(1);
        Self {
            classes: 100,
            channels: 1,
            height: 28 / s,
            width: 28 / s,
            train_per_class: 40,
            test_per_class: 10,
            batch_size: 40,
            noise: 0.2,
            seed,
        }
    }

    /// A minimal dataset for unit tests: `classes` classes of 1×8×8 images.
    pub fn tiny_test(classes: usize) -> Self {
        Self {
            classes,
            channels: 1,
            height: 8,
            width: 8,
            train_per_class: 8,
            test_per_class: 4,
            batch_size: 8,
            noise: 0.1,
            seed: 7,
        }
    }

    /// Generates the dataset described by this spec.
    ///
    /// # Panics
    ///
    /// Panics if any count or dimension is zero.
    pub fn generate(&self) -> Dataset {
        assert!(
            self.classes > 0
                && self.channels > 0
                && self.height > 0
                && self.width > 0
                && self.train_per_class > 0
                && self.test_per_class > 0
                && self.batch_size > 0,
            "all spec fields must be positive: {self:?}"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let prototypes: Vec<Vec<f32>> =
            (0..self.classes).map(|_| self.make_prototype(&mut rng)).collect();

        let train = self.make_split(&prototypes, self.train_per_class, &mut rng);
        let test = self.make_split(&prototypes, self.test_per_class, &mut rng);
        Dataset {
            train,
            test,
            classes: self.classes,
            channels: self.channels,
            height: self.height,
            width: self.width,
        }
    }

    /// Builds a class prototype: per channel, a sum of Gaussian blobs and a
    /// sinusoid grating, normalized to zero mean / unit-ish amplitude.
    fn make_prototype(&self, rng: &mut impl Rng) -> Vec<f32> {
        let (h, w) = (self.height, self.width);
        let mut proto = vec![0.0f32; self.channels * h * w];
        for c in 0..self.channels {
            // 2-4 Gaussian blobs.
            let blobs = rng.gen_range(2..5);
            let mut params = Vec::new();
            for _ in 0..blobs {
                params.push((
                    rng.gen_range(0.0..h as f32),                  // cy
                    rng.gen_range(0.0..w as f32),                  // cx
                    rng.gen_range(1.0..(h as f32 / 2.5).max(1.5)), // sigma
                    rng.gen_range(-1.0f32..1.0),                   // amplitude
                ));
            }
            let (fy, fx, phase, gamp) = (
                rng.gen_range(0.2f32..1.2),
                rng.gen_range(0.2f32..1.2),
                rng.gen_range(0.0..std::f32::consts::TAU),
                rng.gen_range(0.2f32..0.6),
            );
            for y in 0..h {
                for x in 0..w {
                    let mut v = gamp * (fy * y as f32 + fx * x as f32 + phase).sin();
                    for &(cy, cx, sigma, amp) in &params {
                        let d2 = (y as f32 - cy).powi(2) + (x as f32 - cx).powi(2);
                        v += amp * (-d2 / (2.0 * sigma * sigma)).exp();
                    }
                    proto[(c * h + y) * w + x] = v;
                }
            }
        }
        proto
    }

    /// Samples `per_class` noisy/shifted variants of each prototype and
    /// packs them into shuffled batches.
    fn make_split(
        &self,
        prototypes: &[Vec<f32>],
        per_class: usize,
        rng: &mut impl Rng,
    ) -> Vec<Batch> {
        let (h, w) = (self.height, self.width);
        let mut examples: Vec<(Vec<f32>, usize)> = Vec::new();
        for (label, proto) in prototypes.iter().enumerate() {
            for _ in 0..per_class {
                let dy = rng.gen_range(-2i32..=2);
                let dx = rng.gen_range(-2i32..=2);
                let gain = rng.gen_range(0.8f32..1.2);
                let mut img = vec![0.0f32; proto.len()];
                for c in 0..self.channels {
                    for y in 0..h {
                        for x in 0..w {
                            let sy = (y as i32 + dy).rem_euclid(h as i32) as usize;
                            let sx = (x as i32 + dx).rem_euclid(w as i32) as usize;
                            let noise = (rng.gen::<f32>() - 0.5) * 2.0 * self.noise;
                            img[(c * h + y) * w + x] = gain * proto[(c * h + sy) * w + sx] + noise;
                        }
                    }
                }
                examples.push((img, label));
            }
        }
        // Fisher-Yates shuffle for class-mixed batches.
        for i in (1..examples.len()).rev() {
            let j = rng.gen_range(0..=i);
            examples.swap(i, j);
        }

        let mut batches = Vec::new();
        for chunk in examples.chunks(self.batch_size) {
            let n = chunk.len();
            let mut data = Vec::with_capacity(n * self.channels * h * w);
            let mut labels = Vec::with_capacity(n);
            for (img, label) in chunk {
                data.extend_from_slice(img);
                labels.push(*label);
            }
            batches.push(Batch::new(Tensor::from_vec(data, &[n, self.channels, h, w]), labels));
        }
        batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_spec() {
        let data = SyntheticSpec::tiny_test(3).generate();
        assert_eq!(data.classes, 3);
        let b = &data.train[0];
        assert_eq!(&b.images.dims()[1..], &[1, 8, 8]);
        assert_eq!(data.train_len(), 3 * 8);
        assert_eq!(data.test_len(), 3 * 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticSpec::tiny_test(2).generate();
        let b = SyntheticSpec::tiny_test(2).generate();
        assert_eq!(a.train[0].images.data(), b.train[0].images.data());
        assert_eq!(a.train[0].labels, b.train[0].labels);
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec_a = SyntheticSpec::tiny_test(2);
        let mut spec_b = SyntheticSpec::tiny_test(2);
        spec_a.seed = 1;
        spec_b.seed = 2;
        let a = spec_a.generate();
        let b = spec_b.generate();
        assert_ne!(a.train[0].images.data(), b.train[0].images.data());
    }

    #[test]
    fn labels_cover_all_classes() {
        let data = SyntheticSpec::tiny_test(5).generate();
        let mut seen = vec![false; 5];
        for b in &data.train {
            for &l in &b.labels {
                seen[l] = true;
            }
        }
        assert!(seen.into_iter().all(|v| v));
    }

    #[test]
    fn batches_are_shuffled() {
        // A sorted-by-class split would have the first batch single-class.
        let data = SyntheticSpec::tiny_test(8).generate();
        let first = &data.train[0].labels;
        let distinct: std::collections::HashSet<_> = first.iter().collect();
        assert!(distinct.len() > 1, "first batch not shuffled: {first:?}");
    }

    #[test]
    fn cifar_like_shape() {
        let mut spec = SyntheticSpec::cifar_like(2, 3);
        spec.train_per_class = 2;
        spec.test_per_class = 1;
        let data = spec.generate();
        assert_eq!(data.channels, 3);
        assert_eq!(data.height, 16);
        assert_eq!(data.classes, 10);
    }

    #[test]
    fn quickdraw_like_has_100_classes() {
        let mut spec = SyntheticSpec::quickdraw_like(2, 3);
        spec.train_per_class = 1;
        spec.test_per_class = 1;
        let data = spec.generate();
        assert_eq!(data.classes, 100);
        assert_eq!(data.channels, 1);
    }

    #[test]
    fn task_is_learnable_by_small_net() {
        // A small dense net must beat chance comfortably on the tiny task —
        // guards against generating unlearnable noise.
        use rand::SeedableRng;
        use wp_nn::{train, Dense, Relu, Sequential, Sgd};
        let data = SyntheticSpec::tiny_test(3).generate();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut net = Sequential::new();
        net.push(Dense::new(64, 32, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(32, 3, &mut rng));
        let mut opt = Sgd::new(0.05).momentum(0.9);
        for _ in 0..30 {
            train::train_epoch(&mut net, &mut opt, &data.train);
        }
        let stats = train::evaluate(&mut net, &data.test);
        assert!(stats.accuracy > 0.6, "accuracy {} barely above chance", stats.accuracy);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_classes_rejected() {
        let mut spec = SyntheticSpec::tiny_test(1);
        spec.classes = 0;
        spec.generate();
    }
}
