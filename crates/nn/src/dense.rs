//! Fully-connected layer.

use crate::layer::{Layer, Param};
use rand::Rng;
use wp_tensor::{fill_kaiming_normal, Tensor};

/// A fully-connected layer, weight layout `[out, in]`, with bias.
///
/// Accepts either `[N, in]` input or `[N, C, H, W]` with `C*H*W == in`
/// (implicit flatten), which is how the classifier head consumes the last
/// feature map.
#[derive(Debug)]
pub struct Dense {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor<f32>>, // flattened [N, in]
    cached_orig_dims: Option<Vec<usize>>,
}

impl Dense {
    /// Creates a dense layer with Kaiming-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either feature count is zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        assert!(in_features > 0 && out_features > 0);
        let mut weight = Tensor::zeros(&[out_features, in_features]);
        fill_kaiming_normal(&mut weight, in_features, rng);
        Self {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cached_input: None,
            cached_orig_dims: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight matrix, `[out, in]`.
    pub fn weight(&self) -> &Tensor<f32> {
        &self.weight.value
    }

    /// Mutable weight access (used by the FC-pooling study).
    pub fn weight_mut(&mut self) -> &mut Tensor<f32> {
        &mut self.weight.value
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor<f32>, _train: bool) -> Tensor<f32> {
        let d = input.dims();
        let n = d[0];
        let flat: usize = d[1..].iter().product();
        assert_eq!(
            flat, self.in_features,
            "dense expects {} features, got {flat}",
            self.in_features
        );
        let x = input.reshape(&[n, self.in_features]);
        let mut out = Tensor::<f32>::zeros(&[n, self.out_features]);
        for b in 0..n {
            let row = &x.data()[b * self.in_features..(b + 1) * self.in_features];
            for o in 0..self.out_features {
                let wrow =
                    &self.weight.value.data()[o * self.in_features..(o + 1) * self.in_features];
                let mut acc = self.bias.value.data()[o];
                for (xi, wi) in row.iter().zip(wrow) {
                    acc += xi * wi;
                }
                out.data_mut()[b * self.out_features + o] = acc;
            }
        }
        self.cached_orig_dims = Some(d.to_vec());
        self.cached_input = Some(x);
        out
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Tensor<f32> {
        let x = self.cached_input.as_ref().expect("backward before forward");
        let n = x.dims()[0];
        assert_eq!(grad_out.dims(), &[n, self.out_features]);
        let mut grad_in = Tensor::<f32>::zeros(&[n, self.in_features]);

        for b in 0..n {
            let row = &x.data()[b * self.in_features..(b + 1) * self.in_features];
            for o in 0..self.out_features {
                let g = grad_out.data()[b * self.out_features + o];
                if g == 0.0 {
                    continue;
                }
                self.bias.grad.data_mut()[o] += g;
                let wbase = o * self.in_features;
                for (i, &xi) in row.iter().enumerate() {
                    self.weight.grad.data_mut()[wbase + i] += g * xi;
                    grad_in.data_mut()[b * self.in_features + i] +=
                        g * self.weight.value.data()[wbase + i];
                }
            }
        }
        let dims = self.cached_orig_dims.as_ref().unwrap();
        grad_in.reshape(dims)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn visit_dense(&mut self, f: &mut dyn FnMut(&mut Dense)) {
        f(self);
    }

    fn name(&self) -> &'static str {
        "dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual_matmul() {
        let mut r = rand::rngs::StdRng::seed_from_u64(0);
        let mut d = Dense::new(3, 2, &mut r);
        d.weight.value = Tensor::from_vec(vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.5], &[2, 3]);
        d.bias.value = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let y = d.forward(&x, false);
        assert_eq!(y.data(), &[1.0 - 3.0 + 0.5, 2.0 + 2.0 + 1.5 - 0.5]);
    }

    #[test]
    fn flattens_nchw_input() {
        let mut r = rand::rngs::StdRng::seed_from_u64(0);
        let mut d = Dense::new(12, 4, &mut r);
        let x = Tensor::<f32>::full(&[2, 3, 2, 2], 0.1);
        let y = d.forward(&x, false);
        assert_eq!(y.dims(), &[2, 4]);
        // Backward restores the original shape.
        let g = d.backward(&Tensor::<f32>::full(&[2, 4], 1.0));
        assert_eq!(g.dims(), &[2, 3, 2, 2]);
    }

    #[test]
    fn gradcheck() {
        let mut r = rand::rngs::StdRng::seed_from_u64(5);
        let mut d = Dense::new(4, 3, &mut r);
        let mut x = Tensor::<f32>::zeros(&[2, 4]);
        wp_tensor::fill_uniform(&mut x, -1.0, 1.0, &mut r);
        let y = d.forward(&x, true);
        let ones = Tensor::<f32>::full(y.dims(), 1.0);
        let grad_in = d.backward(&ones);
        let eps = 1e-3f32;
        for wi in 0..12 {
            let orig = d.weight.value.data()[wi];
            d.weight.value.data_mut()[wi] = orig + eps;
            let lp: f32 = d.forward(&x, true).data().iter().sum();
            d.weight.value.data_mut()[wi] = orig - eps;
            let lm: f32 = d.forward(&x, true).data().iter().sum();
            d.weight.value.data_mut()[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - d.weight.grad.data()[wi]).abs() < 0.02);
        }
        for xi in 0..8 {
            let orig = x.data()[xi];
            x.data_mut()[xi] = orig + eps;
            let lp: f32 = d.forward(&x, true).data().iter().sum();
            x.data_mut()[xi] = orig - eps;
            let lm: f32 = d.forward(&x, true).data().iter().sum();
            x.data_mut()[xi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grad_in.data()[xi]).abs() < 0.02);
        }
    }

    #[test]
    #[should_panic(expected = "features")]
    fn wrong_feature_count_rejected() {
        let mut r = rand::rngs::StdRng::seed_from_u64(0);
        let mut d = Dense::new(4, 2, &mut r);
        d.forward(&Tensor::<f32>::zeros(&[1, 5]), false);
    }
}
