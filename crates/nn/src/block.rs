//! Composite residual blocks: the CIFAR ResNet basic block with option-A
//! shortcuts and MobileNet-v2's inverted residual.

use crate::layer::{Layer, Param};
use crate::{ActQuant, ActQuantHandle, BatchNorm2d, Conv2d, DepthwiseConv2d, Relu, Relu6};
use rand::Rng;
use wp_tensor::Tensor;

/// A ResNet basic block: `relu(bn2(conv2(relu(bn1(conv1(x))))) + shortcut(x))`.
///
/// The shortcut is **option A** (parameter-free), matching the architecture
/// whose conv-weight counts reproduce the paper's Table 3 exactly: identity
/// when shape is preserved, otherwise stride-subsampling plus zero-padding
/// of the new channels.
#[derive(Debug)]
pub struct BasicBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    aq1: Option<ActQuant>,
    aq2: Option<ActQuant>,
    cached_input_dims: Option<Vec<usize>>,
    final_mask: Option<Vec<bool>>,
}

impl BasicBlock {
    /// Creates a basic block mapping `in_ch` channels to `out_ch` at the
    /// given stride.
    ///
    /// # Panics
    ///
    /// Panics if `out_ch < in_ch` when a projection-free (option-A) shortcut
    /// is required, or if any dimension is zero.
    pub fn new(in_ch: usize, out_ch: usize, stride: usize, rng: &mut impl Rng) -> Self {
        assert!(out_ch >= in_ch, "option-A shortcut cannot reduce channels ({in_ch} -> {out_ch})");
        Self {
            conv1: Conv2d::new(in_ch, out_ch, 3, stride, 1, rng),
            bn1: BatchNorm2d::new(out_ch),
            relu1: Relu::new(),
            conv2: Conv2d::new(out_ch, out_ch, 3, 1, 1, rng),
            bn2: BatchNorm2d::new(out_ch),
            in_ch,
            out_ch,
            stride,
            aq1: None,
            aq2: None,
            cached_input_dims: None,
            final_mask: None,
        }
    }

    /// Attaches activation fake-quant sites after both ReLUs, returning
    /// their control handles (inner ReLU first, block output second).
    pub fn attach_act_quant(&mut self) -> (ActQuantHandle, ActQuantHandle) {
        let h1 = ActQuantHandle::new();
        let h2 = ActQuantHandle::new();
        self.aq1 = Some(ActQuant::new(h1.clone()));
        self.aq2 = Some(ActQuant::new(h2.clone()));
        (h1, h2)
    }

    /// Applies the option-A shortcut: stride-subsample and zero-pad channels.
    fn shortcut(&self, input: &Tensor<f32>) -> Tensor<f32> {
        let d = input.dims();
        let (n, h, w) = (d[0], d[2], d[3]);
        let s = self.stride;
        let (oh, ow) = ((h - 1) / s + 1, (w - 1) / s + 1);
        if s == 1 && self.in_ch == self.out_ch {
            return input.clone();
        }
        let mut out = Tensor::<f32>::zeros(&[n, self.out_ch, oh, ow]);
        for b in 0..n {
            for c in 0..self.in_ch {
                for y in 0..oh {
                    for x in 0..ow {
                        out.set4(b, c, y, x, input.get4(b, c, y * s, x * s));
                    }
                }
            }
        }
        out
    }

    /// Backward through the option-A shortcut.
    fn shortcut_backward(&self, grad: &Tensor<f32>, in_dims: &[usize]) -> Tensor<f32> {
        let s = self.stride;
        if s == 1 && self.in_ch == self.out_ch {
            return grad.clone();
        }
        let (n, h, w) = (in_dims[0], in_dims[2], in_dims[3]);
        let (oh, ow) = ((h - 1) / s + 1, (w - 1) / s + 1);
        let mut out = Tensor::<f32>::zeros(in_dims);
        for b in 0..n {
            for c in 0..self.in_ch {
                for y in 0..oh {
                    for x in 0..ow {
                        out.set4(b, c, y * s, x * s, grad.get4(b, c, y, x));
                    }
                }
            }
        }
        out
    }
}

impl Layer for BasicBlock {
    fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Tensor<f32> {
        self.cached_input_dims = Some(input.dims().to_vec());
        let mut y = self.conv1.forward(input, train);
        y = self.bn1.forward(&y, train);
        y = self.relu1.forward(&y, train);
        if let Some(aq) = self.aq1.as_mut() {
            y = aq.forward(&y, train);
        }
        y = self.conv2.forward(&y, train);
        y = self.bn2.forward(&y, train);
        let sc = self.shortcut(input);
        assert_eq!(y.dims(), sc.dims(), "residual branch shapes diverged");
        let mut sum = y;
        sum.add_scaled(&sc, 1.0);
        self.final_mask = Some(sum.data().iter().map(|&v| v > 0.0).collect());
        let mut out = sum.map(|v| v.max(0.0));
        if let Some(aq) = self.aq2.as_mut() {
            out = aq.forward(&out, train);
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Tensor<f32> {
        let mask = self.final_mask.as_ref().expect("backward before forward");
        // ActQuant backward is straight-through, so grad_out passes the aq2
        // site unchanged before hitting the final-ReLU mask.
        let masked = Tensor::from_vec(
            grad_out.data().iter().zip(mask).map(|(&g, &m)| if m { g } else { 0.0 }).collect(),
            grad_out.dims(),
        );
        // Main branch.
        let mut g = self.bn2.backward(&masked);
        g = self.conv2.backward(&g);
        g = self.relu1.backward(&g);
        g = self.bn1.backward(&g);
        let mut grad_in = self.conv1.backward(&g);
        // Shortcut branch.
        let in_dims = self.cached_input_dims.clone().unwrap();
        let sc_grad = self.shortcut_backward(&masked, &in_dims);
        grad_in.add_scaled(&sc_grad, 1.0);
        grad_in
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = self.conv1.params_mut();
        out.extend(self.bn1.params_mut());
        out.extend(self.conv2.params_mut());
        out.extend(self.bn2.params_mut());
        out
    }

    fn visit_convs(&mut self, f: &mut dyn FnMut(&mut Conv2d)) {
        self.conv1.visit_convs(f);
        self.conv2.visit_convs(f);
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        let mut out = self.bn1.buffers_mut();
        out.extend(self.bn2.buffers_mut());
        out
    }

    fn name(&self) -> &'static str {
        "basic_block"
    }
}

/// MobileNet-v2's inverted residual: 1×1 expand → 3×3 depthwise → 1×1
/// project, with a skip connection when shape is preserved.
#[derive(Debug)]
pub struct InvertedResidual {
    expand: Option<(Conv2d, BatchNorm2d, Relu6)>,
    depthwise: DepthwiseConv2d,
    bn_dw: BatchNorm2d,
    relu_dw: Relu6,
    project: Conv2d,
    bn_proj: BatchNorm2d,
    use_skip: bool,
    aq_expand: Option<ActQuant>,
    aq_dw: Option<ActQuant>,
}

impl InvertedResidual {
    /// Creates an inverted residual with expansion factor `expand_ratio`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the expansion ratio is zero.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        expand_ratio: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(expand_ratio > 0, "expansion ratio must be positive");
        let hidden = in_ch * expand_ratio;
        let expand = if expand_ratio != 1 {
            Some((Conv2d::new(in_ch, hidden, 1, 1, 0, rng), BatchNorm2d::new(hidden), Relu6::new()))
        } else {
            None
        };
        Self {
            expand,
            depthwise: DepthwiseConv2d::new(hidden, 3, stride, 1, rng),
            bn_dw: BatchNorm2d::new(hidden),
            relu_dw: Relu6::new(),
            project: Conv2d::new(hidden, out_ch, 1, 1, 0, rng),
            bn_proj: BatchNorm2d::new(out_ch),
            use_skip: stride == 1 && in_ch == out_ch,
            aq_expand: None,
            aq_dw: None,
        }
    }

    /// Whether this block adds the skip connection.
    pub fn has_skip(&self) -> bool {
        self.use_skip
    }

    /// Attaches activation fake-quant sites after each ReLU6 the block
    /// actually has (post-expand only when an expand conv exists, then
    /// post-depthwise), returning their control handles in forward order.
    pub fn attach_act_quant(&mut self) -> Vec<ActQuantHandle> {
        let mut handles = Vec::new();
        if self.expand.is_some() {
            let h = ActQuantHandle::new();
            self.aq_expand = Some(ActQuant::new(h.clone()));
            handles.push(h);
        }
        let h = ActQuantHandle::new();
        self.aq_dw = Some(ActQuant::new(h.clone()));
        handles.push(h);
        handles
    }
}

impl Layer for InvertedResidual {
    fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Tensor<f32> {
        let mut y = input.clone();
        if let Some((conv, bn, act)) = self.expand.as_mut() {
            y = conv.forward(&y, train);
            y = bn.forward(&y, train);
            y = act.forward(&y, train);
            if let Some(aq) = self.aq_expand.as_mut() {
                y = aq.forward(&y, train);
            }
        }
        y = self.depthwise.forward(&y, train);
        y = self.bn_dw.forward(&y, train);
        y = self.relu_dw.forward(&y, train);
        if let Some(aq) = self.aq_dw.as_mut() {
            y = aq.forward(&y, train);
        }
        y = self.project.forward(&y, train);
        y = self.bn_proj.forward(&y, train);
        if self.use_skip {
            y.add_scaled(input, 1.0);
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Tensor<f32> {
        let mut g = self.bn_proj.backward(grad_out);
        g = self.project.backward(&g);
        g = self.relu_dw.backward(&g);
        g = self.bn_dw.backward(&g);
        g = self.depthwise.backward(&g);
        if let Some((conv, bn, act)) = self.expand.as_mut() {
            g = act.backward(&g);
            g = bn.backward(&g);
            g = conv.backward(&g);
        }
        if self.use_skip {
            let mut grad_in = g;
            grad_in.add_scaled(grad_out, 1.0);
            grad_in
        } else {
            g
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        if let Some((conv, bn, _)) = self.expand.as_mut() {
            out.extend(conv.params_mut());
            out.extend(bn.params_mut());
        }
        out.extend(self.depthwise.params_mut());
        out.extend(self.bn_dw.params_mut());
        out.extend(self.project.params_mut());
        out.extend(self.bn_proj.params_mut());
        out
    }

    fn visit_convs(&mut self, f: &mut dyn FnMut(&mut Conv2d)) {
        // Depthwise is intentionally excluded (uncompressed in the paper).
        if let Some((conv, _, _)) = self.expand.as_mut() {
            conv.visit_convs(f);
        }
        self.project.visit_convs(f);
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        let mut out = Vec::new();
        if let Some((_, bn, _)) = self.expand.as_mut() {
            out.extend(bn.buffers_mut());
        }
        out.extend(self.bn_dw.buffers_mut());
        out.extend(self.bn_proj.buffers_mut());
        out
    }

    fn name(&self) -> &'static str {
        "inverted_residual"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn identity_block_shape() {
        let mut r = rng(0);
        let mut blk = BasicBlock::new(8, 8, 1, &mut r);
        let x = Tensor::<f32>::full(&[2, 8, 8, 8], 0.3);
        let y = blk.forward(&x, true);
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
    }

    #[test]
    fn downsample_block_shape() {
        let mut r = rng(0);
        let mut blk = BasicBlock::new(8, 16, 2, &mut r);
        let x = Tensor::<f32>::full(&[1, 8, 8, 8], 0.3);
        let y = blk.forward(&x, true);
        assert_eq!(y.dims(), &[1, 16, 4, 4]);
    }

    #[test]
    fn option_a_shortcut_zero_pads() {
        let mut r = rng(0);
        let blk = BasicBlock::new(2, 4, 2, &mut r);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 2, 2, 4]);
        let sc = blk.shortcut(&x);
        assert_eq!(sc.dims(), &[1, 4, 1, 2]);
        // First two channels subsampled, last two all zero.
        assert_eq!(sc.get4(0, 0, 0, 0), x.get4(0, 0, 0, 0));
        assert_eq!(sc.get4(0, 0, 0, 1), x.get4(0, 0, 0, 2));
        assert_eq!(sc.get4(0, 2, 0, 0), 0.0);
        assert_eq!(sc.get4(0, 3, 0, 1), 0.0);
    }

    #[test]
    fn block_gradcheck_through_shortcut() {
        let mut r = rng(7);
        let mut blk = BasicBlock::new(2, 4, 2, &mut r);
        let mut x = Tensor::<f32>::zeros(&[1, 2, 4, 4]);
        wp_tensor::fill_uniform(&mut x, -1.0, 1.0, &mut r);
        let weights: Vec<f32> = (0..16).map(|i| ((i * 13 % 7) as f32 - 3.0) * 0.3).collect();
        let loss =
            |y: &Tensor<f32>| -> f32 { y.data().iter().zip(&weights).map(|(v, w)| v * w).sum() };
        let y = blk.forward(&x, true);
        assert_eq!(y.len(), weights.len());
        let grad_out = Tensor::from_vec(weights.clone(), y.dims());
        let grad_in = blk.backward(&grad_out);
        let eps = 1e-2f32;
        let mut checked = 0;
        for xi in 0..x.len() {
            let orig = x.data()[xi];
            x.data_mut()[xi] = orig + eps;
            let lp = loss(&blk.forward(&x, true));
            x.data_mut()[xi] = orig - eps;
            let lm = loss(&blk.forward(&x, true));
            x.data_mut()[xi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_in.data()[xi];
            // ReLU kinks make exact agreement impossible at some points;
            // require agreement where the numeric gradient is stable.
            if (numeric - analytic).abs() < 0.1 * analytic.abs().max(0.5) {
                checked += 1;
            }
        }
        assert!(checked >= x.len() * 3 / 4, "only {checked}/{} gradients stable", x.len());
    }

    #[test]
    fn inverted_residual_shapes() {
        let mut r = rng(1);
        let mut blk = InvertedResidual::new(4, 8, 2, 6, &mut r);
        assert!(!blk.has_skip());
        let x = Tensor::<f32>::full(&[1, 4, 8, 8], 0.2);
        let y = blk.forward(&x, true);
        assert_eq!(y.dims(), &[1, 8, 4, 4]);

        let mut blk2 = InvertedResidual::new(8, 8, 1, 6, &mut r);
        assert!(blk2.has_skip());
        let y2 = blk2.forward(&y, true);
        assert_eq!(y2.dims(), &[1, 8, 4, 4]);
    }

    #[test]
    fn expand_ratio_one_has_no_expand_conv() {
        let mut r = rng(2);
        let mut blk = InvertedResidual::new(4, 6, 1, 1, &mut r);
        let mut convs = 0;
        blk.visit_convs(&mut |_| convs += 1);
        assert_eq!(convs, 1, "only the projection conv should be visited");
    }

    #[test]
    fn visit_convs_skips_depthwise() {
        let mut r = rng(3);
        let mut blk = InvertedResidual::new(4, 6, 1, 6, &mut r);
        let mut kernel_sizes = Vec::new();
        blk.visit_convs(&mut |c| kernel_sizes.push(c.kernel()));
        // Expand and project are 1x1; the 3x3 depthwise is not visited.
        assert_eq!(kernel_sizes, vec![1, 1]);
    }

    #[test]
    fn basic_block_visit_convs_sees_both() {
        let mut r = rng(4);
        let mut blk = BasicBlock::new(4, 4, 1, &mut r);
        let mut n = 0;
        blk.visit_convs(&mut |_| n += 1);
        assert_eq!(n, 2);
    }
}
