//! Sequential model container with state save/load.

use crate::layer::{Layer, Param};
use crate::Conv2d;
use serde::{Deserialize, Serialize};
use std::path::Path;
use wp_tensor::Tensor;

/// An ordered stack of layers trained and evaluated as one model.
///
/// # Example
///
/// ```
/// use wp_nn::{Sequential, Dense, Relu};
/// use wp_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push(Dense::new(2, 4, &mut rng));
/// net.push(Relu::new());
/// let y = net.forward(&Tensor::from_vec(vec![1.0, -1.0], &[1, 2]), false);
/// assert_eq!(y.dims(), &[1, 4]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

/// Serializable parameter snapshot of a [`Sequential`] model.
#[derive(Debug, Serialize, Deserialize)]
pub struct StateDict {
    /// Flattened values of every trainable parameter, traversal order.
    pub params: Vec<Vec<f32>>,
    /// Non-trainable buffers (batch-norm running statistics), traversal
    /// order.
    #[serde(default)]
    pub buffers: Vec<Vec<f32>>,
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs every layer in order.
    pub fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Tensor<f32> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Back-propagates through every layer in reverse order.
    pub fn backward(&mut self, grad_out: &Tensor<f32>) -> Tensor<f32> {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Mutable access to every trainable parameter.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        for layer in &mut self.layers {
            out.extend(layer.params_mut());
        }
        out
    }

    /// Total number of trainable scalar parameters.
    pub fn num_params(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.len()).sum()
    }

    /// Visits every standard convolution in the model (recursively through
    /// composite blocks). The weight-pool compressor uses this hook to read
    /// and project conv weights.
    pub fn visit_convs(&mut self, f: &mut dyn FnMut(&mut Conv2d)) {
        for layer in &mut self.layers {
            layer.visit_convs(f);
        }
    }

    /// Visits every dense layer in the model (recursively through
    /// composites); used by the optional FC-pooling study.
    pub fn visit_dense(&mut self, f: &mut dyn FnMut(&mut crate::Dense)) {
        for layer in &mut self.layers {
            layer.visit_dense(f);
        }
    }

    /// Snapshots every parameter value and non-trainable buffer.
    pub fn state_dict(&mut self) -> StateDict {
        let params = self.params_mut().iter().map(|p| p.value.data().to_vec()).collect();
        let buffers = self.buffers_mut().iter().map(|b| b.to_vec()).collect();
        StateDict { params, buffers }
    }

    /// Mutable access to every non-trainable buffer (batch-norm running
    /// statistics), traversal order.
    pub fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        let mut out = Vec::new();
        for layer in &mut self.layers {
            out.extend(layer.buffers_mut());
        }
        out
    }

    /// Restores parameter values and buffers from a snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's parameter count or any length mismatches.
    /// A snapshot with no buffers (older format) restores parameters only.
    pub fn load_state_dict(&mut self, state: &StateDict) {
        let mut params = self.params_mut();
        assert_eq!(
            params.len(),
            state.params.len(),
            "state dict has {} parameters, model has {}",
            state.params.len(),
            params.len()
        );
        for (p, saved) in params.iter_mut().zip(&state.params) {
            assert_eq!(p.value.len(), saved.len(), "parameter length mismatch");
            p.value.data_mut().copy_from_slice(saved);
        }
        if !state.buffers.is_empty() {
            let mut buffers = self.buffers_mut();
            assert_eq!(
                buffers.len(),
                state.buffers.len(),
                "state dict has {} buffers, model has {}",
                state.buffers.len(),
                buffers.len()
            );
            for (b, saved) in buffers.iter_mut().zip(&state.buffers) {
                assert_eq!(b.len(), saved.len(), "buffer length mismatch");
                b.copy_from_slice(saved);
            }
        }
    }

    /// Saves the parameter snapshot as JSON.
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error.
    pub fn save(&mut self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let state = self.state_dict();
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(std::io::BufWriter::new(file), &state).map_err(std::io::Error::other)
    }

    /// Loads a parameter snapshot saved by [`Sequential::save`].
    ///
    /// # Errors
    ///
    /// Returns any I/O or deserialization error.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not match the model architecture.
    pub fn load(&mut self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let file = std::fs::File::open(path)?;
        let state: StateDict = serde_json::from_reader(std::io::BufReader::new(file))
            .map_err(std::io::Error::other)?;
        self.load_state_dict(&state);
        Ok(())
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential").field("layers", &names).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BasicBlock, Dense, Relu};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn forward_backward_chain() {
        let mut r = rng(0);
        let mut net = Sequential::new();
        net.push(Dense::new(4, 8, &mut r));
        net.push(Relu::new());
        net.push(Dense::new(8, 2, &mut r));
        let x = Tensor::from_vec(vec![0.5f32; 4], &[1, 4]);
        let y = net.forward(&x, true);
        assert_eq!(y.dims(), &[1, 2]);
        let g = net.backward(&Tensor::from_vec(vec![1.0f32, -1.0], &[1, 2]));
        assert_eq!(g.dims(), &[1, 4]);
    }

    #[test]
    fn state_dict_round_trip() {
        let mut r = rng(1);
        let mut net = Sequential::new();
        net.push(Dense::new(3, 3, &mut r));
        let state = net.state_dict();
        // Perturb, then restore.
        for p in net.params_mut() {
            p.value.data_mut().fill(9.0);
        }
        net.load_state_dict(&state);
        let restored = net.state_dict();
        assert_eq!(state.params, restored.params);
    }

    #[test]
    fn save_load_file_round_trip() {
        let mut r = rng(2);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 2, &mut r));
        let dir = std::env::temp_dir().join("wp_nn_test_save");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        net.save(&path).unwrap();
        let before = net.state_dict();
        for p in net.params_mut() {
            p.value.data_mut().fill(0.0);
        }
        net.load(&path).unwrap();
        assert_eq!(net.state_dict().params, before.params);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "state dict has")]
    fn mismatched_state_rejected() {
        let mut r = rng(3);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 2, &mut r));
        net.load_state_dict(&StateDict { params: vec![], buffers: vec![] });
    }

    #[test]
    fn visit_convs_recurses_into_blocks() {
        let mut r = rng(4);
        let mut net = Sequential::new();
        net.push(crate::Conv2d::new(3, 8, 3, 1, 1, &mut r));
        net.push(BasicBlock::new(8, 8, 1, &mut r));
        let mut n = 0;
        net.visit_convs(&mut |_| n += 1);
        assert_eq!(n, 3); // stem + two block convs
    }

    #[test]
    fn num_params_counts_everything() {
        let mut r = rng(5);
        let mut net = Sequential::new();
        net.push(Dense::new(4, 3, &mut r)); // 12 weights + 3 bias
        assert_eq!(net.num_params(), 15);
    }
}
