//! A minimal CPU training stack for small CNNs.
//!
//! The weight-pool pipeline needs more than inference: the paper *fine-tunes*
//! index assignments against a frozen pool (§3, Figure 2) and *retrains*
//! under activation quantization (Table 6). This crate provides exactly the
//! pieces those experiments need, implemented from scratch:
//!
//! * layers with forward **and** backward passes: [`Conv2d`],
//!   [`DepthwiseConv2d`], [`Dense`], [`BatchNorm2d`], [`Relu`], [`MaxPool2d`],
//!   [`AvgPool2d`], [`GlobalAvgPool`], residual [`BasicBlock`] (option-A
//!   shortcuts, as used by the paper's CIFAR ResNets) and MobileNet-v2's
//!   [`InvertedResidual`];
//! * [`SoftmaxCrossEntropy`] loss;
//! * [`Sgd`] with momentum, weight decay and step LR schedules;
//! * a [`Sequential`] container with state save/load and conv-weight
//!   visitation hooks that the weight-pool compressor uses to project
//!   weights onto a pool.
//!
//! # Example
//!
//! ```
//! use wp_nn::{Sequential, Dense, Relu, SoftmaxCrossEntropy, Sgd};
//! use wp_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = Sequential::new();
//! net.push(Dense::new(4, 8, &mut rng));
//! net.push(Relu::new());
//! net.push(Dense::new(8, 2, &mut rng));
//!
//! let x = Tensor::from_vec(vec![0.1; 8], &[2, 4]);
//! let logits = net.forward(&x, true);
//! assert_eq!(logits.dims(), &[2, 2]);
//!
//! let loss = SoftmaxCrossEntropy::compute(&logits, &[0, 1]);
//! net.backward(&loss.grad);
//! Sgd::new(0.1).step(&mut net);
//! ```

mod activation;
mod actquant;
mod block;
mod conv;
mod dense;
mod layer;
mod loss;
mod norm;
mod optim;
mod pool;
mod sequential;
pub mod train;

pub use activation::{Relu, Relu6};
pub use actquant::{ActQuant, ActQuantHandle, ActQuantMode, ActQuantState};
pub use block::{BasicBlock, InvertedResidual};
pub use conv::{Conv2d, ConvOverride, DepthwiseConv2d};
pub use dense::Dense;
pub use layer::{Layer, Param};
pub use loss::{LossOutput, SoftmaxCrossEntropy};
pub use norm::BatchNorm2d;
pub use optim::{LrSchedule, Sgd};
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use sequential::{Sequential, StateDict};
