//! Batch normalization over NCHW feature maps.

use crate::layer::{Layer, Param};
use wp_tensor::Tensor;

/// Per-channel batch normalization with learnable scale/shift and running
/// statistics for inference.
///
/// Training uses batch statistics and updates running mean/variance with
/// exponential averaging (momentum 0.1, PyTorch convention); inference
/// normalizes with the running statistics.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    channels: usize,
    momentum: f32,
    eps: f32,
    // Cached values from the training forward pass.
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    x_hat: Tensor<f32>,
    inv_std: Vec<f32>,
    dims: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with unit scale and zero shift.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0);
        Self {
            gamma: Param::new(Tensor::full(&[channels], 1.0)),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            channels,
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Number of normalized channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The learnable per-channel scale.
    pub fn gamma(&self) -> &Tensor<f32> {
        &self.gamma.value
    }

    /// The learnable per-channel shift.
    pub fn beta(&self) -> &Tensor<f32> {
        &self.beta.value
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Tensor<f32> {
        let d = input.dims();
        assert_eq!(d.len(), 4, "batchnorm expects [N, C, H, W]");
        assert_eq!(d[1], self.channels, "channel mismatch");
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let count = (n * h * w) as f32;

        let (mean, var) = if train {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for b in 0..n {
                for (ch, m) in mean.iter_mut().enumerate() {
                    for y in 0..h {
                        for x in 0..w {
                            *m += input.get4(b, ch, y, x);
                        }
                    }
                }
            }
            for m in &mut mean {
                *m /= count;
            }
            for b in 0..n {
                for ch in 0..c {
                    for y in 0..h {
                        for x in 0..w {
                            let dlt = input.get4(b, ch, y, x) - mean[ch];
                            var[ch] += dlt * dlt;
                        }
                    }
                }
            }
            for v in &mut var {
                *v /= count;
            }
            for ch in 0..c {
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean[ch];
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var[ch];
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut x_hat = Tensor::<f32>::zeros(d);
        let mut out = Tensor::<f32>::zeros(d);
        for b in 0..n {
            for ch in 0..c {
                let g = self.gamma.value.data()[ch];
                let bt = self.beta.value.data()[ch];
                for y in 0..h {
                    for x in 0..w {
                        let xh = (input.get4(b, ch, y, x) - mean[ch]) * inv_std[ch];
                        x_hat.set4(b, ch, y, x, xh);
                        out.set4(b, ch, y, x, g * xh + bt);
                    }
                }
            }
        }

        if train {
            self.cache = Some(BnCache { x_hat, inv_std, dims: d.to_vec() });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Tensor<f32> {
        let cache = self.cache.as_ref().expect("backward requires a training forward");
        let d = &cache.dims;
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        assert_eq!(grad_out.dims(), d.as_slice());
        let count = (n * h * w) as f32;

        // Standard batch-norm backward:
        // dx = gamma * inv_std / m * (m*dy - sum(dy) - x_hat * sum(dy*x_hat))
        let mut sum_dy = vec![0.0f32; c];
        let mut sum_dy_xhat = vec![0.0f32; c];
        for b in 0..n {
            for ch in 0..c {
                for y in 0..h {
                    for x in 0..w {
                        let g = grad_out.get4(b, ch, y, x);
                        sum_dy[ch] += g;
                        sum_dy_xhat[ch] += g * cache.x_hat.get4(b, ch, y, x);
                    }
                }
            }
        }
        for ch in 0..c {
            self.beta.grad.data_mut()[ch] += sum_dy[ch];
            self.gamma.grad.data_mut()[ch] += sum_dy_xhat[ch];
        }

        let mut grad_in = Tensor::<f32>::zeros(d);
        for b in 0..n {
            for ch in 0..c {
                let g = self.gamma.value.data()[ch];
                let k = g * cache.inv_std[ch] / count;
                for y in 0..h {
                    for x in 0..w {
                        let dy = grad_out.get4(b, ch, y, x);
                        let xh = cache.x_hat.get4(b, ch, y, x);
                        grad_in.set4(
                            b,
                            ch,
                            y,
                            x,
                            k * (count * dy - sum_dy[ch] - xh * sum_dy_xhat[ch]),
                        );
                    }
                }
            }
        }
        grad_in
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        vec![&mut self.running_mean, &mut self.running_var]
    }

    fn name(&self) -> &'static str {
        "batchnorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn training_output_is_normalized() {
        let mut r = rand::rngs::StdRng::seed_from_u64(0);
        let mut bn = BatchNorm2d::new(2);
        let mut x = Tensor::<f32>::zeros(&[4, 2, 3, 3]);
        wp_tensor::fill_uniform(&mut x, -3.0, 5.0, &mut r);
        let y = bn.forward(&x, true);
        // Per-channel mean ~0, var ~1.
        for ch in 0..2 {
            let mut vals = Vec::new();
            for b in 0..4 {
                for yy in 0..3 {
                    for xx in 0..3 {
                        vals.push(y.get4(b, ch, yy, xx));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn inference_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        // With default running stats (mean 0, var 1), inference is identity.
        let x = Tensor::from_vec(vec![1.0f32, -2.0, 0.5, 3.0], &[1, 1, 2, 2]);
        let y = bn.forward(&x, false);
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn gradcheck_input() {
        let mut r = rand::rngs::StdRng::seed_from_u64(3);
        let mut bn = BatchNorm2d::new(2);
        let mut x = Tensor::<f32>::zeros(&[2, 2, 2, 2]);
        wp_tensor::fill_uniform(&mut x, -1.0, 1.0, &mut r);
        // Use a weighted-sum loss so gradients are not trivially zero
        // (sum of normalized values is 0 by construction).
        let weights: Vec<f32> = (0..16).map(|i| (i as f32 * 0.7).sin()).collect();
        let loss =
            |y: &Tensor<f32>| -> f32 { y.data().iter().zip(&weights).map(|(v, w)| v * w).sum() };
        let y = bn.forward(&x, true);
        let _ = loss(&y);
        let grad_out = Tensor::from_vec(weights.clone(), y.dims());
        let grad_in = bn.backward(&grad_out);
        let eps = 1e-3f32;
        for xi in 0..16 {
            let orig = x.data()[xi];
            x.data_mut()[xi] = orig + eps;
            let lp = loss(&bn.forward(&x, true));
            x.data_mut()[xi] = orig - eps;
            let lm = loss(&bn.forward(&x, true));
            x.data_mut()[xi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_in.data()[xi];
            assert!(
                (numeric - analytic).abs() < 0.05 * analytic.abs().max(0.5),
                "x[{xi}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn running_stats_converge_to_batch_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_vec(vec![2.0f32; 8], &[2, 1, 2, 2]);
        for _ in 0..200 {
            bn.forward(&x, true);
        }
        assert!((bn.running_mean[0] - 2.0).abs() < 1e-2);
        assert!(bn.running_var[0] < 1e-2);
    }
}
