//! Elementwise activations.

use crate::layer::Layer;
use wp_tensor::Tensor;

/// Rectified linear unit, `max(0, x)`.
///
/// ReLU matters to the bit-serial pipeline beyond nonlinearity: it makes
/// activations non-negative, so they quantize to *unsigned* codes whose bits
/// are plain 0/1 multipliers in the bit-serial decomposition (paper Eq. 2).
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor<f32>, _train: bool) -> Tensor<f32> {
        self.mask = Some(input.data().iter().map(|&v| v > 0.0).collect());
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Tensor<f32> {
        let mask = self.mask.as_ref().expect("backward before forward");
        assert_eq!(mask.len(), grad_out.len());
        let data =
            grad_out.data().iter().zip(mask).map(|(&g, &m)| if m { g } else { 0.0 }).collect();
        Tensor::from_vec(data, grad_out.dims())
    }

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// ReLU clipped at 6, `min(max(0, x), 6)`, as used by MobileNet-v2.
#[derive(Debug, Default)]
pub struct Relu6 {
    mask: Option<Vec<bool>>,
}

impl Relu6 {
    /// Creates a ReLU6 layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu6 {
    fn forward(&mut self, input: &Tensor<f32>, _train: bool) -> Tensor<f32> {
        self.mask = Some(input.data().iter().map(|&v| v > 0.0 && v < 6.0).collect());
        input.map(|v| v.clamp(0.0, 6.0))
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Tensor<f32> {
        let mask = self.mask.as_ref().expect("backward before forward");
        assert_eq!(mask.len(), grad_out.len());
        let data =
            grad_out.data().iter().zip(mask).map(|(&g, &m)| if m { g } else { 0.0 }).collect();
        Tensor::from_vec(data, grad_out.dims())
    }

    fn name(&self) -> &'static str {
        "relu6"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clips_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0f32, 0.0, 2.0], &[3]);
        let y = relu.forward(&x, false);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_gradient_masks() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0f32, 0.5, 3.0], &[3]);
        relu.forward(&x, true);
        let g = relu.backward(&Tensor::from_vec(vec![1.0f32, 1.0, 1.0], &[3]));
        assert_eq!(g.data(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn relu6_clips_both_sides() {
        let mut relu = Relu6::new();
        let x = Tensor::from_vec(vec![-2.0f32, 3.0, 9.0], &[3]);
        let y = relu.forward(&x, false);
        assert_eq!(y.data(), &[0.0, 3.0, 6.0]);
    }

    #[test]
    fn relu6_gradient_zero_in_saturation() {
        let mut relu = Relu6::new();
        let x = Tensor::from_vec(vec![-2.0f32, 3.0, 9.0], &[3]);
        relu.forward(&x, true);
        let g = relu.backward(&Tensor::from_vec(vec![1.0f32, 1.0, 1.0], &[3]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0]);
    }
}
