//! Activation fake-quantization layer with shared control handles.
//!
//! The paper's accuracy experiments need two behaviours at activation sites:
//!
//! 1. **Calibration** (observe): record activation samples so the iterative
//!    clip search (`wp-quant::search_unsigned_clip`) can pick quantization
//!    ranges (paper §5.3.3).
//! 2. **Fake quantization** (quantize): snap activations onto the M-bit grid
//!    during forward, with a straight-through backward, enabling
//!    quantization-aware retraining (Table 6's bracketed results).
//!
//! Because activation sites live inside composite blocks, each [`ActQuant`]
//! layer shares its state through a cloneable [`ActQuantHandle`]; model
//! builders collect the handles so experiments can flip every site's mode
//! at once.

use crate::layer::Layer;
use std::cell::RefCell;
use std::rc::Rc;
use wp_quant::{fake_quantize, search_unsigned_clip, UnsignedQuantParams};
use wp_tensor::Tensor;

/// What an [`ActQuant`] layer does on forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActQuantMode {
    /// Pass activations through unchanged (default).
    Off,
    /// Pass through, but record a subsample of values for calibration.
    Observe,
    /// Fake-quantize using the calibrated parameters.
    Quantize,
}

/// Shared state of one activation-quantization site.
#[derive(Debug)]
pub struct ActQuantState {
    /// Current mode.
    pub mode: ActQuantMode,
    /// Calibrated quantizer, set by [`ActQuantHandle::finalize`].
    pub params: Option<UnsignedQuantParams>,
    /// Sampled activation values collected in observe mode.
    pub samples: Vec<f32>,
    /// Cap on retained samples (observe mode subsamples beyond this).
    pub max_samples: usize,
    observe_counter: usize,
}

impl Default for ActQuantState {
    fn default() -> Self {
        Self {
            mode: ActQuantMode::Off,
            params: None,
            samples: Vec::new(),
            max_samples: 4096,
            observe_counter: 0,
        }
    }
}

/// Cloneable handle controlling one activation-quantization site.
#[derive(Debug, Clone, Default)]
pub struct ActQuantHandle {
    state: Rc<RefCell<ActQuantState>>,
}

impl ActQuantHandle {
    /// Creates a handle with default (Off) state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the mode.
    pub fn set_mode(&self, mode: ActQuantMode) {
        self.state.borrow_mut().mode = mode;
    }

    /// Current mode.
    pub fn mode(&self) -> ActQuantMode {
        self.state.borrow().mode
    }

    /// Clears collected calibration samples.
    pub fn clear_samples(&self) {
        let mut s = self.state.borrow_mut();
        s.samples.clear();
        s.observe_counter = 0;
    }

    /// Number of collected calibration samples.
    pub fn sample_count(&self) -> usize {
        self.state.borrow().samples.len()
    }

    /// Runs the clip search on collected samples and stores `bits`-bit
    /// quantization parameters.
    ///
    /// # Panics
    ///
    /// Panics if no samples were collected.
    pub fn finalize(&self, bits: u8, search_steps: usize) {
        let mut s = self.state.borrow_mut();
        assert!(!s.samples.is_empty(), "finalize called with no calibration samples");
        let result = search_unsigned_clip(&s.samples, bits, search_steps);
        s.params = Some(result.params);
    }

    /// Re-derives parameters at a different bitwidth keeping the calibrated
    /// clip (used to sweep activation bitwidth without re-calibrating).
    ///
    /// # Panics
    ///
    /// Panics if [`ActQuantHandle::finalize`] has not run.
    pub fn set_bits(&self, bits: u8) {
        let mut s = self.state.borrow_mut();
        let params = s.params.expect("set_bits requires calibrated params");
        s.params = Some(params.with_bits(bits));
    }

    /// The calibrated quantizer, if any.
    pub fn params(&self) -> Option<UnsignedQuantParams> {
        self.state.borrow().params
    }

    /// Directly installs quantization parameters (used by tests and by
    /// deployment code that already knows the range).
    pub fn set_params(&self, params: UnsignedQuantParams) {
        self.state.borrow_mut().params = Some(params);
    }
}

/// The activation fake-quantization layer. Create one per activation site
/// and keep the [`ActQuantHandle`] to control it.
#[derive(Debug, Default)]
pub struct ActQuant {
    handle: ActQuantHandle,
}

impl ActQuant {
    /// Creates a layer controlled by `handle`.
    pub fn new(handle: ActQuantHandle) -> Self {
        Self { handle }
    }

    /// The controlling handle.
    pub fn handle(&self) -> ActQuantHandle {
        self.handle.clone()
    }
}

impl Layer for ActQuant {
    fn forward(&mut self, input: &Tensor<f32>, _train: bool) -> Tensor<f32> {
        let mut state = self.handle.state.borrow_mut();
        match state.mode {
            ActQuantMode::Off => input.clone(),
            ActQuantMode::Observe => {
                // Deterministic strided subsampling caps memory while
                // covering the value distribution.
                let remaining = state.max_samples.saturating_sub(state.samples.len());
                if let Some(stride) = input.len().checked_div(remaining) {
                    let stride = stride.max(1);
                    let offset = state.observe_counter % stride;
                    let vals: Vec<f32> = input
                        .data()
                        .iter()
                        .skip(offset)
                        .step_by(stride)
                        .take(remaining)
                        .copied()
                        .collect();
                    state.samples.extend(vals);
                }
                state.observe_counter += 1;
                input.clone()
            }
            ActQuantMode::Quantize => {
                let params =
                    state.params.expect("ActQuant in Quantize mode without calibrated params");
                fake_quantize(input, &params)
            }
        }
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Tensor<f32> {
        // Straight-through estimator: gradients pass unchanged.
        grad_out.clone()
    }

    fn name(&self) -> &'static str {
        "act_quant"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_mode_is_identity() {
        let mut aq = ActQuant::default();
        let x = Tensor::from_vec(vec![0.1f32, -0.5, 2.7], &[3]);
        assert_eq!(aq.forward(&x, false), x);
    }

    #[test]
    fn observe_collects_then_finalize_quantizes() {
        let aq_handle = ActQuantHandle::new();
        let mut aq = ActQuant::new(aq_handle.clone());
        aq_handle.set_mode(ActQuantMode::Observe);
        let x = Tensor::from_vec((0..64).map(|i| i as f32 / 16.0).collect(), &[64]);
        aq.forward(&x, false);
        assert!(aq_handle.sample_count() > 0);
        aq_handle.finalize(4, 20);
        aq_handle.set_mode(ActQuantMode::Quantize);
        let y = aq.forward(&x, false);
        let params = aq_handle.params().unwrap();
        for &v in y.data() {
            let code = v / params.scale();
            assert!((code - code.round()).abs() < 1e-4, "{v} off grid");
        }
    }

    #[test]
    fn backward_is_straight_through() {
        let mut aq = ActQuant::default();
        let x = Tensor::from_vec(vec![1.0f32, 2.0], &[2]);
        aq.forward(&x, true);
        let g = Tensor::from_vec(vec![0.3f32, -0.7], &[2]);
        assert_eq!(aq.backward(&g), g);
    }

    #[test]
    fn set_bits_keeps_clip() {
        let handle = ActQuantHandle::new();
        handle.set_params(UnsignedQuantParams::from_max(4.0, 8));
        handle.set_bits(3);
        let p = handle.params().unwrap();
        assert_eq!(p.bits(), 3);
        assert!((p.clip() - 4.0).abs() < 1e-5);
    }

    #[test]
    fn sample_cap_respected() {
        let handle = ActQuantHandle::new();
        let mut aq = ActQuant::new(handle.clone());
        handle.set_mode(ActQuantMode::Observe);
        let x = Tensor::<f32>::full(&[10_000], 1.0);
        aq.forward(&x, false);
        aq.forward(&x, false);
        assert!(handle.sample_count() <= 4096);
    }

    #[test]
    #[should_panic(expected = "without calibrated params")]
    fn quantize_without_params_panics() {
        let handle = ActQuantHandle::new();
        let mut aq = ActQuant::new(handle.clone());
        handle.set_mode(ActQuantMode::Quantize);
        aq.forward(&Tensor::from_vec(vec![1.0f32], &[1]), false);
    }
}
