//! Softmax cross-entropy loss.

use wp_tensor::Tensor;

/// Loss value and gradient returned by [`SoftmaxCrossEntropy::compute`].
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean cross-entropy over the batch.
    pub loss: f32,
    /// Gradient of the mean loss with respect to the logits, `[N, classes]`.
    pub grad: Tensor<f32>,
    /// Number of correct argmax predictions in the batch.
    pub correct: usize,
}

/// Numerically-stable softmax cross-entropy over a batch of logits.
#[derive(Debug, Default)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Computes mean loss, logits gradient, and top-1 correctness.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is not `[N, classes]`, `labels.len() != N`, or a
    /// label is out of range.
    pub fn compute(logits: &Tensor<f32>, labels: &[usize]) -> LossOutput {
        let d = logits.dims();
        assert_eq!(d.len(), 2, "logits must be [N, classes]");
        let (n, classes) = (d[0], d[1]);
        assert_eq!(labels.len(), n, "label count must match batch size");

        let mut grad = Tensor::<f32>::zeros(&[n, classes]);
        let mut loss = 0.0f64;
        let mut correct = 0usize;

        for (b, &label) in labels.iter().enumerate() {
            let row = &logits.data()[b * classes..(b + 1) * classes];
            assert!(label < classes, "label {label} out of range for {classes} classes");

            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
            let sum: f32 = exps.iter().sum();

            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            if argmax == label {
                correct += 1;
            }

            loss += -((exps[label] / sum).max(1e-30).ln()) as f64;
            for (c, &e) in exps.iter().enumerate() {
                let p = e / sum;
                let target = if c == label { 1.0 } else { 0.0 };
                grad.data_mut()[b * classes + c] = (p - target) / n as f32;
            }
        }

        LossOutput { loss: (loss / n as f64) as f32, grad, correct }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes() {
        let logits = Tensor::<f32>::zeros(&[2, 4]);
        let out = SoftmaxCrossEntropy::compute(&logits, &[0, 3]);
        assert!((out.loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Tensor::from_vec(vec![10.0f32, -10.0], &[1, 2]);
        let out = SoftmaxCrossEntropy::compute(&logits, &[0]);
        assert!(out.loss < 1e-6);
        assert_eq!(out.correct, 1);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(vec![1.0f32, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let out = SoftmaxCrossEntropy::compute(&logits, &[2, 0]);
        for b in 0..2 {
            let s: f32 = out.grad.data()[b * 3..(b + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradcheck() {
        let vals = vec![0.5f32, -1.0, 2.0];
        let labels = [1usize];
        let logits = Tensor::from_vec(vals.clone(), &[1, 3]);
        let out = SoftmaxCrossEntropy::compute(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut plus = vals.clone();
            plus[i] += eps;
            let lp = SoftmaxCrossEntropy::compute(&Tensor::from_vec(plus, &[1, 3]), &labels).loss;
            let mut minus = vals.clone();
            minus[i] -= eps;
            let lm = SoftmaxCrossEntropy::compute(&Tensor::from_vec(minus, &[1, 3]), &labels).loss;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - out.grad.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn extreme_logits_stay_finite() {
        let logits = Tensor::from_vec(vec![1000.0f32, -1000.0], &[1, 2]);
        let out = SoftmaxCrossEntropy::compute(&logits, &[1]);
        assert!(out.loss.is_finite());
        assert!(out.grad.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_rejected() {
        let logits = Tensor::<f32>::zeros(&[1, 2]);
        SoftmaxCrossEntropy::compute(&logits, &[5]);
    }
}
