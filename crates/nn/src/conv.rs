//! Standard and depthwise 2D convolutions with backward passes.

use crate::layer::{Layer, Param};
use rand::Rng;
use std::rc::Rc;
use wp_tensor::{fill_kaiming_normal, Conv2dGeometry, Tensor};

/// An inference-time replacement for a convolution's forward computation.
///
/// The weight-pool compressor installs overrides that execute the bit-serial
/// lookup-table arithmetic (including LUT and activation quantization) in
/// place of the float convolution, which is how the paper simulates the
/// proposed bit-serial lookup implementation for the accuracy tables.
/// Overrides apply only when `forward` is called with `train == false`.
pub trait ConvOverride {
    /// Computes the layer output from `input`, with read access to the
    /// conv's own weights/bias/geometry.
    fn forward(&self, conv: &Conv2d, input: &Tensor<f32>) -> Tensor<f32>;
}

/// A standard 2D convolution, weight layout `[K, C, R, S]`, with bias.
///
/// Stride and padding are uniform in both spatial dimensions; the geometry
/// is recomputed from the incoming tensor every forward call, so one layer
/// instance can serve any input resolution.
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    cached_input: Option<Tensor<f32>>,
    cached_geo: Option<Conv2dGeometry>,
    override_hook: Option<Rc<dyn ConvOverride>>,
}

impl std::fmt::Debug for Conv2d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conv2d")
            .field("in_ch", &self.in_ch)
            .field("out_ch", &self.out_ch)
            .field("kernel", &self.kernel)
            .field("stride", &self.stride)
            .field("pad", &self.pad)
            .field("override", &self.override_hook.is_some())
            .finish()
    }
}

impl Conv2d {
    /// Creates a convolution with Kaiming-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if any of `in_ch`, `out_ch`, `kernel`, `stride` is zero.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(in_ch > 0 && out_ch > 0 && kernel > 0 && stride > 0);
        let mut weight = Tensor::zeros(&[out_ch, in_ch, kernel, kernel]);
        fill_kaiming_normal(&mut weight, in_ch * kernel * kernel, rng);
        let bias = Tensor::zeros(&[out_ch]);
        Self {
            weight: Param::new(weight),
            bias: Param::new(bias),
            in_ch,
            out_ch,
            kernel,
            stride,
            pad,
            cached_input: None,
            cached_geo: None,
            override_hook: None,
        }
    }

    /// Installs (or clears) an inference-time forward override.
    pub fn set_override(&mut self, hook: Option<Rc<dyn ConvOverride>>) {
        self.override_hook = hook;
    }

    /// Whether an inference override is installed.
    pub fn has_override(&self) -> bool {
        self.override_hook.is_some()
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_ch
    }

    /// Number of filters (output channels).
    pub fn out_channels(&self) -> usize {
        self.out_ch
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Spatial stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// The weight tensor, `[K, C, R, S]`.
    pub fn weight(&self) -> &Tensor<f32> {
        &self.weight.value
    }

    /// Mutable weight access (used by the weight-pool projector).
    pub fn weight_mut(&mut self) -> &mut Tensor<f32> {
        &mut self.weight.value
    }

    /// The bias vector, `[K]`.
    pub fn bias(&self) -> &Tensor<f32> {
        &self.bias.value
    }

    /// The convolution geometry this layer produces for an `h`×`w` input.
    pub fn geometry_for(&self, h: usize, w: usize) -> Conv2dGeometry {
        Conv2dGeometry::new(h, w, self.kernel, self.kernel, self.stride, self.pad)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Tensor<f32> {
        if !train {
            if let Some(hook) = self.override_hook.clone() {
                return hook.forward(self, input);
            }
        }
        let d = input.dims();
        assert_eq!(d.len(), 4, "conv expects [N, C, H, W]");
        assert_eq!(d[1], self.in_ch, "channel mismatch: got {}, want {}", d[1], self.in_ch);
        let (n, h, w) = (d[0], d[2], d[3]);
        let geo = Conv2dGeometry::new(h, w, self.kernel, self.kernel, self.stride, self.pad);
        let (oh, ow) = (geo.out_h(), geo.out_w());
        let mut out = Tensor::<f32>::zeros(&[n, self.out_ch, oh, ow]);

        let wdat = self.weight.value.data();
        let bdat = self.bias.value.data();
        let idat = input.data();
        let odat = out.data_mut();
        let k = self.kernel;

        for b in 0..n {
            for f in 0..self.out_ch {
                let w_f = &wdat[f * self.in_ch * k * k..(f + 1) * self.in_ch * k * k];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bdat[f];
                        for c in 0..self.in_ch {
                            let in_base = ((b * self.in_ch + c) * h) * w;
                            let w_base = c * k * k;
                            for ky in 0..k {
                                let iy = match geo.input_row(oy, ky) {
                                    Some(v) => v,
                                    None => continue,
                                };
                                for kx in 0..k {
                                    let ix = match geo.input_col(ox, kx) {
                                        Some(v) => v,
                                        None => continue,
                                    };
                                    acc += idat[in_base + iy * w + ix] * w_f[w_base + ky * k + kx];
                                }
                            }
                        }
                        odat[((b * self.out_ch + f) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }

        self.cached_input = Some(input.clone());
        self.cached_geo = Some(geo);
        out
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Tensor<f32> {
        let input = self.cached_input.as_ref().expect("backward before forward");
        let geo = self.cached_geo.expect("backward before forward");
        let d = input.dims();
        let (n, h, w) = (d[0], d[2], d[3]);
        let (oh, ow) = (geo.out_h(), geo.out_w());
        assert_eq!(grad_out.dims(), &[n, self.out_ch, oh, ow]);

        let mut grad_in = Tensor::<f32>::zeros(&[n, self.in_ch, h, w]);
        let k = self.kernel;
        let idat = input.data();
        let godat = grad_out.data();
        let wdat = self.weight.value.data();
        let gw = self.weight.grad.data_mut();
        let gb = self.bias.grad.data_mut();
        let gi = grad_in.data_mut();

        for b in 0..n {
            for f in 0..self.out_ch {
                let w_f = &wdat[f * self.in_ch * k * k..(f + 1) * self.in_ch * k * k];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = godat[((b * self.out_ch + f) * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        gb[f] += g;
                        for c in 0..self.in_ch {
                            let in_base = ((b * self.in_ch + c) * h) * w;
                            let w_base = (f * self.in_ch + c) * k * k;
                            for ky in 0..k {
                                let iy = match geo.input_row(oy, ky) {
                                    Some(v) => v,
                                    None => continue,
                                };
                                for kx in 0..k {
                                    let ix = match geo.input_col(ox, kx) {
                                        Some(v) => v,
                                        None => continue,
                                    };
                                    let x = idat[in_base + iy * w + ix];
                                    gw[w_base + ky * k + kx] += g * x;
                                    gi[in_base + iy * w + ix] += g * w_f[c * k * k + ky * k + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn visit_convs(&mut self, f: &mut dyn FnMut(&mut Conv2d)) {
        f(self);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }
}

/// A depthwise 2D convolution: one `[R, S]` kernel per channel, weight
/// layout `[C, 1, R, S]`.
///
/// MobileNet-v2's depthwise layers stay *uncompressed* in the paper (§5.1);
/// this layer exists so the MobileNet-v2 model is structurally faithful.
#[derive(Debug)]
pub struct DepthwiseConv2d {
    weight: Param,
    bias: Param,
    channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    cached_input: Option<Tensor<f32>>,
    cached_geo: Option<Conv2dGeometry>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution with Kaiming-normal weights.
    ///
    /// # Panics
    ///
    /// Panics if `channels`, `kernel`, or `stride` is zero.
    pub fn new(
        channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(channels > 0 && kernel > 0 && stride > 0);
        let mut weight = Tensor::zeros(&[channels, 1, kernel, kernel]);
        fill_kaiming_normal(&mut weight, kernel * kernel, rng);
        let bias = Tensor::zeros(&[channels]);
        Self {
            weight: Param::new(weight),
            bias: Param::new(bias),
            channels,
            kernel,
            stride,
            pad,
            cached_input: None,
            cached_geo: None,
        }
    }

    /// Number of channels (input = output).
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The weight tensor, `[C, 1, R, S]`.
    pub fn weight(&self) -> &Tensor<f32> {
        &self.weight.value
    }
}

impl Layer for DepthwiseConv2d {
    fn forward(&mut self, input: &Tensor<f32>, _train: bool) -> Tensor<f32> {
        let d = input.dims();
        assert_eq!(d.len(), 4, "depthwise conv expects [N, C, H, W]");
        assert_eq!(d[1], self.channels, "channel mismatch");
        let (n, h, w) = (d[0], d[2], d[3]);
        let geo = Conv2dGeometry::new(h, w, self.kernel, self.kernel, self.stride, self.pad);
        let (oh, ow) = (geo.out_h(), geo.out_w());
        let mut out = Tensor::<f32>::zeros(&[n, self.channels, oh, ow]);
        let k = self.kernel;

        for b in 0..n {
            for c in 0..self.channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = self.bias.value.data()[c];
                        for ky in 0..k {
                            let iy = match geo.input_row(oy, ky) {
                                Some(v) => v,
                                None => continue,
                            };
                            for kx in 0..k {
                                let ix = match geo.input_col(ox, kx) {
                                    Some(v) => v,
                                    None => continue,
                                };
                                acc +=
                                    input.get4(b, c, iy, ix) * self.weight.value.get4(c, 0, ky, kx);
                            }
                        }
                        out.set4(b, c, oy, ox, acc);
                    }
                }
            }
        }

        self.cached_input = Some(input.clone());
        self.cached_geo = Some(geo);
        out
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Tensor<f32> {
        let input = self.cached_input.as_ref().expect("backward before forward");
        let geo = self.cached_geo.expect("backward before forward");
        let d = input.dims();
        let (n, h, w) = (d[0], d[2], d[3]);
        let (oh, ow) = (geo.out_h(), geo.out_w());
        let mut grad_in = Tensor::<f32>::zeros(&[n, self.channels, h, w]);
        let k = self.kernel;

        for b in 0..n {
            for c in 0..self.channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = grad_out.get4(b, c, oy, ox);
                        if g == 0.0 {
                            continue;
                        }
                        self.bias.grad.data_mut()[c] += g;
                        for ky in 0..k {
                            let iy = match geo.input_row(oy, ky) {
                                Some(v) => v,
                                None => continue,
                            };
                            for kx in 0..k {
                                let ix = match geo.input_col(ox, kx) {
                                    Some(v) => v,
                                    None => continue,
                                };
                                let x = input.get4(b, c, iy, ix);
                                *self.weight.grad.at_mut(&[c, 0, ky, kx]) += g * x;
                                *grad_in.at_mut(&[b, c, iy, ix]) +=
                                    g * self.weight.value.get4(c, 0, ky, kx);
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "depthwise_conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn forward_shape_same_padding() {
        let mut r = rng(0);
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut r);
        let x = Tensor::<f32>::full(&[2, 3, 8, 8], 0.5);
        let y = conv.forward(&x, true);
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
    }

    #[test]
    fn forward_shape_stride2() {
        let mut r = rng(0);
        let mut conv = Conv2d::new(4, 6, 3, 2, 1, &mut r);
        let x = Tensor::<f32>::zeros(&[1, 4, 16, 16]);
        let y = conv.forward(&x, true);
        assert_eq!(y.dims(), &[1, 6, 8, 8]);
    }

    #[test]
    fn identity_kernel_passes_through() {
        let mut r = rng(0);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut r);
        conv.weight_mut().data_mut()[0] = 1.0;
        let x = Tensor::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn bias_is_added() {
        let mut r = rng(0);
        let mut conv = Conv2d::new(1, 2, 1, 1, 0, &mut r);
        conv.weight_mut().data_mut().fill(0.0);
        conv.bias.value.data_mut().copy_from_slice(&[1.5, -2.0]);
        let x = Tensor::<f32>::zeros(&[1, 1, 2, 2]);
        let y = conv.forward(&x, false);
        assert!(y.data()[..4].iter().all(|&v| v == 1.5));
        assert!(y.data()[4..].iter().all(|&v| v == -2.0));
    }

    /// Finite-difference gradient check for Conv2d (weights, bias, input).
    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut r = rng(42);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut r);
        let x = {
            let mut t = Tensor::<f32>::zeros(&[1, 2, 4, 4]);
            wp_tensor::fill_uniform(&mut t, -1.0, 1.0, &mut r);
            t
        };
        // Loss = sum(output); grad_out = ones.
        let y = conv.forward(&x, true);
        let ones = Tensor::<f32>::full(y.dims(), 1.0);
        let grad_in = conv.backward(&ones);

        let eps = 1e-3f32;
        // Check a scattering of weight coordinates.
        for &wi in &[0usize, 5, 17, 33, 53] {
            let orig = conv.weight.value.data()[wi];
            conv.weight.value.data_mut()[wi] = orig + eps;
            let lp: f32 = conv.forward(&x, true).data().iter().sum();
            conv.weight.value.data_mut()[wi] = orig - eps;
            let lm: f32 = conv.forward(&x, true).data().iter().sum();
            conv.weight.value.data_mut()[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = conv.weight.grad.data()[wi];
            assert!(
                (numeric - analytic).abs() < 0.05 * analytic.abs().max(1.0),
                "weight[{wi}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Check input gradient coordinates.
        let mut x2 = x.clone();
        for &xi in &[0usize, 7, 15, 31] {
            let orig = x2.data()[xi];
            x2.data_mut()[xi] = orig + eps;
            let lp: f32 = conv.forward(&x2, true).data().iter().sum();
            x2.data_mut()[xi] = orig - eps;
            let lm: f32 = conv.forward(&x2, true).data().iter().sum();
            x2.data_mut()[xi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_in.data()[xi];
            assert!(
                (numeric - analytic).abs() < 0.05 * analytic.abs().max(1.0),
                "input[{xi}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Bias gradient of sum-loss is the number of output pixels.
        let px = (4 * 4) as f32;
        for f in 0..3 {
            assert!((conv.bias.grad.data()[f] - px).abs() < 1e-3);
        }
    }

    #[test]
    fn depthwise_channels_are_independent() {
        let mut r = rng(1);
        let mut dw = DepthwiseConv2d::new(2, 3, 1, 1, &mut r);
        // Zero the second channel's kernel: its output must be all bias (0).
        for ky in 0..3 {
            for kx in 0..3 {
                *dw.weight.value.at_mut(&[1, 0, ky, kx]) = 0.0;
            }
        }
        let mut x = Tensor::<f32>::zeros(&[1, 2, 4, 4]);
        wp_tensor::fill_uniform(&mut x, -1.0, 1.0, &mut r);
        let y = dw.forward(&x, false);
        for oy in 0..4 {
            for ox in 0..4 {
                assert_eq!(y.get4(0, 1, oy, ox), 0.0);
            }
        }
    }

    #[test]
    fn depthwise_gradcheck() {
        let mut r = rng(9);
        let mut dw = DepthwiseConv2d::new(2, 3, 1, 1, &mut r);
        let mut x = Tensor::<f32>::zeros(&[1, 2, 4, 4]);
        wp_tensor::fill_uniform(&mut x, -1.0, 1.0, &mut r);
        let y = dw.forward(&x, true);
        let ones = Tensor::<f32>::full(y.dims(), 1.0);
        dw.backward(&ones);
        let eps = 1e-3f32;
        for &wi in &[0usize, 4, 9, 17] {
            let orig = dw.weight.value.data()[wi];
            dw.weight.value.data_mut()[wi] = orig + eps;
            let lp: f32 = dw.forward(&x, true).data().iter().sum();
            dw.weight.value.data_mut()[wi] = orig - eps;
            let lm: f32 = dw.forward(&x, true).data().iter().sum();
            dw.weight.value.data_mut()[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dw.weight.grad.data()[wi];
            assert!(
                (numeric - analytic).abs() < 0.05 * analytic.abs().max(1.0),
                "weight[{wi}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn visit_convs_reaches_self() {
        let mut r = rng(2);
        let mut conv = Conv2d::new(2, 4, 3, 1, 1, &mut r);
        let mut seen = 0;
        conv.visit_convs(&mut |c| {
            seen += 1;
            assert_eq!(c.out_channels(), 4);
        });
        assert_eq!(seen, 1);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn wrong_channels_rejected() {
        let mut r = rng(3);
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, &mut r);
        conv.forward(&Tensor::<f32>::zeros(&[1, 2, 4, 4]), false);
    }

    struct ConstOverride(f32);
    impl ConvOverride for ConstOverride {
        fn forward(&self, conv: &Conv2d, input: &Tensor<f32>) -> Tensor<f32> {
            let d = input.dims();
            let geo = conv.geometry_for(d[2], d[3]);
            Tensor::full(&[d[0], conv.out_channels(), geo.out_h(), geo.out_w()], self.0)
        }
    }

    #[test]
    fn override_replaces_eval_forward_only() {
        let mut r = rng(5);
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut r);
        conv.set_override(Some(std::rc::Rc::new(ConstOverride(7.0))));
        let x = Tensor::<f32>::full(&[1, 1, 4, 4], 1.0);
        // Eval uses the override.
        let y = conv.forward(&x, false);
        assert!(y.data().iter().all(|&v| v == 7.0));
        // Training ignores it.
        let y_train = conv.forward(&x, true);
        assert!(y_train.data().iter().any(|&v| v != 7.0));
        // Clearing restores normal eval.
        conv.set_override(None);
        let y_clear = conv.forward(&x, false);
        assert_eq!(y_clear, y_train);
    }
}
