//! Spatial pooling layers.

use crate::layer::Layer;
use wp_tensor::Tensor;

/// Non-overlapping max pooling with a square window.
#[derive(Debug)]
pub struct MaxPool2d {
    size: usize,
    argmax: Option<Vec<usize>>, // flat input index of each output's max
    in_dims: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with window and stride `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0);
        Self { size, argmax: None, in_dims: None }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor<f32>, _train: bool) -> Tensor<f32> {
        let d = input.dims();
        assert_eq!(d.len(), 4, "pool expects [N, C, H, W]");
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let s = self.size;
        assert!(h >= s && w >= s, "input {h}x{w} smaller than pool window {s}");
        let (oh, ow) = (h / s, w / s);
        let mut out = Tensor::<f32>::zeros(&[n, c, oh, ow]);
        let mut argmax = vec![0usize; n * c * oh * ow];

        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..s {
                            for dx in 0..s {
                                let iy = oy * s + dy;
                                let ix = ox * s + dx;
                                let v = input.get4(b, ch, iy, ix);
                                if v > best {
                                    best = v;
                                    best_idx = ((b * c + ch) * h + iy) * w + ix;
                                }
                            }
                        }
                        out.set4(b, ch, oy, ox, best);
                        argmax[((b * c + ch) * oh + oy) * ow + ox] = best_idx;
                    }
                }
            }
        }
        self.argmax = Some(argmax);
        self.in_dims = Some(d.to_vec());
        out
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Tensor<f32> {
        let argmax = self.argmax.as_ref().expect("backward before forward");
        let in_dims = self.in_dims.as_ref().unwrap();
        let mut grad_in = Tensor::<f32>::zeros(in_dims);
        for (g, &idx) in grad_out.data().iter().zip(argmax) {
            grad_in.data_mut()[idx] += g;
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "maxpool2d"
    }
}

/// Non-overlapping average pooling with a square window.
#[derive(Debug)]
pub struct AvgPool2d {
    size: usize,
    in_dims: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with window and stride `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0);
        Self { size, in_dims: None }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor<f32>, _train: bool) -> Tensor<f32> {
        let d = input.dims();
        assert_eq!(d.len(), 4, "pool expects [N, C, H, W]");
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let s = self.size;
        assert!(h >= s && w >= s, "input {h}x{w} smaller than pool window {s}");
        let (oh, ow) = (h / s, w / s);
        let inv = 1.0 / (s * s) as f32;
        let mut out = Tensor::<f32>::zeros(&[n, c, oh, ow]);
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for dy in 0..s {
                            for dx in 0..s {
                                acc += input.get4(b, ch, oy * s + dy, ox * s + dx);
                            }
                        }
                        out.set4(b, ch, oy, ox, acc * inv);
                    }
                }
            }
        }
        self.in_dims = Some(d.to_vec());
        out
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Tensor<f32> {
        let in_dims = self.in_dims.as_ref().expect("backward before forward");
        let (n, c, h, w) = (in_dims[0], in_dims[1], in_dims[2], in_dims[3]);
        let s = self.size;
        let (oh, ow) = (h / s, w / s);
        let inv = 1.0 / (s * s) as f32;
        let mut grad_in = Tensor::<f32>::zeros(in_dims);
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = grad_out.get4(b, ch, oy, ox) * inv;
                        for dy in 0..s {
                            for dx in 0..s {
                                *grad_in.at_mut(&[b, ch, oy * s + dy, ox * s + dx]) += g;
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "avgpool2d"
    }
}

/// Global average pooling: `[N, C, H, W]` → `[N, C, 1, 1]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    in_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor<f32>, _train: bool) -> Tensor<f32> {
        let d = input.dims();
        assert_eq!(d.len(), 4, "pool expects [N, C, H, W]");
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let inv = 1.0 / (h * w) as f32;
        let mut out = Tensor::<f32>::zeros(&[n, c, 1, 1]);
        for b in 0..n {
            for ch in 0..c {
                let mut acc = 0.0;
                for y in 0..h {
                    for x in 0..w {
                        acc += input.get4(b, ch, y, x);
                    }
                }
                out.set4(b, ch, 0, 0, acc * inv);
            }
        }
        self.in_dims = Some(d.to_vec());
        out
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Tensor<f32> {
        let in_dims = self.in_dims.as_ref().expect("backward before forward");
        let (n, c, h, w) = (in_dims[0], in_dims[1], in_dims[2], in_dims[3]);
        let inv = 1.0 / (h * w) as f32;
        let mut grad_in = Tensor::<f32>::zeros(in_dims);
        for b in 0..n {
            for ch in 0..c {
                let g = grad_out.get4(b, ch, 0, 0) * inv;
                for y in 0..h {
                    for x in 0..w {
                        grad_in.set4(b, ch, y, x, g);
                    }
                }
            }
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "global_avg_pool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_max() {
        let x = Tensor::from_vec(
            vec![
                1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        );
        let mut p = MaxPool2d::new(2);
        let y = p.forward(&x, false);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_gradient_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0f32, 9.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let mut p = MaxPool2d::new(2);
        p.forward(&x, true);
        let g = p.backward(&Tensor::from_vec(vec![5.0f32], &[1, 1, 1, 1]));
        assert_eq!(g.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn avgpool_averages() {
        let x = Tensor::from_vec(vec![1.0f32, 3.0, 5.0, 7.0], &[1, 1, 2, 2]);
        let mut p = AvgPool2d::new(2);
        let y = p.forward(&x, false);
        assert_eq!(y.data(), &[4.0]);
    }

    #[test]
    fn avgpool_gradient_spreads_evenly() {
        let x = Tensor::from_vec(vec![1.0f32, 3.0, 5.0, 7.0], &[1, 1, 2, 2]);
        let mut p = AvgPool2d::new(2);
        p.forward(&x, true);
        let g = p.backward(&Tensor::from_vec(vec![8.0f32], &[1, 1, 1, 1]));
        assert_eq!(g.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn global_avg_pool_shape_and_value() {
        let x = Tensor::from_vec((1..=8).map(|v| v as f32).collect(), &[1, 2, 2, 2]);
        let mut p = GlobalAvgPool::new();
        let y = p.forward(&x, false);
        assert_eq!(y.dims(), &[1, 2, 1, 1]);
        assert_eq!(y.data(), &[2.5, 6.5]);
    }

    #[test]
    fn odd_sizes_truncate() {
        let x = Tensor::<f32>::full(&[1, 1, 5, 5], 1.0);
        let mut p = MaxPool2d::new(2);
        let y = p.forward(&x, false);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "smaller than pool window")]
    fn window_larger_than_input_rejected() {
        let x = Tensor::<f32>::zeros(&[1, 1, 2, 2]);
        MaxPool2d::new(3).forward(&x, false);
    }
}
