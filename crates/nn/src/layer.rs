//! The [`Layer`] trait and trainable [`Param`] storage.

use wp_tensor::Tensor;

/// A trainable parameter: its value and the gradient accumulated by the most
/// recent backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor<f32>,
    /// Gradient with respect to the value, overwritten by each backward pass.
    pub grad: Tensor<f32>,
}

impl Param {
    /// Creates a parameter with a zeroed gradient of matching shape.
    pub fn new(value: Tensor<f32>) -> Self {
        let grad = Tensor::zeros(value.dims());
        Self { value, grad }
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }
}

/// A neural-network layer with explicit forward and backward passes.
///
/// Layers cache whatever they need during `forward` so that `backward` can
/// compute gradients; callers must therefore pair each `backward` with the
/// immediately preceding `forward`.
pub trait Layer {
    /// Computes the layer output. `train` selects training behaviour
    /// (batch statistics in batch norm); inference passes `false`.
    fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Tensor<f32>;

    /// Propagates `grad_out` (gradient w.r.t. the forward output) back to
    /// the input, accumulating parameter gradients along the way.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor<f32>) -> Tensor<f32>;

    /// Mutable access to every trainable parameter, outermost layer first.
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Visits every standard convolution in this layer (recursively for
    /// composites), passing mutable weight access to `f`. Depthwise
    /// convolutions are *not* visited: the paper compresses only standard
    /// convolutions with z-dimension pools (§5.1).
    fn visit_convs(&mut self, _f: &mut dyn FnMut(&mut crate::Conv2d)) {}

    /// Mutable access to non-trainable state that must survive save/load
    /// (batch-norm running statistics). Default: none.
    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        Vec::new()
    }

    /// Visits every dense (fully-connected) layer, recursively for
    /// composites. Used by the optional FC-pooling study (paper
    /// footnote 1).
    fn visit_dense(&mut self, _f: &mut dyn FnMut(&mut crate::Dense)) {}

    /// Short human-readable layer name for diagnostics.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_new_zeroes_grad() {
        let p = Param::new(Tensor::from_vec(vec![1.0f32, 2.0], &[2]));
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::from_vec(vec![1.0f32], &[1]));
        p.grad.data_mut()[0] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0]);
    }
}
