//! Training-loop helpers: batches, epochs and evaluation.

use crate::{LossOutput, Sequential, Sgd, SoftmaxCrossEntropy};
use wp_tensor::Tensor;

/// A training or evaluation batch: images `[N, C, H, W]` with one label per
/// image.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Input images, `[N, C, H, W]`.
    pub images: Tensor<f32>,
    /// Class labels, length `N`.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Creates a batch, checking that labels match the batch dimension.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the leading image dimension.
    pub fn new(images: Tensor<f32>, labels: Vec<usize>) -> Self {
        assert_eq!(images.dims()[0], labels.len(), "labels must match batch size");
        Self { images, labels }
    }

    /// Number of examples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Aggregate statistics from one epoch or evaluation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean loss per batch.
    pub loss: f32,
    /// Top-1 accuracy over all examples.
    pub accuracy: f32,
}

/// Runs one training epoch over `batches`, updating `net` with `opt`.
///
/// # Panics
///
/// Panics if `batches` is empty.
pub fn train_epoch(net: &mut Sequential, opt: &mut Sgd, batches: &[Batch]) -> EpochStats {
    assert!(!batches.is_empty(), "no training batches supplied");
    let mut total_loss = 0.0f64;
    let mut correct = 0usize;
    let mut seen = 0usize;
    for batch in batches {
        let logits = net.forward(&batch.images, true);
        let out: LossOutput = SoftmaxCrossEntropy::compute(&logits, &batch.labels);
        net.backward(&out.grad);
        opt.step(net);
        total_loss += out.loss as f64;
        correct += out.correct;
        seen += batch.len();
    }
    EpochStats {
        loss: (total_loss / batches.len() as f64) as f32,
        accuracy: correct as f32 / seen as f32,
    }
}

/// Evaluates `net` on `batches` without updating parameters.
///
/// # Panics
///
/// Panics if `batches` is empty.
pub fn evaluate(net: &mut Sequential, batches: &[Batch]) -> EpochStats {
    assert!(!batches.is_empty(), "no evaluation batches supplied");
    let mut total_loss = 0.0f64;
    let mut correct = 0usize;
    let mut seen = 0usize;
    for batch in batches {
        let logits = net.forward(&batch.images, false);
        let out = SoftmaxCrossEntropy::compute(&logits, &batch.labels);
        total_loss += out.loss as f64;
        correct += out.correct;
        seen += batch.len();
    }
    EpochStats {
        loss: (total_loss / batches.len() as f64) as f32,
        accuracy: correct as f32 / seen as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu};
    use rand::SeedableRng;

    /// A linearly separable 2-class problem the net must learn quickly.
    fn toy_batches() -> Vec<Batch> {
        let mut batches = Vec::new();
        for i in 0..8 {
            let mut images = Vec::new();
            let mut labels = Vec::new();
            for j in 0..8 {
                let x = (i * 8 + j) as f32 / 64.0 * 2.0 - 1.0;
                let label = usize::from(x > 0.0);
                images.extend_from_slice(&[x, -x, 0.5 * x, 1.0]);
                labels.push(label);
            }
            batches.push(Batch::new(Tensor::from_vec(images, &[8, 4]), labels));
        }
        batches
    }

    #[test]
    fn training_learns_separable_problem() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut net = Sequential::new();
        net.push(Dense::new(4, 8, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(8, 2, &mut rng));
        let mut opt = Sgd::new(0.2).momentum(0.9);
        let batches = toy_batches();
        let mut last = EpochStats { loss: f32::INFINITY, accuracy: 0.0 };
        for _ in 0..20 {
            last = train_epoch(&mut net, &mut opt, &batches);
        }
        assert!(last.accuracy > 0.95, "accuracy {}", last.accuracy);
        let eval = evaluate(&mut net, &batches);
        assert!(eval.accuracy > 0.95, "eval accuracy {}", eval.accuracy);
    }

    #[test]
    fn evaluate_does_not_change_params() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Dense::new(4, 2, &mut rng));
        let before = net.state_dict();
        evaluate(&mut net, &toy_batches());
        assert_eq!(net.state_dict().params, before.params);
    }

    #[test]
    #[should_panic(expected = "labels must match")]
    fn batch_label_mismatch_rejected() {
        Batch::new(Tensor::<f32>::zeros(&[2, 4]), vec![0]);
    }
}
