//! SGD optimizer with momentum, weight decay and step LR schedules.

use crate::Sequential;

/// A piecewise-constant learning-rate schedule: the rate drops by `factor`
/// at each listed epoch boundary.
#[derive(Debug, Clone)]
pub struct LrSchedule {
    base_lr: f32,
    milestones: Vec<usize>,
    factor: f32,
}

impl LrSchedule {
    /// A constant learning rate.
    pub fn constant(lr: f32) -> Self {
        Self { base_lr: lr, milestones: Vec::new(), factor: 1.0 }
    }

    /// A step schedule: `lr * factor^k` where `k` counts the milestones at
    /// or below the current epoch.
    pub fn step(lr: f32, milestones: Vec<usize>, factor: f32) -> Self {
        Self { base_lr: lr, milestones, factor }
    }

    /// The learning rate at a given epoch.
    pub fn at(&self, epoch: usize) -> f32 {
        let drops = self.milestones.iter().filter(|&&m| epoch >= m).count();
        self.base_lr * self.factor.powi(drops as i32)
    }
}

/// Stochastic gradient descent with classical momentum and L2 weight decay:
///
/// ```text
/// v ← momentum·v − lr·(grad + weight_decay·w)
/// w ← w + v
/// ```
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Vec<f32>>, // one buffer per parameter, allocated lazily
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Self { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// Sets the momentum coefficient (0.9 is the usual choice).
    pub fn momentum(mut self, m: f32) -> Self {
        assert!((0.0..1.0).contains(&m), "momentum must be in [0, 1)");
        self.momentum = m;
        self
    }

    /// Sets the L2 weight-decay coefficient.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0, "weight decay must be non-negative");
        self.weight_decay = wd;
        self
    }

    /// Updates the learning rate (driven by an [`LrSchedule`]).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Applies one update to every parameter of `net` using the gradients
    /// accumulated by the latest backward pass, then zeroes the gradients.
    pub fn step(&mut self, net: &mut Sequential) {
        let mut params = net.params_mut();
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| vec![0.0f32; p.value.len()]).collect();
        }
        for (p, vel) in params.iter_mut().zip(self.velocity.iter_mut()) {
            debug_assert_eq!(p.value.len(), vel.len(), "parameter count changed mid-training");
            let w = p.value.data_mut();
            let g = p.grad.data();
            for i in 0..w.len() {
                let grad = g[i] + self.weight_decay * w[i];
                vel[i] = self.momentum * vel[i] - self.lr * grad;
                w[i] += vel[i];
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, SoftmaxCrossEntropy};
    use rand::SeedableRng;
    use wp_tensor::Tensor;

    #[test]
    fn schedule_constant() {
        let s = LrSchedule::constant(0.1);
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(100), 0.1);
    }

    #[test]
    fn schedule_steps_drop() {
        let s = LrSchedule::step(1.0, vec![10, 20], 0.1);
        assert!((s.at(0) - 1.0).abs() < 1e-9);
        assert!((s.at(10) - 0.1).abs() < 1e-7);
        assert!((s.at(25) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn sgd_descends_quadratic() {
        // Single dense layer trained to map a fixed input to label 0:
        // loss must drop monotonically-ish.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut net = Sequential::new();
        net.push(Dense::new(4, 3, &mut rng));
        let mut opt = Sgd::new(0.5).momentum(0.9);
        let x = Tensor::from_vec(vec![1.0f32, -0.5, 0.25, 2.0], &[1, 4]);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..50 {
            let y = net.forward(&x, true);
            let out = SoftmaxCrossEntropy::compute(&y, &[0]);
            net.backward(&out.grad);
            opt.step(&mut net);
            first.get_or_insert(out.loss);
            last = out.loss;
        }
        assert!(last < first.unwrap() * 0.01, "loss {last} did not drop from {first:?}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 2, &mut rng));
        let before: f32 = net.params_mut().iter().map(|p| p.value.sq_norm()).sum();
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        // Zero gradients: the only force is decay.
        for _ in 0..10 {
            opt.step(&mut net);
        }
        let after: f32 = net.params_mut().iter().map(|p| p.value.sq_norm()).sum();
        assert!(after < before * 0.5, "norm {after} vs {before}");
    }

    #[test]
    fn step_zeroes_grads() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 2, &mut rng));
        let x = Tensor::from_vec(vec![1.0f32, 1.0], &[1, 2]);
        let y = net.forward(&x, true);
        let out = SoftmaxCrossEntropy::compute(&y, &[0]);
        net.backward(&out.grad);
        let mut opt = Sgd::new(0.1);
        opt.step(&mut net);
        for p in net.params_mut() {
            assert!(p.grad.data().iter().all(|&g| g == 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn zero_lr_rejected() {
        Sgd::new(0.0);
    }
}
