//! The weight pool: a small set of shared weight vectors.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use wp_cluster::{nearest, ClusterError, DistanceMetric, KMeans};

/// Error produced while building a [`WeightPool`].
#[derive(Debug, Clone, PartialEq)]
pub enum PoolError {
    /// No groupable weight vectors were found (e.g. every layer skipped).
    NoVectors,
    /// The underlying clustering failed.
    Cluster(ClusterError),
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::NoVectors => write!(f, "no weight vectors available for pooling"),
            PoolError::Cluster(e) => write!(f, "clustering failed: {e}"),
        }
    }
}

impl Error for PoolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PoolError::Cluster(e) => Some(e),
            PoolError::NoVectors => None,
        }
    }
}

impl From<ClusterError> for PoolError {
    fn from(e: ClusterError) -> Self {
        PoolError::Cluster(e)
    }
}

/// Configuration of the weight-pool compression (paper §3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolConfig {
    /// Pool size `S`: how many shared vectors (32/64/128 in the paper).
    pub pool_size: usize,
    /// Group (vector) size `G` along the channel dimension (default 8).
    pub group_size: usize,
    /// Clustering/assignment metric (the paper uses cosine).
    pub metric: DistanceMetric,
    /// Skip the first convolution (paper keeps it uncompressed).
    pub skip_first_conv: bool,
    /// Maximum K-means iterations.
    pub kmeans_iters: usize,
    /// Subsample cap on vectors fed to K-means (keeps pool generation fast
    /// on big networks; assignment still uses every vector).
    pub sample_limit: usize,
}

impl PoolConfig {
    /// Creates a config with the paper's defaults: group size 8, cosine
    /// metric, first conv skipped.
    pub fn new(pool_size: usize) -> Self {
        Self {
            pool_size,
            group_size: 8,
            metric: DistanceMetric::Cosine,
            skip_first_conv: true,
            kmeans_iters: 50,
            sample_limit: 16_384,
        }
    }

    /// Sets the group (vector) size.
    pub fn group_size(mut self, g: usize) -> Self {
        self.group_size = g;
        self
    }

    /// Sets the clustering metric.
    pub fn metric(mut self, m: DistanceMetric) -> Self {
        self.metric = m;
        self
    }

    /// Sets whether the first convolution is kept uncompressed.
    pub fn skip_first_conv(mut self, skip: bool) -> Self {
        self.skip_first_conv = skip;
        self
    }

    /// Sets the K-means iteration cap.
    pub fn kmeans_iters(mut self, iters: usize) -> Self {
        self.kmeans_iters = iters;
        self
    }
}

/// A pool of shared weight vectors. All vectors have the same length
/// (the group size `G`); the pool size `S` is the number of vectors.
///
/// # Example
///
/// ```
/// use wp_core::WeightPool;
///
/// let pool = WeightPool::from_vectors(vec![
///     vec![1.0, 0.0],
///     vec![0.0, 1.0],
/// ]);
/// assert_eq!(pool.len(), 2);
/// assert_eq!(pool.group_size(), 2);
/// assert_eq!(pool.assign(&[0.9, 0.1], wp_cluster::DistanceMetric::Euclidean), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightPool {
    vectors: Vec<Vec<f32>>,
}

impl WeightPool {
    /// Wraps explicit vectors as a pool.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty or ragged.
    pub fn from_vectors(vectors: Vec<Vec<f32>>) -> Self {
        assert!(!vectors.is_empty(), "pool must contain at least one vector");
        let g = vectors[0].len();
        assert!(g > 0, "pool vectors must be non-empty");
        assert!(vectors.iter().all(|v| v.len() == g), "pool vectors must share one length");
        Self { vectors }
    }

    /// Builds a pool by clustering `samples` according to `cfg`.
    ///
    /// `samples` are the z-vectors extracted from every compressible layer;
    /// they are subsampled to `cfg.sample_limit` for clustering speed.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::NoVectors`] for an empty sample set and
    /// [`PoolError::Cluster`] if K-means cannot run (e.g. fewer samples
    /// than clusters).
    pub fn build(
        samples: &[Vec<f32>],
        cfg: &PoolConfig,
        rng: &mut impl rand::Rng,
    ) -> Result<Self, PoolError> {
        if samples.is_empty() {
            return Err(PoolError::NoVectors);
        }
        let mut subsampled: Vec<Vec<f32>> = if samples.len() > cfg.sample_limit {
            let stride = samples.len() as f64 / cfg.sample_limit as f64;
            (0..cfg.sample_limit).map(|i| samples[(i as f64 * stride) as usize].clone()).collect()
        } else {
            samples.to_vec()
        };
        // Spherical K-means rejects zero-norm points (no direction). Dead
        // weight groups contribute nothing to the pool's directions, so
        // drop them from the clustering sample; projection still maps
        // them onto a pool vector later.
        if cfg.metric == DistanceMetric::Cosine {
            subsampled.retain(|v| v.iter().any(|&x| x != 0.0));
            if subsampled.is_empty() {
                return Err(PoolError::NoVectors);
            }
        }
        let result = KMeans::new(cfg.pool_size, cfg.metric)
            .max_iters(cfg.kmeans_iters)
            .fit(&subsampled, rng)?;
        Ok(Self { vectors: result.centroids })
    }

    /// Number of vectors in the pool (`S`).
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the pool is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Vector length (`G`, the group size).
    pub fn group_size(&self) -> usize {
        self.vectors[0].len()
    }

    /// The `s`-th pool vector.
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.len()`.
    pub fn vector(&self, s: usize) -> &[f32] {
        &self.vectors[s]
    }

    /// All pool vectors.
    pub fn vectors(&self) -> &[Vec<f32>] {
        &self.vectors
    }

    /// Index of the pool vector nearest to `v` under `metric`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len()` differs from the group size.
    pub fn assign(&self, v: &[f32], metric: DistanceMetric) -> usize {
        assert_eq!(v.len(), self.group_size(), "vector length mismatch");
        nearest(v, &self.vectors, metric).0
    }

    /// Assigns every vector in `vs`, returning pool indices.
    pub fn assign_all(&self, vs: &[Vec<f32>], metric: DistanceMetric) -> Vec<usize> {
        vs.iter().map(|v| self.assign(v, metric)).collect()
    }

    /// Mean squared reconstruction error of replacing each vector in `vs`
    /// with its assigned pool vector.
    pub fn reconstruction_mse(&self, vs: &[Vec<f32>], metric: DistanceMetric) -> f64 {
        if vs.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0f64;
        let mut n = 0usize;
        for v in vs {
            let p = self.vector(self.assign(v, metric));
            for (a, b) in v.iter().zip(p) {
                acc += ((a - b) as f64).powi(2);
                n += 1;
            }
        }
        acc / n as f64
    }

    /// Bits needed to store the raw pool at `bits_per_weight` precision
    /// (the pool itself is not deployed — the LUT is — but this quantifies
    /// Eq. 4's alternatives).
    pub fn storage_bits(&self, bits_per_weight: u32) -> u64 {
        (self.len() * self.group_size()) as u64 * bits_per_weight as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn build_recovers_cluster_structure() {
        let mut samples = Vec::new();
        for i in 0..100 {
            let t = i as f32 * 0.001;
            samples.push(vec![1.0 + t, 0.0, 0.0, 0.0]);
            samples.push(vec![0.0, 1.0 - t, 0.0, 0.0]);
        }
        let cfg = PoolConfig::new(2).group_size(4).metric(DistanceMetric::Euclidean);
        let pool = WeightPool::build(&samples, &cfg, &mut rng(0)).unwrap();
        assert_eq!(pool.len(), 2);
        let a = pool.assign(&[1.0, 0.0, 0.0, 0.0], DistanceMetric::Euclidean);
        let b = pool.assign(&[0.0, 1.0, 0.0, 0.0], DistanceMetric::Euclidean);
        assert_ne!(a, b);
    }

    #[test]
    fn sample_limit_subsamples() {
        let samples: Vec<Vec<f32>> =
            (0..1000).map(|i| vec![(i % 17) as f32, (i % 5) as f32]).collect();
        let mut cfg = PoolConfig::new(4).group_size(2).metric(DistanceMetric::Euclidean);
        cfg.sample_limit = 64;
        let pool = WeightPool::build(&samples, &cfg, &mut rng(1)).unwrap();
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn empty_samples_is_error() {
        let cfg = PoolConfig::new(4);
        assert_eq!(WeightPool::build(&[], &cfg, &mut rng(2)), Err(PoolError::NoVectors));
    }

    #[test]
    fn too_few_samples_is_cluster_error() {
        let cfg = PoolConfig::new(8).group_size(2);
        let err = WeightPool::build(&[vec![1.0, 2.0]], &cfg, &mut rng(3)).unwrap_err();
        assert!(matches!(err, PoolError::Cluster(_)));
    }

    #[test]
    fn reconstruction_mse_zero_when_pool_contains_vectors() {
        let vs = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let pool = WeightPool::from_vectors(vs.clone());
        assert!(pool.reconstruction_mse(&vs, DistanceMetric::Euclidean) < 1e-12);
    }

    #[test]
    fn assign_all_matches_assign() {
        let pool = WeightPool::from_vectors(vec![vec![0.0, 0.0], vec![10.0, 10.0]]);
        let vs = vec![vec![1.0, 1.0], vec![9.0, 9.0]];
        assert_eq!(pool.assign_all(&vs, DistanceMetric::Euclidean), vec![0, 1]);
    }

    #[test]
    fn storage_bits_formula() {
        let pool = WeightPool::from_vectors(vec![vec![0.0; 8]; 64]);
        assert_eq!(pool.storage_bits(8), 64 * 8 * 8);
    }

    #[test]
    #[should_panic(expected = "share one length")]
    fn ragged_pool_rejected() {
        WeightPool::from_vectors(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn assign_wrong_length_rejected() {
        let pool = WeightPool::from_vectors(vec![vec![1.0, 2.0]]);
        pool.assign(&[1.0], DistanceMetric::Euclidean);
    }

    #[test]
    fn dead_weight_groups_are_filtered_before_cosine_clustering() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        // Two dead groups among enough live ones to fill the pool; the
        // strict spherical K-means would reject the zero vectors, so
        // build must drop them from the clustering sample.
        let mut samples = vec![vec![0.0f32; 4]; 2];
        for i in 0..8 {
            samples.push((0..4).map(|j| (i * 4 + j) as f32 * 0.1 + 0.1).collect());
        }
        let cfg = PoolConfig::new(4).group_size(4);
        let pool = WeightPool::build(&samples, &cfg, &mut rng).expect("dead groups filtered");
        assert_eq!(pool.len(), 4);
        // All-dead input has no directions to cluster at all.
        let all_dead = vec![vec![0.0f32; 4]; 8];
        assert!(matches!(WeightPool::build(&all_dead, &cfg, &mut rng), Err(PoolError::NoVectors)));
    }
}
