//! Lookup-table generation (paper §3.1–3.2).
//!
//! For every pool vector `p_s` the table stores the dot products with all
//! `2^G` possible activation **bit** vectors: entry `(s, m)` holds
//! `Σ_{i : bit i of m} p_s[i]`. Bit `i` of the pattern corresponds to
//! element `i` of the group. Entries are quantized symmetrically to the
//! lookup-table bitwidth `Bl` (4/8/16, Table 5) with one shared scale.

use crate::WeightPool;
use serde::{Deserialize, Serialize};
use wp_quant::QuantParams;

/// Memory ordering of LUT entries (paper §4.2 and appendix).
///
/// Input-oriented order groups all pool vectors' results for one bit
/// pattern contiguously, which is what the LUT-caching optimization copies
/// into SRAM block-by-block; weight-oriented order groups one pool vector's
/// results for all patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LutOrder {
    /// `entry(m, s)` contiguous in `s` — blocks addressed by bit pattern.
    InputOriented,
    /// `entry(s, m)` contiguous in `m` — blocks addressed by pool vector.
    WeightOriented,
}

/// The quantized dot-product lookup table.
///
/// # Example
///
/// ```
/// use wp_core::{LookupTable, LutOrder, WeightPool};
///
/// let pool = WeightPool::from_vectors(vec![vec![1.0, -2.0, 0.5, 0.25]]);
/// let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
/// // Pattern 0b0101 selects elements 0 and 2: 1.0 + 0.5.
/// assert!((lut.value(0, 0b0101) - 1.5).abs() < 0.02);
/// assert_eq!(lut.num_patterns(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LookupTable {
    group: usize,
    pool_size: usize,
    bits: u8,
    scale: f32,
    order: LutOrder,
    codes: Vec<i32>,
}

impl LookupTable {
    /// Builds the table from a pool at `bits`-bit entry precision.
    ///
    /// # Panics
    ///
    /// Panics if the pool's group size exceeds 12 (table would exceed
    /// 4096 entries per vector) or `bits` is outside `2..=16`.
    pub fn build(pool: &WeightPool, bits: u8, order: LutOrder) -> Self {
        let group = pool.group_size();
        assert!(group <= 12, "group size {group} makes 2^{group} patterns impractical");
        assert!((2..=16).contains(&bits), "lut bits must be in 2..=16, got {bits}");
        let pool_size = pool.len();
        let patterns = 1usize << group;

        // Exact entries first, then a shared symmetric quantizer.
        let mut exact = vec![0.0f32; pool_size * patterns];
        for s in 0..pool_size {
            let v = pool.vector(s);
            for m in 0..patterns {
                exact[s * patterns + m] = Self::exact_dot(v, m as u32);
            }
        }
        let params = QuantParams::symmetric_from_values(&exact, bits);

        let mut codes = vec![0i32; pool_size * patterns];
        for s in 0..pool_size {
            for m in 0..patterns {
                let q = params.quantize(exact[s * patterns + m]);
                let at = match order {
                    LutOrder::WeightOriented => s * patterns + m,
                    LutOrder::InputOriented => m * pool_size + s,
                };
                codes[at] = q;
            }
        }
        Self { group, pool_size, bits, scale: params.scale(), order, codes }
    }

    /// Reassembles a table from its stored parts — the binary bundle
    /// codec's decode path. `codes` must be in storage order for `order`
    /// (exactly what [`LookupTable::codes`] returns).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant: the same shape
    /// limits [`LookupTable::build`] enforces, a `codes` length other
    /// than `pool_size * 2^group`, codes outside the `bits`-bit two's
    /// complement range, or a non-finite scale.
    pub fn from_parts(
        group: usize,
        pool_size: usize,
        bits: u8,
        scale: f32,
        order: LutOrder,
        codes: Vec<i32>,
    ) -> Result<Self, String> {
        if group == 0 || group > 12 {
            return Err(format!("lut group size {group} outside 1..=12"));
        }
        if !(2..=16).contains(&bits) {
            return Err(format!("lut bits {bits} outside 2..=16"));
        }
        if pool_size == 0 {
            return Err("lut pool size must be nonzero".into());
        }
        if !scale.is_finite() {
            return Err(format!("lut scale {scale} is not finite"));
        }
        // `group` is already bounded to 12, but `pool_size` is caller
        // data: the shift must not silently wrap.
        let expect = pool_size
            .checked_mul(1usize << group)
            .ok_or_else(|| format!("lut shape {pool_size} << {group} overflows"))?;
        if codes.len() != expect {
            return Err(format!("lut has {} codes, shape needs {expect}", codes.len()));
        }
        let (lo, hi) = (-(1i64 << (bits - 1)), (1i64 << (bits - 1)) - 1);
        if let Some(&bad) = codes.iter().find(|&&c| i64::from(c) < lo || i64::from(c) > hi) {
            return Err(format!("lut code {bad} outside the {bits}-bit range"));
        }
        Ok(Self { group, pool_size, bits, scale, order, codes })
    }

    /// The exact (unquantized) dot product of `vector` with bit pattern
    /// `m`: sums elements whose bit is set.
    pub fn exact_dot(vector: &[f32], m: u32) -> f32 {
        let mut acc = 0.0f32;
        for (i, &w) in vector.iter().enumerate() {
            if (m >> i) & 1 == 1 {
                acc += w;
            }
        }
        acc
    }

    /// Group (vector) size `G`.
    pub fn group_size(&self) -> usize {
        self.group
    }

    /// Pool size `S`.
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Entry bitwidth `Bl`.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The real value represented by one code step.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Memory ordering.
    pub fn order(&self) -> LutOrder {
        self.order
    }

    /// Number of bit patterns, `2^G`.
    pub fn num_patterns(&self) -> usize {
        1usize << self.group
    }

    /// The quantized code of entry `(s, m)`.
    ///
    /// The bounds check is unconditional (not `debug_assert`): the two
    /// [`LutOrder`] layouts alias each other in the flat `codes` storage, so
    /// an out-of-range `(s, m)` in a release build would silently read the
    /// *wrong entry* rather than fail.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `m` is out of range.
    #[inline]
    pub fn code(&self, s: usize, m: usize) -> i32 {
        assert!(
            s < self.pool_size && m < self.num_patterns(),
            "lut entry ({s}, {m}) out of range for pool size {} and {} patterns",
            self.pool_size,
            self.num_patterns()
        );
        match self.order {
            LutOrder::WeightOriented => self.codes[s * self.num_patterns() + m],
            LutOrder::InputOriented => self.codes[m * self.pool_size + s],
        }
    }

    /// The dequantized real value of entry `(s, m)`.
    pub fn value(&self, s: usize, m: usize) -> f32 {
        self.code(s, m) as f32 * self.scale
    }

    /// Raw code storage in table order (used by kernels that model block
    /// copies).
    pub fn codes(&self) -> &[i32] {
        &self.codes
    }

    /// Storage footprint in bits: `2^G × S × Bl` (Eq. 3).
    pub fn storage_bits(&self) -> u64 {
        (self.num_patterns() * self.pool_size) as u64 * self.bits as u64
    }

    /// Storage footprint in bytes (entries packed at `Bl` bits).
    pub fn storage_bytes(&self) -> usize {
        (self.storage_bits() as usize).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_pool() -> WeightPool {
        WeightPool::from_vectors(vec![vec![1.0, 2.0, -1.0, 0.5], vec![0.0, -0.5, 0.25, 1.5]])
    }

    #[test]
    fn pattern_zero_is_zero() {
        let lut = LookupTable::build(&small_pool(), 8, LutOrder::InputOriented);
        assert_eq!(lut.code(0, 0), 0);
        assert_eq!(lut.code(1, 0), 0);
    }

    #[test]
    fn all_ones_pattern_sums_vector() {
        let lut = LookupTable::build(&small_pool(), 16, LutOrder::InputOriented);
        assert!((lut.value(0, 0b1111) - 2.5).abs() < 1e-3);
        assert!((lut.value(1, 0b1111) - 1.25).abs() < 1e-3);
    }

    #[test]
    fn bit_i_selects_element_i() {
        let pool = WeightPool::from_vectors(vec![vec![10.0, 20.0, 40.0]]);
        let lut = LookupTable::build(&pool, 16, LutOrder::WeightOriented);
        assert!((lut.value(0, 0b001) - 10.0).abs() < 0.01);
        assert!((lut.value(0, 0b010) - 20.0).abs() < 0.01);
        assert!((lut.value(0, 0b100) - 40.0).abs() < 0.01);
    }

    #[test]
    fn orders_agree_on_values() {
        let pool = small_pool();
        let a = LookupTable::build(&pool, 8, LutOrder::InputOriented);
        let b = LookupTable::build(&pool, 8, LutOrder::WeightOriented);
        for s in 0..pool.len() {
            for m in 0..a.num_patterns() {
                assert_eq!(a.code(s, m), b.code(s, m));
            }
        }
    }

    #[test]
    fn input_oriented_blocks_are_contiguous_by_pattern() {
        let pool = small_pool();
        let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
        // Block m starts at m * S in raw storage.
        let s_count = pool.len();
        for m in 0..lut.num_patterns() {
            for s in 0..s_count {
                assert_eq!(lut.codes()[m * s_count + s], lut.code(s, m));
            }
        }
    }

    #[test]
    fn storage_matches_eq3() {
        // 64-vector pool of 8-element vectors at 8 bits: 2^8 * 64 * 8 bits
        // = 16 kB, the paper's §3.2 example.
        let pool = WeightPool::from_vectors(vec![vec![0.1; 8]; 64]);
        let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
        assert_eq!(lut.storage_bits(), 256 * 64 * 8);
        assert_eq!(lut.storage_bytes(), 16 * 1024);
    }

    #[test]
    fn lower_bitwidth_coarser_values() {
        let pool = small_pool();
        let lut4 = LookupTable::build(&pool, 4, LutOrder::InputOriented);
        let lut16 = LookupTable::build(&pool, 16, LutOrder::InputOriented);
        // Max error of 4-bit must exceed that of 16-bit.
        let mut err4 = 0.0f32;
        let mut err16 = 0.0f32;
        for s in 0..pool.len() {
            for m in 0..16 {
                let exact = LookupTable::exact_dot(pool.vector(s), m as u32);
                err4 = err4.max((lut4.value(s, m) - exact).abs());
                err16 = err16.max((lut16.value(s, m) - exact).abs());
            }
        }
        assert!(err4 > err16);
        assert!(err16 < 1e-3);
    }

    #[test]
    #[should_panic(expected = "impractical")]
    fn oversized_group_rejected() {
        let pool = WeightPool::from_vectors(vec![vec![0.0; 16]]);
        LookupTable::build(&pool, 8, LutOrder::InputOriented);
    }

    #[test]
    fn boundary_bitwidths_accepted() {
        // 2 and 16 are the documented inclusive limits.
        let lo = LookupTable::build(&small_pool(), 2, LutOrder::InputOriented);
        let hi = LookupTable::build(&small_pool(), 16, LutOrder::WeightOriented);
        assert_eq!(lo.bits(), 2);
        assert_eq!(hi.bits(), 16);
        // A 2-bit symmetric quantizer has codes in [-1, 1].
        assert!(lo.codes().iter().all(|&c| (-1..=1).contains(&c)));
    }

    #[test]
    #[should_panic(expected = "lut bits must be in 2..=16")]
    fn zero_bits_rejected() {
        LookupTable::build(&small_pool(), 0, LutOrder::InputOriented);
    }

    #[test]
    #[should_panic(expected = "lut bits must be in 2..=16")]
    fn one_bit_rejected() {
        LookupTable::build(&small_pool(), 1, LutOrder::InputOriented);
    }

    #[test]
    #[should_panic(expected = "lut bits must be in 2..=16")]
    fn seventeen_bits_rejected() {
        LookupTable::build(&small_pool(), 17, LutOrder::InputOriented);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_vector_index_rejected() {
        let lut = LookupTable::build(&small_pool(), 8, LutOrder::InputOriented);
        lut.code(2, 0); // pool has 2 vectors
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pattern_rejected() {
        // Regression: in weight-oriented order, (s=0, m=num_patterns)
        // addresses a valid flat slot belonging to a *different* entry
        // (vector 1, pattern 0), so a debug-only check would silently alias
        // in release builds instead of failing.
        let lut = LookupTable::build(&small_pool(), 8, LutOrder::WeightOriented);
        lut.code(0, lut.num_patterns());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Quantized entries are within half a scale step of the exact dot.
        #[test]
        fn prop_entry_error_bounded(
            seed in 0u64..200,
            bits in prop::sample::select(vec![4u8, 8, 16]),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let vectors: Vec<Vec<f32>> = (0..4)
                .map(|_| (0..6).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                .collect();
            let pool = WeightPool::from_vectors(vectors);
            let lut = LookupTable::build(&pool, bits, LutOrder::InputOriented);
            for s in 0..pool.len() {
                for m in 0..lut.num_patterns() {
                    let exact = LookupTable::exact_dot(pool.vector(s), m as u32);
                    prop_assert!(
                        (lut.value(s, m) - exact).abs() <= lut.scale() * 0.5 + 1e-6
                    );
                }
            }
        }

        /// Dot-product linearity: entry(m1 | m2) = entry(m1) + entry(m2)
        /// for disjoint patterns (exactly, pre-quantization).
        #[test]
        fn prop_exact_dot_additive(m1 in 0u32..64, m2 in 0u32..64) {
            let v: Vec<f32> = (0..6).map(|i| (i as f32 * 0.37).sin()).collect();
            prop_assume!(m1 & m2 == 0);
            let a = LookupTable::exact_dot(&v, m1);
            let b = LookupTable::exact_dot(&v, m2);
            let ab = LookupTable::exact_dot(&v, m1 | m2);
            prop_assert!((a + b - ab).abs() < 1e-5);
        }
    }
}
