//! XY-dimension weight pooling: the Figure 4 baseline.
//!
//! Prior weight-sharing work (Son et al., 2018) clusters whole 2D
//! convolution kernels (e.g. 3×3 slices), optionally with a per-kernel
//! scaling coefficient fit by least squares. The paper benchmarks this
//! against its z-dimension pools in Figure 4; this module implements both
//! xy variants so the comparison can be regenerated.

use rand::Rng;
use wp_cluster::{DistanceMetric, KMeans};
use wp_tensor::Tensor;

use crate::PoolError;

/// A pool of shared 2D kernels (flattened `R×S` vectors).
#[derive(Debug, Clone, PartialEq)]
pub struct XyPool {
    vectors: Vec<Vec<f32>>,
    kernel: usize,
}

impl XyPool {
    /// Builds a pool by K-means over flattened kernels.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError`] if `samples` is empty or clustering fails.
    ///
    /// # Panics
    ///
    /// Panics if samples are not all `kernel²` long.
    pub fn build(
        samples: &[Vec<f32>],
        pool_size: usize,
        kernel: usize,
        rng: &mut impl Rng,
    ) -> Result<Self, PoolError> {
        if samples.is_empty() {
            return Err(PoolError::NoVectors);
        }
        assert!(
            samples.iter().all(|s| s.len() == kernel * kernel),
            "kernel samples must be {0}x{0}",
            kernel
        );
        let result =
            KMeans::new(pool_size, DistanceMetric::Euclidean).max_iters(50).fit(samples, rng)?;
        Ok(Self { vectors: result.centroids, kernel })
    }

    /// Number of shared kernels.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the pool is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Nearest pool kernel without scaling (plain Euclidean).
    pub fn assign_plain(&self, kernel: &[f32]) -> usize {
        wp_cluster::nearest(kernel, &self.vectors, DistanceMetric::Euclidean).0
    }

    /// Best `(index, coefficient)` pair minimizing `‖k − α·p‖²` where
    /// `α = (k·p)/(p·p)` per candidate.
    pub fn assign_scaled(&self, kernel: &[f32]) -> (usize, f32) {
        let mut best = (0usize, 0.0f32);
        let mut best_err = f32::INFINITY;
        for (s, p) in self.vectors.iter().enumerate() {
            let pp: f32 = p.iter().map(|v| v * v).sum();
            let alpha = if pp > 0.0 {
                kernel.iter().zip(p).map(|(a, b)| a * b).sum::<f32>() / pp
            } else {
                0.0
            };
            let err: f32 =
                kernel.iter().zip(p).map(|(a, b)| (a - alpha * b) * (a - alpha * b)).sum();
            if err < best_err {
                best_err = err;
                best = (s, alpha);
            }
        }
        best
    }

    /// The `s`-th shared kernel.
    pub fn vector(&self, s: usize) -> &[f32] {
        &self.vectors[s]
    }
}

/// Extracts every `kernel×kernel` 2D slice of a `[K, C, R, S]` weight
/// tensor as a flattened vector (c-major within filter).
///
/// # Panics
///
/// Panics if the weight is not rank 4 or its kernel does not match.
pub fn extract_xy_kernels(weight: &Tensor<f32>, kernel: usize) -> Vec<Vec<f32>> {
    let d = weight.dims();
    assert_eq!(d.len(), 4, "expected [K, C, R, S] weights");
    assert_eq!(d[2], kernel, "kernel height mismatch");
    assert_eq!(d[3], kernel, "kernel width mismatch");
    let mut out = Vec::with_capacity(d[0] * d[1]);
    for k in 0..d[0] {
        for c in 0..d[1] {
            let mut v = Vec::with_capacity(kernel * kernel);
            for r in 0..kernel {
                for s in 0..kernel {
                    v.push(weight.get4(k, c, r, s));
                }
            }
            out.push(v);
        }
    }
    out
}

/// Replaces every 2D kernel slice with its assigned pool kernel
/// (optionally scaled), in place. Returns the mean squared projection
/// error.
///
/// # Panics
///
/// Panics on shape mismatches (see [`extract_xy_kernels`]).
pub fn project_xy(weight: &mut Tensor<f32>, pool: &XyPool, with_coeff: bool) -> f64 {
    let d = weight.dims().to_vec();
    let kernel = pool.kernel();
    assert_eq!(d[2], kernel, "kernel mismatch");
    let mut err = 0.0f64;
    let mut n = 0usize;
    for k in 0..d[0] {
        for c in 0..d[1] {
            let mut v = Vec::with_capacity(kernel * kernel);
            for r in 0..kernel {
                for s in 0..kernel {
                    v.push(weight.get4(k, c, r, s));
                }
            }
            let (idx, alpha) =
                if with_coeff { pool.assign_scaled(&v) } else { (pool.assign_plain(&v), 1.0) };
            let p = pool.vector(idx);
            for r in 0..kernel {
                for s in 0..kernel {
                    let new = alpha * p[r * kernel + s];
                    err += ((v[r * kernel + s] - new) as f64).powi(2);
                    n += 1;
                    weight.set4(k, c, r, s, new);
                }
            }
        }
    }
    err / n.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn extract_kernels_flattens_rows() {
        let mut w = Tensor::<f32>::zeros(&[1, 2, 2, 2]);
        for (i, v) in w.data_mut().iter_mut().enumerate() {
            *v = i as f32;
        }
        let ks = extract_xy_kernels(&w, 2);
        assert_eq!(ks, vec![vec![0.0, 1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0, 7.0]]);
    }

    #[test]
    fn scaled_assignment_finds_scaled_match() {
        // Pool has direction [1, 0]; kernel 5*[1, 0] should be recovered
        // exactly with a coefficient.
        let pool =
            XyPool { vectors: vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 1.0, 0.0, 0.0]], kernel: 2 };
        let (idx, alpha) = pool.assign_scaled(&[5.0, 0.0, 0.0, 0.0]);
        assert_eq!(idx, 0);
        assert!((alpha - 5.0).abs() < 1e-6);
    }

    #[test]
    fn plain_assignment_ignores_scale() {
        let pool =
            XyPool { vectors: vec![vec![1.0, 0.0, 0.0, 0.0], vec![4.0, 0.0, 0.0, 0.0]], kernel: 2 };
        // 5*[1,0..] is closer to [4,0..] in Euclidean distance.
        assert_eq!(pool.assign_plain(&[5.0, 0.0, 0.0, 0.0]), 1);
    }

    #[test]
    fn project_scaled_beats_plain() {
        // Kernels at many scales of few directions: coefficients matter.
        let mut r = rng(0);
        let mut samples = Vec::new();
        for _ in 0..60 {
            let scale: f32 = r.gen_range(0.1..3.0);
            let dir = if r.gen_bool(0.5) {
                vec![1.0, 0.0, 0.5, 0.0, 1.0, 0.0, 0.5, 0.0, 1.0]
            } else {
                vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0]
            };
            samples.push(dir.iter().map(|v| v * scale).collect());
        }
        let pool = XyPool::build(&samples, 4, 3, &mut r).unwrap();

        let mut w_plain = Tensor::<f32>::zeros(&[4, 15, 3, 3]);
        for (i, v) in w_plain.data_mut().iter_mut().enumerate() {
            let s = &samples[i / 9 % samples.len()];
            *v = s[i % 9];
        }
        let mut w_scaled = w_plain.clone();
        let err_plain = project_xy(&mut w_plain, &pool, false);
        let err_scaled = project_xy(&mut w_scaled, &pool, true);
        assert!(err_scaled <= err_plain + 1e-9, "scaled {err_scaled} worse than plain {err_plain}");
    }

    #[test]
    fn empty_samples_error() {
        let mut r = rng(1);
        assert!(matches!(XyPool::build(&[], 4, 3, &mut r), Err(PoolError::NoVectors)));
    }

    #[test]
    fn project_exact_pool_member_zero_error() {
        let sample = vec![0.5f32; 9];
        let pool = XyPool { vectors: vec![sample.clone()], kernel: 3 };
        let mut w = Tensor::<f32>::zeros(&[1, 1, 3, 3]);
        w.data_mut().copy_from_slice(&sample);
        let err = project_xy(&mut w, &pool, false);
        assert!(err < 1e-12);
    }
}
