//! Model-level compression: pool building, projection and straight-through
//! fine-tuning (paper Figure 2).

use crate::grouping::{extract_z_vectors, is_groupable, write_z_vectors};
use crate::{PoolConfig, PoolError, WeightPool};
use rand::Rng;
use wp_nn::train::{Batch, EpochStats};
use wp_nn::{Conv2d, Sequential, Sgd, SoftmaxCrossEntropy};

/// Visits every standard conv with its traversal position. All passes of
/// the pipeline (collection, projection, index extraction, simulation
/// installation) use this same traversal, so positions are stable
/// identifiers for convs.
pub fn for_each_conv_indexed(model: &mut Sequential, mut f: impl FnMut(usize, &mut Conv2d)) {
    let mut pos = 0usize;
    model.visit_convs(&mut |conv| {
        f(pos, conv);
        pos += 1;
    });
}

/// Whether the conv at `pos` is compressed under `cfg`: the first conv is
/// skipped when configured (the paper keeps it uncompressed), and layers
/// whose depth is not a multiple of the group size are kept (paper §3:
/// "we choose to keep such layers uncompressed").
pub fn is_compressible(pos: usize, conv: &Conv2d, cfg: &PoolConfig) -> bool {
    if cfg.skip_first_conv && pos == 0 {
        return false;
    }
    is_groupable(conv.in_channels(), cfg.group_size)
}

/// Collects the z-vectors of every compressible conv, in traversal order.
pub fn collect_vectors(model: &mut Sequential, cfg: &PoolConfig) -> Vec<Vec<f32>> {
    let mut out = Vec::new();
    for_each_conv_indexed(model, |pos, conv| {
        if is_compressible(pos, conv, cfg) {
            out.extend(extract_z_vectors(conv.weight(), cfg.group_size));
        }
    });
    out
}

/// Builds a weight pool by clustering the model's z-vectors.
///
/// # Errors
///
/// Returns [`PoolError`] if no layer is compressible or clustering fails.
pub fn build_pool(
    model: &mut Sequential,
    cfg: &PoolConfig,
    rng: &mut impl Rng,
) -> Result<WeightPool, PoolError> {
    let vectors = collect_vectors(model, cfg);
    WeightPool::build(&vectors, cfg, rng)
}

/// Statistics from projecting a model onto a pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectionStats {
    /// Convs that were projected.
    pub layers_compressed: usize,
    /// Convs left untouched.
    pub layers_skipped: usize,
    /// Total vectors replaced.
    pub vectors_replaced: usize,
    /// Mean squared weight perturbation introduced by the projection.
    pub mse: f64,
}

/// Replaces every compressible conv's weights with their nearest pool
/// vectors, in place.
///
/// # Panics
///
/// Panics if the pool's group size differs from `cfg.group_size`.
pub fn project(model: &mut Sequential, pool: &WeightPool, cfg: &PoolConfig) -> ProjectionStats {
    assert_eq!(pool.group_size(), cfg.group_size, "pool/group size mismatch");
    let mut stats =
        ProjectionStats { layers_compressed: 0, layers_skipped: 0, vectors_replaced: 0, mse: 0.0 };
    let mut err_acc = 0.0f64;
    let mut err_n = 0usize;
    for_each_conv_indexed(model, |pos, conv| {
        if !is_compressible(pos, conv, cfg) {
            stats.layers_skipped += 1;
            return;
        }
        let vectors = extract_z_vectors(conv.weight(), cfg.group_size);
        let mut replaced = Vec::with_capacity(vectors.len());
        for v in &vectors {
            let p = pool.vector(pool.assign(v, cfg.metric));
            for (a, b) in v.iter().zip(p) {
                err_acc += ((a - b) as f64).powi(2);
                err_n += 1;
            }
            replaced.push(p.to_vec());
        }
        stats.vectors_replaced += replaced.len();
        write_z_vectors(conv.weight_mut(), cfg.group_size, &replaced);
        stats.layers_compressed += 1;
    });
    stats.mse = if err_n > 0 { err_acc / err_n as f64 } else { 0.0 };
    stats
}

/// Extracts the pool-index map of every conv (in traversal order):
/// `Some(indices)` in canonical grouping order for compressed layers,
/// `None` for skipped ones.
///
/// # Panics
///
/// Panics if the pool has more than 256 vectors (indices are stored as
/// bytes, as a deployed network would).
pub fn index_maps(
    model: &mut Sequential,
    pool: &WeightPool,
    cfg: &PoolConfig,
) -> Vec<Option<Vec<u8>>> {
    assert!(pool.len() <= 256, "u8 indices require pool size <= 256");
    let mut out = Vec::new();
    for_each_conv_indexed(model, |pos, conv| {
        if !is_compressible(pos, conv, cfg) {
            out.push(None);
            return;
        }
        let vectors = extract_z_vectors(conv.weight(), cfg.group_size);
        let indices: Vec<u8> = vectors.iter().map(|v| pool.assign(v, cfg.metric) as u8).collect();
        out.push(Some(indices));
    });
    out
}

/// Snapshot of the compressible convs' weights (the "latent" weights of
/// straight-through fine-tuning).
fn snapshot_weights(model: &mut Sequential, cfg: &PoolConfig) -> Vec<Option<Vec<f32>>> {
    let mut out = Vec::new();
    for_each_conv_indexed(model, |pos, conv| {
        if is_compressible(pos, conv, cfg) {
            out.push(Some(conv.weight().data().to_vec()));
        } else {
            out.push(None);
        }
    });
    out
}

/// Restores weights captured by [`snapshot_weights`].
fn restore_weights(model: &mut Sequential, saved: &[Option<Vec<f32>>]) {
    for_each_conv_indexed(model, |pos, conv| {
        if let Some(Some(w)) = saved.get(pos) {
            conv.weight_mut().data_mut().copy_from_slice(w);
        }
    });
}

/// One epoch of straight-through fine-tuning against a **fixed** pool
/// (paper §3: "the backward pass updates the network weights and the
/// forward pass reassigns indices").
///
/// Per batch: weights are projected onto the pool for the forward/backward
/// pass, then the latent (unprojected) weights receive the gradient update.
/// Call [`project`] once after the final epoch to leave the model in its
/// deployable pool-constrained state.
pub fn finetune_epoch(
    model: &mut Sequential,
    pool: &WeightPool,
    cfg: &PoolConfig,
    opt: &mut Sgd,
    batches: &[Batch],
) -> EpochStats {
    assert!(!batches.is_empty(), "no fine-tuning batches supplied");
    let mut total_loss = 0.0f64;
    let mut correct = 0usize;
    let mut seen = 0usize;
    for batch in batches {
        let latent = snapshot_weights(model, cfg);
        project(model, pool, cfg);
        let logits = model.forward(&batch.images, true);
        let out = SoftmaxCrossEntropy::compute(&logits, &batch.labels);
        model.backward(&out.grad);
        restore_weights(model, &latent);
        opt.step(model);
        total_loss += out.loss as f64;
        correct += out.correct;
        seen += batch.len();
    }
    EpochStats {
        loss: (total_loss / batches.len() as f64) as f32,
        accuracy: correct as f32 / seen as f32,
    }
}

/// Runs `epochs` of straight-through fine-tuning and leaves the model
/// projected onto the pool. Returns per-epoch statistics.
pub fn finetune(
    model: &mut Sequential,
    pool: &WeightPool,
    cfg: &PoolConfig,
    opt: &mut Sgd,
    batches: &[Batch],
    epochs: usize,
) -> Vec<EpochStats> {
    let mut stats = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        stats.push(finetune_epoch(model, pool, cfg, opt, batches));
    }
    project(model, pool, cfg);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wp_cluster::DistanceMetric;
    use wp_nn::{BasicBlock, Relu};
    use wp_tensor::Tensor;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn toy_model(r: &mut rand::rngs::StdRng) -> Sequential {
        let mut net = Sequential::new();
        net.push(Conv2d::new(3, 8, 3, 1, 1, r)); // first conv: skipped
        net.push(Relu::new());
        net.push(Conv2d::new(8, 16, 3, 1, 1, r)); // compressed
        net.push(Conv2d::new(16, 16, 1, 1, 0, r)); // compressed (1x1)
        net
    }

    #[test]
    fn first_conv_skipped_by_default() {
        let mut r = rng(0);
        let mut net = toy_model(&mut r);
        let cfg = PoolConfig::new(4).group_size(8);
        let mut flags = Vec::new();
        for_each_conv_indexed(&mut net, |pos, conv| {
            flags.push(is_compressible(pos, conv, &cfg));
        });
        assert_eq!(flags, vec![false, true, true]);
    }

    #[test]
    fn indivisible_depth_skipped() {
        let mut r = rng(1);
        let mut net = Sequential::new();
        net.push(Conv2d::new(8, 6, 3, 1, 1, &mut r));
        net.push(Conv2d::new(6, 8, 3, 1, 1, &mut r)); // 6 % 8 != 0
        let cfg = PoolConfig::new(4).group_size(8).skip_first_conv(false);
        let mut flags = Vec::new();
        for_each_conv_indexed(&mut net, |pos, conv| {
            flags.push(is_compressible(pos, conv, &cfg));
        });
        assert_eq!(flags, vec![true, false]);
    }

    #[test]
    fn collect_counts_vectors() {
        let mut r = rng(2);
        let mut net = toy_model(&mut r);
        let cfg = PoolConfig::new(4).group_size(8);
        let vs = collect_vectors(&mut net, &cfg);
        // conv2: 16 filters x 1 group x 9 taps = 144; conv3: 16 x 2 x 1 = 32.
        assert_eq!(vs.len(), 144 + 32);
        assert!(vs.iter().all(|v| v.len() == 8));
    }

    #[test]
    fn project_zero_error_when_pool_holds_all_vectors() {
        let mut r = rng(3);
        let mut net = Sequential::new();
        net.push(Conv2d::new(8, 2, 1, 1, 0, &mut r));
        let cfg = PoolConfig::new(2).group_size(8).skip_first_conv(false);
        let vs = collect_vectors(&mut net, &cfg);
        let pool = WeightPool::from_vectors(vs);
        let stats = project(&mut net, &pool, &cfg);
        assert!(stats.mse < 1e-10, "mse {}", stats.mse);
        assert_eq!(stats.layers_compressed, 1);
        assert_eq!(stats.vectors_replaced, 2);
    }

    #[test]
    fn project_makes_weights_pool_members() {
        let mut r = rng(4);
        let mut net = toy_model(&mut r);
        let cfg = PoolConfig::new(4).group_size(8).metric(DistanceMetric::Euclidean);
        let pool = build_pool(&mut net, &cfg, &mut r).unwrap();
        project(&mut net, &pool, &cfg);
        // Every z-vector of compressed layers must now be a pool member.
        for_each_conv_indexed(&mut net, |pos, conv| {
            if pos == 0 {
                return;
            }
            for v in extract_z_vectors(conv.weight(), 8) {
                let best = pool.vector(pool.assign(&v, DistanceMetric::Euclidean));
                for (a, b) in v.iter().zip(best) {
                    assert!((a - b).abs() < 1e-6);
                }
            }
        });
    }

    #[test]
    fn index_maps_align_with_projection() {
        let mut r = rng(5);
        let mut net = toy_model(&mut r);
        let cfg = PoolConfig::new(4).group_size(8).metric(DistanceMetric::Euclidean);
        let pool = build_pool(&mut net, &cfg, &mut r).unwrap();
        let maps = index_maps(&mut net, &pool, &cfg);
        assert_eq!(maps.len(), 3);
        assert!(maps[0].is_none());
        assert_eq!(maps[1].as_ref().unwrap().len(), 144);
        assert_eq!(maps[2].as_ref().unwrap().len(), 32);
        // After projection the index maps must be unchanged (projection is
        // idempotent with respect to assignment).
        project(&mut net, &pool, &cfg);
        let maps2 = index_maps(&mut net, &pool, &cfg);
        assert_eq!(maps, maps2);
    }

    #[test]
    fn finetune_improves_or_maintains_projected_loss() {
        use wp_nn::train::Batch;
        let mut r = rng(6);
        let mut net = Sequential::new();
        net.push(Conv2d::new(3, 8, 3, 1, 1, &mut r));
        net.push(Relu::new());
        net.push(Conv2d::new(8, 8, 3, 1, 1, &mut r));
        net.push(wp_nn::GlobalAvgPool::new());
        net.push(wp_nn::Dense::new(8, 2, &mut r));

        // Tiny synthetic 2-class batch set.
        let mut batches = Vec::new();
        for i in 0..4 {
            let mut imgs = Tensor::<f32>::zeros(&[4, 3, 6, 6]);
            wp_tensor::fill_uniform(&mut imgs, -1.0, 1.0, &mut r);
            // Bias class-0 images positive, class-1 negative.
            let labels: Vec<usize> = (0..4).map(|j| (i + j) % 2).collect();
            for (j, &l) in labels.iter().enumerate() {
                let sign = if l == 0 { 1.0 } else { -1.0 };
                for c in 0..3 {
                    for y in 0..6 {
                        for x in 0..6 {
                            let v = imgs.get4(j, c, y, x);
                            imgs.set4(j, c, y, x, v + sign * 0.8);
                        }
                    }
                }
            }
            batches.push(Batch::new(imgs, labels));
        }

        let cfg = PoolConfig::new(8).group_size(8).metric(DistanceMetric::Euclidean);
        let pool = build_pool(&mut net, &cfg, &mut r).unwrap();
        let mut opt = Sgd::new(0.05).momentum(0.9);
        let stats = finetune(&mut net, &pool, &cfg, &mut opt, &batches, 8);
        assert!(
            stats.last().unwrap().loss <= stats.first().unwrap().loss,
            "fine-tuning increased loss: {stats:?}"
        );
        // Model must end projected: all vectors are pool members.
        for_each_conv_indexed(&mut net, |pos, conv| {
            if pos == 0 {
                return;
            }
            for v in extract_z_vectors(conv.weight(), 8) {
                let p = pool.vector(pool.assign(&v, cfg.metric));
                for (a, b) in v.iter().zip(p) {
                    assert!((a - b).abs() < 1e-6);
                }
            }
        });
    }

    #[test]
    fn traverses_composite_blocks() {
        let mut r = rng(7);
        let mut net = Sequential::new();
        net.push(Conv2d::new(3, 8, 3, 1, 1, &mut r));
        net.push(BasicBlock::new(8, 8, 1, &mut r));
        let cfg = PoolConfig::new(4).group_size(8);
        let vs = collect_vectors(&mut net, &cfg);
        // Block convs: 2 layers x 8 filters x 1 group x 9 taps = 144.
        assert_eq!(vs.len(), 144);
    }
}
