//! Weight pools: the paper's core contribution.
//!
//! This crate implements the full compression-side pipeline of
//! *Bit-serial Weight Pools* (MLSys 2022) plus the reference numerics of the
//! bit-serial lookup-table execution:
//!
//! * [`grouping`] — z-dimension grouping of conv weights into 1×G vectors
//!   along the channel axis (Figure 3);
//! * [`WeightPool`] / [`PoolConfig`] — K-means pool generation with the
//!   paper's cosine metric (§3), plus the xy-dimension (whole 3×3 kernel)
//!   pooling baseline with optional scaling coefficients (Figure 4);
//! * [`LookupTable`] — per-pool-vector dot products against all `2^G`
//!   activation bit patterns, quantized to 4/8/16 bits, in input- or
//!   weight-oriented memory order (§3.2, §4.2);
//! * [`compress`] — projecting a trained `wp-nn` model onto a pool and the
//!   straight-through fine-tuning loop (Figure 2);
//! * [`simulate`] — inference-time overrides that execute the bit-serial
//!   LUT arithmetic inside a float model, reproducing the paper's accuracy
//!   simulation methodology (Tables 5/6);
//! * [`reference`](crate::reference) — exact integer semantics of the bit-serial kernel that
//!   the instrumented MCU kernels in `wp-kernels` must match bit-for-bit;
//! * [`compression`] — storage accounting: Eq. 4 and the per-network
//!   compression ratios of Table 3;
//! * [`netspec`] — architecture shape descriptions shared by the storage
//!   accounting and the runtime simulator.
//!
//! # Example: compress a model and read its pool
//!
//! ```
//! use wp_core::{PoolConfig, compress};
//! use wp_nn::{Sequential, Conv2d};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = Sequential::new();
//! net.push(Conv2d::new(3, 16, 3, 1, 1, &mut rng));  // first conv: kept
//! net.push(Conv2d::new(16, 16, 3, 1, 1, &mut rng)); // compressed
//! let cfg = PoolConfig::new(8).group_size(8);
//! let pool = compress::build_pool(&mut net, &cfg, &mut rng)?;
//! assert_eq!(pool.len(), 8);
//! # Ok::<(), wp_core::PoolError>(())
//! ```

pub mod compress;
pub mod compression;
pub mod deploy;
pub mod fc_pool;
pub mod grouping;
mod lut;
pub mod netspec;
mod pool;
pub mod reference;
pub mod simulate;
pub mod xy_pool;

pub use lut::{LookupTable, LutOrder};
pub use pool::{PoolConfig, PoolError, WeightPool};
