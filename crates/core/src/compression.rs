//! Storage accounting: Eq. 4 and the Table 3 compression ratios.

use crate::netspec::NetSpec;
use serde::{Deserialize, Serialize};

/// Storage-side compression configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressionConfig {
    /// Pool size `S`.
    pub pool_size: usize,
    /// Group size `N` (vector length).
    pub group_size: usize,
    /// Lookup-table entry bitwidth `Bl`.
    pub lut_bits: u32,
    /// Bits per stored index. The minimum is `log2 S`, but byte-addressable
    /// implementations use 8 (paper §3.2); 8 also reproduces Table 3.
    pub index_bits: u32,
    /// Baseline weight bitwidth `Bw` (8 in the paper).
    pub baseline_bits: u32,
}

impl CompressionConfig {
    /// The paper's defaults: `S = pool_size`, group 8, 8-bit LUT, 8-bit
    /// indices, 8-bit baseline.
    pub fn paper_default(pool_size: usize) -> Self {
        Self { pool_size, group_size: 8, lut_bits: 8, index_bits: 8, baseline_bits: 8 }
    }

    /// Lookup-table storage in bits, `2^N × S × Bl` (Eq. 3).
    pub fn lut_storage_bits(&self) -> u64 {
        (1u64 << self.group_size) * self.pool_size as u64 * self.lut_bits as u64
    }
}

/// Detailed storage breakdown for one network under one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageReport {
    /// Network name.
    pub name: String,
    /// Total weights (conv + depthwise + dense).
    pub total_weights: u64,
    /// Standard-conv weights only (the paper's "Total param" column).
    pub conv_weights: u64,
    /// Weights replaced by pool indices.
    pub compressed_weights: u64,
    /// Baseline storage in bits (`total × Bw`).
    pub baseline_bits: u64,
    /// Bits spent on indices.
    pub index_bits_total: u64,
    /// Bits spent on the lookup table.
    pub lut_bits_total: u64,
    /// Bits spent on weights kept at baseline precision.
    pub uncompressed_weight_bits: u64,
    /// Total compressed storage in bits.
    pub compressed_bits: u64,
    /// `baseline_bits / compressed_bits`.
    pub compression_ratio: f64,
    /// `lut_bits_total / compressed_bits` (the paper's "LUT overhead").
    pub lut_overhead: f64,
}

/// Computes the storage breakdown of `spec` under `cfg`.
///
/// Each compressed weight group of `N` weights becomes one `index_bits`
/// index; uncompressed weights stay at `baseline_bits`; one network-wide
/// LUT is added. Biases and batch-norm parameters are excluded on both
/// sides, matching the paper's parameter accounting (its ResNet totals are
/// conv weights only).
///
/// # Panics
///
/// Panics if a compressed layer's weight count is not divisible by the
/// group size.
pub fn storage_report(spec: &NetSpec, cfg: &CompressionConfig) -> StorageReport {
    let p = spec.params();
    let compressed = p.compressed();
    assert_eq!(
        compressed % cfg.group_size as u64,
        0,
        "compressed weights not divisible by group size"
    );
    let baseline_bits = p.total() * cfg.baseline_bits as u64;
    let index_bits_total = compressed / cfg.group_size as u64 * cfg.index_bits as u64;
    let lut_bits_total = cfg.lut_storage_bits();
    let uncompressed_weight_bits = p.uncompressed() * cfg.baseline_bits as u64;
    let compressed_bits = index_bits_total + lut_bits_total + uncompressed_weight_bits;

    StorageReport {
        name: spec.name.clone(),
        total_weights: p.total(),
        conv_weights: p.conv,
        compressed_weights: compressed,
        baseline_bits,
        index_bits_total,
        lut_bits_total,
        uncompressed_weight_bits,
        compressed_bits,
        compression_ratio: baseline_bits as f64 / compressed_bits as f64,
        lut_overhead: lut_bits_total as f64 / compressed_bits as f64,
    }
}

/// The paper's Eq. 4: maximum compression ratio when **all** `w` weights
/// are pooled, with minimum-width (`log2 S`) indices.
pub fn theoretical_cr(
    w: u64,
    weight_bits: u32,
    group: usize,
    pool_size: usize,
    lut_bits: u32,
) -> f64 {
    let idx_bits = (pool_size as f64).log2();
    let numerator = (w * weight_bits as u64) as f64;
    let denominator = w as f64 / group as f64 * idx_bits
        + ((1u64 << group) * pool_size as u64 * lut_bits as u64) as f64;
    numerator / denominator
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netspec::{ConvSpec, LayerSpec};

    fn conv(in_ch: usize, out_ch: usize, kernel: usize, compressed: bool) -> LayerSpec {
        LayerSpec::Conv(ConvSpec { in_ch, out_ch, kernel, stride: 1, pad: kernel / 2, compressed })
    }

    /// A net with 8192 compressible weights and a 1024-weight first layer.
    fn small_net() -> NetSpec {
        NetSpec {
            name: "t".into(),
            input: (8, 8, 8),
            classes: 4,
            layers: vec![
                conv(8, 16, 3, false), // 1152 weights, kept
                conv(16, 16, 3, true), // 2304 weights, pooled
                LayerSpec::GlobalAvgPool,
                LayerSpec::Dense { in_features: 16, out_features: 4, compressed: false },
            ],
        }
    }

    #[test]
    fn report_bit_arithmetic() {
        let cfg = CompressionConfig::paper_default(64);
        let r = storage_report(&small_net(), &cfg);
        assert_eq!(r.total_weights, 1152 + 2304 + 64);
        assert_eq!(r.compressed_weights, 2304);
        assert_eq!(r.index_bits_total, 2304 / 8 * 8);
        assert_eq!(r.lut_bits_total, 256 * 64 * 8);
        assert_eq!(r.uncompressed_weight_bits, (1152 + 64) * 8);
        assert_eq!(
            r.compressed_bits,
            r.index_bits_total + r.lut_bits_total + r.uncompressed_weight_bits
        );
        let cr = r.baseline_bits as f64 / r.compressed_bits as f64;
        assert!((r.compression_ratio - cr).abs() < 1e-12);
    }

    #[test]
    fn eq4_approaches_8x_for_huge_networks() {
        // With 8-bit weights, group 8, as W → ∞ the ratio tends to
        // 8 / (log2 S / 8) ... with log2(64)=6: 8/(6/8) = 10.67 (ideal
        // indices). The paper's 8× uses byte indices; Eq. 4's limit is the
        // idealized bound.
        let cr = theoretical_cr(1_000_000_000, 8, 8, 64, 8);
        assert!((cr - 8.0 / (6.0 / 8.0)).abs() < 0.1, "cr = {cr}");
    }

    #[test]
    fn lut_dominates_small_networks() {
        let cfg = CompressionConfig::paper_default(64);
        let r = storage_report(&small_net(), &cfg);
        // 16 kB LUT vs ~3.5 kB of everything else.
        assert!(r.lut_overhead > 0.5, "overhead {}", r.lut_overhead);
        assert!(r.compression_ratio < 2.0);
    }

    #[test]
    fn bigger_pool_means_bigger_lut() {
        let a = CompressionConfig::paper_default(32).lut_storage_bits();
        let b = CompressionConfig::paper_default(64).lut_storage_bits();
        assert_eq!(b, 2 * a);
    }

    #[test]
    fn paper_lut_example_16kb() {
        // §3.2: 64 vectors, 8-element, 8-bit results => 16 kB.
        let cfg = CompressionConfig::paper_default(64);
        assert_eq!(cfg.lut_storage_bits() / 8, 16 * 1024);
    }

    #[test]
    fn uncompressed_network_ratio_below_one() {
        // Compressing nothing still pays for the LUT.
        let mut net = small_net();
        if let LayerSpec::Conv(ref mut c) = net.layers[1] {
            c.compressed = false;
        }
        let r = storage_report(&net, &CompressionConfig::paper_default(64));
        assert!(r.compression_ratio < 1.0);
    }
}
