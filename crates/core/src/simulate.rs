//! Inference-time simulation of the bit-serial lookup-table implementation.
//!
//! The paper evaluates LUT-bitwidth and activation-bitwidth accuracy by
//! simulating the bit-serial implementation inside the training framework
//! (§5.3.2). This module does the same: a [`BitSerialSim`] is installed as
//! a [`ConvOverride`] on each compressed convolution, and at eval time it
//! quantizes its input activations, runs the **exact integer reference
//! semantics** ([`crate::reference`]) against the quantized LUT, and
//! rescales the accumulators back to floats for the rest of the network.
//!
//! Activation ranges are calibrated per conv by an observe pass (the
//! override records its own input samples, then an iterative clip search
//! picks the range — §5.3.3). Signed inputs (MobileNet-v2's linear
//! bottlenecks) switch that conv to a two's-complement bit decomposition.

use crate::compress::{for_each_conv_indexed, index_maps};
use crate::reference::{bitserial_conv_acc, ActEncoding, PooledConvShape};
use crate::{LookupTable, PoolConfig, WeightPool};
use std::cell::RefCell;
use std::rc::Rc;
use wp_nn::train::Batch;
use wp_nn::{Conv2d, ConvOverride, Sequential};
use wp_quant::{search_unsigned_clip, QuantParams, UnsignedQuantParams};
use wp_tensor::Tensor;

/// What a [`BitSerialSim`] does on forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// Run the plain float convolution (overrides effectively disabled).
    Bypass,
    /// Run the float convolution but record input samples for calibration.
    Observe,
    /// Run the bit-serial LUT arithmetic.
    Simulate,
}

/// Calibrated activation quantizer for one conv input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActParams {
    /// Post-ReLU inputs: unsigned codes, every bit weight positive.
    Unsigned(UnsignedQuantParams),
    /// Signed inputs: two's-complement codes, MSB weight negative.
    Signed(QuantParams),
}

impl ActParams {
    /// The quantization scale.
    pub fn scale(&self) -> f32 {
        match self {
            ActParams::Unsigned(p) => p.scale(),
            ActParams::Signed(p) => p.scale(),
        }
    }

    /// The bit encoding this parameterization implies.
    pub fn encoding(&self) -> ActEncoding {
        match self {
            ActParams::Unsigned(_) => ActEncoding::Unsigned,
            ActParams::Signed(_) => ActEncoding::SignedTwosComplement,
        }
    }

    /// Quantizes one value to a code valid for `bits`-bit decomposition.
    #[inline]
    pub fn quantize(&self, v: f32) -> i32 {
        match self {
            ActParams::Unsigned(p) => p.quantize(v) as i32,
            ActParams::Signed(p) => p.quantize(v),
        }
    }

    /// Re-derives the parameters at a new bitwidth, keeping the calibrated
    /// clip range.
    pub fn with_bits(&self, bits: u8) -> ActParams {
        match self {
            ActParams::Unsigned(p) => ActParams::Unsigned(p.with_bits(bits)),
            ActParams::Signed(p) => {
                let max_abs = p.scale() * p.qmax() as f32;
                ActParams::Signed(QuantParams::symmetric_from_max_abs(max_abs, bits))
            }
        }
    }
}

#[derive(Debug)]
struct SimState {
    mode: SimMode,
    act_bits: u8,
    act_params: Option<ActParams>,
    samples: Vec<f32>,
    max_samples: usize,
    indices: Vec<u8>,
    lut: Rc<LookupTable>,
    /// When set, partial dot products use exact float values instead of the
    /// quantized LUT (isolates activation-quantization effects).
    exact_pool: Option<Rc<WeightPool>>,
}

/// The per-conv bit-serial simulation override. Create via
/// [`SimInstallation::install`].
#[derive(Debug)]
pub struct BitSerialSim {
    state: RefCell<SimState>,
}

impl BitSerialSim {
    /// Sets the mode.
    pub fn set_mode(&self, mode: SimMode) {
        self.state.borrow_mut().mode = mode;
    }

    /// Current mode.
    pub fn mode(&self) -> SimMode {
        self.state.borrow().mode
    }

    /// Number of recorded calibration samples.
    pub fn sample_count(&self) -> usize {
        self.state.borrow().samples.len()
    }

    /// Calibrated activation parameters, if any.
    pub fn act_params(&self) -> Option<ActParams> {
        self.state.borrow().act_params
    }

    /// Finalizes calibration: picks unsigned clip-searched or signed
    /// symmetric parameters from the recorded samples.
    ///
    /// # Panics
    ///
    /// Panics if no samples were recorded.
    pub fn finalize(&self, search_steps: usize) {
        let mut s = self.state.borrow_mut();
        assert!(!s.samples.is_empty(), "finalize without calibration samples");
        let has_negative = s.samples.iter().any(|&v| v < -1e-6);
        let params = if has_negative {
            let max_abs = s.samples.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            ActParams::Signed(QuantParams::symmetric_from_max_abs(max_abs, s.act_bits.max(2)))
        } else {
            ActParams::Unsigned(search_unsigned_clip(&s.samples, s.act_bits, search_steps).params)
        };
        s.act_params = Some(params);
        s.samples.clear();
    }

    /// Changes the activation bitwidth, preserving the calibrated range.
    ///
    /// # Panics
    ///
    /// Panics if called before [`BitSerialSim::finalize`].
    pub fn set_act_bits(&self, bits: u8) {
        let mut s = self.state.borrow_mut();
        s.act_bits = bits;
        let p = s.act_params.expect("set_act_bits before calibration");
        s.act_params =
            Some(p.with_bits(if matches!(p, ActParams::Signed(_)) { bits.max(2) } else { bits }));
    }

    fn record_samples(&self, input: &Tensor<f32>) {
        let mut s = self.state.borrow_mut();
        let remaining = s.max_samples.saturating_sub(s.samples.len());
        if remaining == 0 {
            return;
        }
        let stride = (input.len() / remaining).max(1);
        let vals: Vec<f32> = input.data().iter().step_by(stride).take(remaining).copied().collect();
        s.samples.extend(vals);
    }

    fn simulate(&self, conv: &Conv2d, input: &Tensor<f32>) -> Tensor<f32> {
        let s = self.state.borrow();
        let params = s.act_params.expect("Simulate mode without calibrated params");
        let d = input.dims();
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let shape = PooledConvShape {
            in_ch: c,
            out_ch: conv.out_channels(),
            kernel: conv.kernel(),
            stride: conv.stride(),
            pad: conv.pad(),
            in_h: h,
            in_w: w,
        };
        let geo = shape.geometry();
        let (oh, ow) = (geo.out_h(), geo.out_w());
        let mut out = Tensor::<f32>::zeros(&[n, shape.out_ch, oh, ow]);
        let bias = conv.bias().data();
        let act_scale = params.scale();
        let plane = c * h * w;

        for b in 0..n {
            let codes: Vec<i32> = input.data()[b * plane..(b + 1) * plane]
                .iter()
                .map(|&v| params.quantize(v))
                .collect();
            let rescale: Vec<f32> = if let Some(pool) = &s.exact_pool {
                // Exact partial dot products (no LUT quantization).
                exact_bitserial(&codes, &shape, &s.indices, pool, s.act_bits, params.encoding())
                    .into_iter()
                    .map(|acc| acc as f32 * act_scale)
                    .collect()
            } else {
                bitserial_conv_acc(
                    &codes,
                    &shape,
                    &s.indices,
                    &s.lut,
                    s.act_bits,
                    params.encoding(),
                )
                .into_iter()
                .map(|acc| acc as f32 * s.lut.scale() * act_scale)
                .collect()
            };
            let odata = out.data_mut();
            let out_plane = shape.out_ch * oh * ow;
            for k in 0..shape.out_ch {
                for p in 0..oh * ow {
                    odata[b * out_plane + k * oh * ow + p] = rescale[k * oh * ow + p] + bias[k];
                }
            }
        }
        out
    }
}

/// Exact-value bit-serial accumulation (float partial dot products),
/// returned in units of the activation scale.
fn exact_bitserial(
    codes: &[i32],
    shape: &PooledConvShape,
    indices: &[u8],
    pool: &WeightPool,
    act_bits: u8,
    encoding: ActEncoding,
) -> Vec<f64> {
    let g = pool.group_size();
    let groups = shape.groups(g);
    let geo = shape.geometry();
    let (oh, ow) = (geo.out_h(), geo.out_w());
    let mut out = vec![0.0f64; shape.out_ch * oh * ow];
    for k in 0..shape.out_ch {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f64;
                for grp in 0..groups {
                    for ky in 0..shape.kernel {
                        for kx in 0..shape.kernel {
                            let (iy, ix) = match (geo.input_row(oy, ky), geo.input_col(ox, kx)) {
                                (Some(y), Some(x)) => (y, x),
                                _ => continue,
                            };
                            let idx = indices[crate::grouping::vector_position(
                                k,
                                grp,
                                ky,
                                kx,
                                groups,
                                shape.kernel,
                                shape.kernel,
                            )] as usize;
                            let v = pool.vector(idx);
                            for j in 0..act_bits {
                                let mut m = 0u32;
                                for i in 0..g {
                                    let code =
                                        codes[((grp * g + i) * shape.in_h + iy) * shape.in_w + ix];
                                    m |= (((code >> j) & 1) as u32) << i;
                                }
                                acc += encoding.bit_weight(j, act_bits) as f64
                                    * LookupTable::exact_dot(v, m) as f64;
                            }
                        }
                    }
                }
                out[(k * oh + oy) * ow + ox] = acc;
            }
        }
    }
    out
}

/// Plain float convolution used for Bypass/Observe modes (overrides cannot
/// call the conv's own forward).
fn float_conv(conv: &Conv2d, input: &Tensor<f32>) -> Tensor<f32> {
    let d = input.dims();
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let geo = conv.geometry_for(h, w);
    let (oh, ow) = (geo.out_h(), geo.out_w());
    let k_sz = conv.kernel();
    let kc = conv.out_channels();
    let mut out = Tensor::<f32>::zeros(&[n, kc, oh, ow]);
    let wdat = conv.weight().data();
    let bdat = conv.bias().data();
    for b in 0..n {
        for f in 0..kc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bdat[f];
                    for ch in 0..c {
                        for ky in 0..k_sz {
                            let iy = match geo.input_row(oy, ky) {
                                Some(v) => v,
                                None => continue,
                            };
                            for kx in 0..k_sz {
                                let ix = match geo.input_col(ox, kx) {
                                    Some(v) => v,
                                    None => continue,
                                };
                                acc += input.get4(b, ch, iy, ix)
                                    * wdat[((f * c + ch) * k_sz + ky) * k_sz + kx];
                            }
                        }
                    }
                    out.set4(b, f, oy, ox, acc);
                }
            }
        }
    }
    out
}

impl ConvOverride for BitSerialSim {
    fn forward(&self, conv: &Conv2d, input: &Tensor<f32>) -> Tensor<f32> {
        let mode = self.state.borrow().mode;
        match mode {
            SimMode::Bypass => float_conv(conv, input),
            SimMode::Observe => {
                self.record_samples(input);
                float_conv(conv, input)
            }
            SimMode::Simulate => self.simulate(conv, input),
        }
    }
}

/// The set of simulation overrides installed on a model, one per
/// compressed conv (by traversal position).
#[derive(Debug)]
pub struct SimInstallation {
    /// `Some(sim)` for each compressed conv position, `None` for skipped.
    pub sims: Vec<Option<Rc<BitSerialSim>>>,
}

impl SimInstallation {
    /// Installs bit-serial simulation overrides on every compressed conv of
    /// `model`. The model should already be projected onto `pool` (the
    /// index maps are derived from current weights). Sims start in
    /// [`SimMode::Observe`].
    ///
    /// Pass `exact_lut = true` to bypass LUT quantization (the ablation
    /// isolating activation effects).
    pub fn install(
        model: &mut Sequential,
        pool: &WeightPool,
        lut: LookupTable,
        cfg: &PoolConfig,
        act_bits: u8,
        exact_lut: bool,
    ) -> Self {
        let maps = index_maps(model, pool, cfg);
        let lut = Rc::new(lut);
        let pool_rc = Rc::new(pool.clone());
        let mut sims: Vec<Option<Rc<BitSerialSim>>> = Vec::with_capacity(maps.len());
        for map in maps {
            sims.push(map.map(|indices| {
                Rc::new(BitSerialSim {
                    state: RefCell::new(SimState {
                        mode: SimMode::Observe,
                        act_bits,
                        act_params: None,
                        samples: Vec::new(),
                        max_samples: 4096,
                        indices,
                        lut: Rc::clone(&lut),
                        exact_pool: exact_lut.then(|| Rc::clone(&pool_rc)),
                    }),
                })
            }));
        }
        let install = Self { sims };
        for_each_conv_indexed(model, |pos, conv| {
            if let Some(Some(sim)) = install.sims.get(pos) {
                let rc: Rc<dyn ConvOverride> = Rc::clone(sim) as Rc<dyn ConvOverride>;
                conv.set_override(Some(rc));
            }
        });
        install
    }

    /// Sets every sim's mode.
    pub fn set_mode(&self, mode: SimMode) {
        for sim in self.sims.iter().flatten() {
            sim.set_mode(mode);
        }
    }

    /// Finalizes every sim's calibration.
    pub fn finalize(&self, search_steps: usize) {
        for sim in self.sims.iter().flatten() {
            sim.finalize(search_steps);
        }
    }

    /// Changes every sim's activation bitwidth, keeping calibrated ranges.
    pub fn set_act_bits(&self, bits: u8) {
        for sim in self.sims.iter().flatten() {
            sim.set_act_bits(bits);
        }
    }

    /// Removes all overrides from `model`.
    pub fn uninstall(&self, model: &mut Sequential) {
        for_each_conv_indexed(model, |pos, conv| {
            if matches!(self.sims.get(pos), Some(Some(_))) {
                conv.set_override(None);
            }
        });
    }
}

/// Convenience pipeline: install sims on a projected model, calibrate on
/// `calib` batches, and arm simulation at `act_bits`.
pub fn calibrate_and_arm(
    model: &mut Sequential,
    pool: &WeightPool,
    lut: LookupTable,
    cfg: &PoolConfig,
    calib: &[Batch],
    act_bits: u8,
    exact_lut: bool,
) -> SimInstallation {
    let install = SimInstallation::install(model, pool, lut, cfg, act_bits, exact_lut);
    for batch in calib {
        model.forward(&batch.images, false);
    }
    install.finalize(40);
    install.set_mode(SimMode::Simulate);
    install
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{build_pool, project};
    use crate::LutOrder;
    use rand::SeedableRng;
    use wp_cluster::DistanceMetric;
    use wp_nn::{GlobalAvgPool, Relu};

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    /// Builds a small projected model + pool + a test batch.
    fn setup(seed: u64) -> (Sequential, WeightPool, PoolConfig, Tensor<f32>) {
        let mut r = rng(seed);
        let mut net = Sequential::new();
        net.push(Conv2d::new(3, 8, 3, 1, 1, &mut r));
        net.push(Relu::new());
        net.push(Conv2d::new(8, 8, 3, 1, 1, &mut r));
        net.push(Relu::new());
        net.push(GlobalAvgPool::new());
        net.push(wp_nn::Dense::new(8, 4, &mut r));
        let cfg = PoolConfig::new(8).group_size(8).metric(DistanceMetric::Euclidean);
        let pool = build_pool(&mut net, &cfg, &mut r).unwrap();
        project(&mut net, &pool, &cfg);
        let mut x = Tensor::<f32>::zeros(&[2, 3, 6, 6]);
        wp_tensor::fill_uniform(&mut x, 0.0, 1.0, &mut r);
        (net, pool, cfg, x)
    }

    #[test]
    fn bypass_matches_normal_forward() {
        let (mut net, pool, cfg, x) = setup(0);
        let baseline = net.forward(&x, false);
        let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
        let install = SimInstallation::install(&mut net, &pool, lut, &cfg, 8, false);
        install.set_mode(SimMode::Bypass);
        let bypass = net.forward(&x, false);
        for (a, b) in baseline.data().iter().zip(bypass.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        install.uninstall(&mut net);
        let restored = net.forward(&x, false);
        assert_eq!(restored.dims(), baseline.dims());
    }

    #[test]
    fn simulate_with_fine_lut_close_to_float() {
        let (mut net, pool, cfg, x) = setup(1);
        let baseline = net.forward(&x, false);
        let lut = LookupTable::build(&pool, 16, LutOrder::InputOriented);
        let install = SimInstallation::install(&mut net, &pool, lut, &cfg, 8, false);
        // Calibrate on the input itself.
        net.forward(&x, false);
        install.finalize(40);
        install.set_mode(SimMode::Simulate);
        let sim = net.forward(&x, false);
        // 16-bit LUT + 8-bit activations: logits should track closely.
        for (a, b) in baseline.data().iter().zip(sim.data()) {
            assert!((a - b).abs() < 0.15 * a.abs().max(1.0), "baseline {a} vs simulated {b}");
        }
    }

    #[test]
    fn lower_act_bits_increase_error() {
        let (mut net, pool, cfg, x) = setup(2);
        let baseline = net.forward(&x, false);
        let lut = LookupTable::build(&pool, 16, LutOrder::InputOriented);
        let install = SimInstallation::install(&mut net, &pool, lut, &cfg, 8, false);
        net.forward(&x, false);
        install.finalize(40);
        install.set_mode(SimMode::Simulate);

        let err_at = |install: &SimInstallation, net: &mut Sequential, bits: u8| -> f64 {
            install.set_act_bits(bits);
            let y = net.forward(&x, false);
            baseline.data().iter().zip(y.data()).map(|(a, b)| ((a - b) as f64).powi(2)).sum::<f64>()
        };
        let e8 = err_at(&install, &mut net, 8);
        let e2 = err_at(&install, &mut net, 2);
        assert!(e2 > e8, "2-bit error {e2} not worse than 8-bit {e8}");
    }

    #[test]
    fn exact_lut_beats_4bit_lut() {
        let (mut net, pool, cfg, x) = setup(3);
        let baseline = net.forward(&x, false);

        let run = |exact: bool, bits: u8, net: &mut Sequential| -> f64 {
            let lut = LookupTable::build(&pool, bits, LutOrder::InputOriented);
            let install = SimInstallation::install(net, &pool, lut, &cfg, 8, exact);
            net.forward(&x, false);
            install.finalize(40);
            install.set_mode(SimMode::Simulate);
            let y = net.forward(&x, false);
            install.uninstall(net);
            baseline.data().iter().zip(y.data()).map(|(a, b)| ((a - b) as f64).powi(2)).sum::<f64>()
        };
        let e_exact = run(true, 8, &mut net);
        let e4 = run(false, 4, &mut net);
        assert!(e4 >= e_exact, "4-bit LUT {e4} not worse than exact {e_exact}");
    }

    #[test]
    fn signed_inputs_get_signed_params() {
        let mut r = rng(4);
        let mut net = Sequential::new();
        // No ReLU before the compressed conv: inputs can be negative.
        net.push(Conv2d::new(3, 8, 3, 1, 1, &mut r));
        net.push(Conv2d::new(8, 8, 1, 1, 0, &mut r));
        let cfg = PoolConfig::new(4).group_size(8).metric(DistanceMetric::Euclidean);
        let pool = build_pool(&mut net, &cfg, &mut r).unwrap();
        project(&mut net, &pool, &cfg);
        let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
        let install = SimInstallation::install(&mut net, &pool, lut, &cfg, 8, false);
        let mut x = Tensor::<f32>::zeros(&[1, 3, 4, 4]);
        wp_tensor::fill_uniform(&mut x, -1.0, 1.0, &mut r);
        net.forward(&x, false);
        install.finalize(20);
        let sim = install.sims[1].as_ref().unwrap();
        assert!(matches!(sim.act_params(), Some(ActParams::Signed(_))));
        // And simulation still runs.
        install.set_mode(SimMode::Simulate);
        let y = net.forward(&x, false);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn calibrate_and_arm_convenience() {
        let (mut net, pool, cfg, x) = setup(5);
        let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
        let batch = Batch::new(x.clone(), vec![0, 1]);
        let install = calibrate_and_arm(&mut net, &pool, lut, &cfg, &[batch], 8, false);
        for sim in install.sims.iter().flatten() {
            assert_eq!(sim.mode(), SimMode::Simulate);
            assert!(sim.act_params().is_some());
        }
        let y = net.forward(&x, false);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }
}
