//! Fully-connected layer pooling (paper §5.2, footnote 1).
//!
//! Z-dimension pooling extends naturally to dense layers: each row of the
//! `[out, in]` weight matrix is sliced into vectors of `G` consecutive
//! input features. The paper measures this as a compression-ratio /
//! accuracy tradeoff (ResNet-s CR 4.43 → 4.5 at −0.7% accuracy; TinyConv
//! 2.32 → 3.1 at −2.8%) and keeps FC layers uncompressed by default; this
//! module provides the option so the footnote's study can be regenerated.

use crate::{PoolConfig, WeightPool};
use wp_nn::{Dense, Sequential};
use wp_tensor::Tensor;

/// Whether a dense layer can be pooled at group size `g`.
pub fn is_dense_groupable(layer: &Dense, g: usize) -> bool {
    g > 0 && layer.in_features().is_multiple_of(g)
}

/// Extracts the z-vectors of a dense weight matrix `[out, in]`: row-major
/// runs of `g` consecutive input features.
///
/// # Panics
///
/// Panics if `in` is not divisible by `g`.
pub fn extract_dense_vectors(weight: &Tensor<f32>, g: usize) -> Vec<Vec<f32>> {
    let d = weight.dims();
    assert_eq!(d.len(), 2, "expected [out, in] dense weights");
    let (out_f, in_f) = (d[0], d[1]);
    assert_eq!(in_f % g, 0, "in_features {in_f} not divisible by group {g}");
    let mut vectors = Vec::with_capacity(out_f * in_f / g);
    for o in 0..out_f {
        for chunk in 0..(in_f / g) {
            let base = o * in_f + chunk * g;
            vectors.push(weight.data()[base..base + g].to_vec());
        }
    }
    vectors
}

/// Writes z-vectors back into the dense weight matrix — the inverse of
/// [`extract_dense_vectors`].
///
/// # Panics
///
/// Panics on any count or length mismatch.
pub fn write_dense_vectors(weight: &mut Tensor<f32>, g: usize, vectors: &[Vec<f32>]) {
    let d = weight.dims().to_vec();
    let (out_f, in_f) = (d[0], d[1]);
    assert_eq!(in_f % g, 0, "in_features not divisible by group");
    assert_eq!(vectors.len(), out_f * in_f / g, "vector count mismatch");
    let data = weight.data_mut();
    for (i, v) in vectors.iter().enumerate() {
        assert_eq!(v.len(), g, "vector length mismatch");
        data[i * g..(i + 1) * g].copy_from_slice(v);
    }
}

/// Collects the z-vectors of every poolable dense layer in the model.
pub fn collect_dense_vectors(model: &mut Sequential, cfg: &PoolConfig) -> Vec<Vec<f32>> {
    let mut out = Vec::new();
    model.visit_dense(&mut |layer| {
        if is_dense_groupable(layer, cfg.group_size) {
            out.extend(extract_dense_vectors(layer.weight(), cfg.group_size));
        }
    });
    out
}

/// Projects every poolable dense layer's weights onto the pool, in place.
/// Returns the number of vectors replaced.
pub fn project_dense(model: &mut Sequential, pool: &WeightPool, cfg: &PoolConfig) -> usize {
    let mut replaced = 0usize;
    model.visit_dense(&mut |layer| {
        if !is_dense_groupable(layer, cfg.group_size) {
            return;
        }
        let vectors = extract_dense_vectors(layer.weight(), cfg.group_size);
        let projected: Vec<Vec<f32>> =
            vectors.iter().map(|v| pool.vector(pool.assign(v, cfg.metric)).to_vec()).collect();
        replaced += projected.len();
        write_dense_vectors(layer.weight_mut(), cfg.group_size, &projected);
    });
    replaced
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wp_cluster::DistanceMetric;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn extract_write_round_trip() {
        let mut r = rng(0);
        let layer = Dense::new(16, 4, &mut r);
        let vectors = extract_dense_vectors(layer.weight(), 8);
        assert_eq!(vectors.len(), 4 * 2);
        let mut w2 = Tensor::<f32>::zeros(&[4, 16]);
        write_dense_vectors(&mut w2, 8, &vectors);
        assert_eq!(&w2, layer.weight());
    }

    #[test]
    fn vectors_are_contiguous_input_runs() {
        let w = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[2, 8]);
        let vs = extract_dense_vectors(&w, 4);
        assert_eq!(vs[0], vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(vs[1], vec![4.0, 5.0, 6.0, 7.0]);
        assert_eq!(vs[2], vec![8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn project_replaces_with_pool_members() {
        let mut r = rng(1);
        let mut net = Sequential::new();
        net.push(Dense::new(16, 3, &mut r));
        let cfg = crate::PoolConfig::new(4).group_size(8).metric(DistanceMetric::Euclidean);
        let vectors = collect_dense_vectors(&mut net, &cfg);
        assert_eq!(vectors.len(), 6);
        let pool = WeightPool::from_vectors(vectors[..4].to_vec());
        let n = project_dense(&mut net, &pool, &cfg);
        assert_eq!(n, 6);
        net.visit_dense(&mut |layer| {
            for v in extract_dense_vectors(layer.weight(), 8) {
                let nearest = pool.vector(pool.assign(&v, DistanceMetric::Euclidean));
                for (a, b) in v.iter().zip(nearest) {
                    assert!((a - b).abs() < 1e-6);
                }
            }
        });
    }

    #[test]
    fn indivisible_dense_skipped() {
        let mut r = rng(2);
        let mut net = Sequential::new();
        net.push(Dense::new(10, 2, &mut r)); // 10 % 8 != 0
        let cfg = crate::PoolConfig::new(2).group_size(8);
        assert!(collect_dense_vectors(&mut net, &cfg).is_empty());
        let pool = WeightPool::from_vectors(vec![vec![0.0; 8]]);
        assert_eq!(project_dense(&mut net, &pool, &cfg), 0);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn extract_rejects_bad_group() {
        let w = Tensor::<f32>::zeros(&[2, 10]);
        extract_dense_vectors(&w, 8);
    }
}
