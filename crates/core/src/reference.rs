//! Reference integer semantics of the bit-serial lookup-table convolution.
//!
//! This module defines, in the simplest possible loop order, *exactly* what
//! the bit-serial kernel computes on quantized data. The instrumented MCU
//! kernels in `wp-kernels` — with all their dataflow optimizations — are
//! required by test to produce bit-identical accumulators to these
//! functions, which pins down that the optimizations are pure refactorings
//! of the arithmetic.
//!
//! Accumulators are in units of `lut.scale() × act_scale`; callers multiply
//! by those scales (or fold them into a requantizer) to recover real values.

use crate::grouping::vector_position;
use crate::LookupTable;
use wp_tensor::Conv2dGeometry;

/// How quantized activation codes are decomposed into bits (paper Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActEncoding {
    /// Codes in `[0, 2^M - 1]`; every bit has weight `+2^j`. This is the
    /// paper's setting (post-ReLU activations).
    Unsigned,
    /// Two's-complement codes in `[-2^(M-1), 2^(M-1) - 1]`; the MSB pass has
    /// weight `-2^(M-1)`. Used for MobileNet-v2's linear-bottleneck inputs,
    /// which are signed.
    SignedTwosComplement,
}

impl ActEncoding {
    /// The accumulation weight of bit position `j` under `bits`-bit codes.
    #[inline]
    pub fn bit_weight(&self, j: u8, bits: u8) -> i64 {
        match self {
            ActEncoding::Unsigned => 1i64 << j,
            ActEncoding::SignedTwosComplement => {
                if j == bits - 1 {
                    -(1i64 << j)
                } else {
                    1i64 << j
                }
            }
        }
    }

    /// Valid code range for `bits`-bit activations under this encoding.
    pub fn code_range(&self, bits: u8) -> (i32, i32) {
        match self {
            ActEncoding::Unsigned => (0, (1i32 << bits) - 1),
            ActEncoding::SignedTwosComplement => (-(1i32 << (bits - 1)), (1i32 << (bits - 1)) - 1),
        }
    }
}

/// Shape of one pooled conv layer as consumed by reference and kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PooledConvShape {
    /// Input channels (must be divisible by the group size).
    pub in_ch: usize,
    /// Output channels (filters).
    pub out_ch: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Spatial stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
}

impl PooledConvShape {
    /// The convolution geometry.
    pub fn geometry(&self) -> Conv2dGeometry {
        Conv2dGeometry::new(self.in_h, self.in_w, self.kernel, self.kernel, self.stride, self.pad)
    }

    /// Number of channel groups at group size `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` does not divide the input channels.
    pub fn groups(&self, g: usize) -> usize {
        assert_eq!(self.in_ch % g, 0, "channels {} not divisible by group {g}", self.in_ch);
        self.in_ch / g
    }

    /// Number of pool indices this layer stores (`K × C/G × R × S`).
    pub fn index_count(&self, g: usize) -> usize {
        self.out_ch * self.groups(g) * self.kernel * self.kernel
    }
}

/// Builds the bit pattern for `(group, bit j)` at input position
/// `(iy, ix)`: bit `i` of the result is bit `j` of the code of channel
/// `g*G + i`. Out-of-bounds positions (padding) contribute zero bits.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the flat embedded-C kernel signature
fn bit_pattern(
    codes: &[i32],
    in_h: usize,
    in_w: usize,
    group_base: usize,
    group: usize,
    iy: Option<usize>,
    ix: Option<usize>,
    j: u8,
) -> usize {
    let (iy, ix) = match (iy, ix) {
        (Some(y), Some(x)) => (y, x),
        _ => return 0,
    };
    let mut m = 0usize;
    for i in 0..group {
        let code = codes[((group_base + i) * in_h + iy) * in_w + ix];
        m |= (((code >> j) & 1) as usize) << i;
    }
    m
}

/// Reference bit-serial LUT convolution: returns `[K, OH, OW]` accumulators
/// in units of `lut.scale() × act_scale`.
///
/// `codes` is the `[C, H, W]` quantized activation plane; `indices` the
/// canonical-order pool indices (see [`crate::grouping`]); `act_bits` the
/// activation bitwidth `M` (bits above `M` in the codes must be zero for
/// unsigned encoding).
///
/// # Panics
///
/// Panics on any shape mismatch or if a code is outside the encoding's
/// range for `act_bits`.
pub fn bitserial_conv_acc(
    codes: &[i32],
    shape: &PooledConvShape,
    indices: &[u8],
    lut: &LookupTable,
    act_bits: u8,
    encoding: ActEncoding,
) -> Vec<i32> {
    let g = lut.group_size();
    let groups = shape.groups(g);
    assert_eq!(codes.len(), shape.in_ch * shape.in_h * shape.in_w, "activation size mismatch");
    assert_eq!(indices.len(), shape.index_count(g), "index count mismatch");
    assert!(act_bits >= 1, "need at least one activation bit");
    let (lo, hi) = encoding.code_range(act_bits);
    assert!(codes.iter().all(|&c| (lo..=hi).contains(&c)), "activation code outside [{lo}, {hi}]");

    let geo = shape.geometry();
    let (oh, ow) = (geo.out_h(), geo.out_w());
    let mut out = vec![0i32; shape.out_ch * oh * ow];

    for k in 0..shape.out_ch {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc: i64 = 0;
                for grp in 0..groups {
                    for ky in 0..shape.kernel {
                        let iy = geo.input_row(oy, ky);
                        for kx in 0..shape.kernel {
                            let ix = geo.input_col(ox, kx);
                            let idx = indices[vector_position(
                                k,
                                grp,
                                ky,
                                kx,
                                groups,
                                shape.kernel,
                                shape.kernel,
                            )] as usize;
                            for j in 0..act_bits {
                                let m = bit_pattern(
                                    codes,
                                    shape.in_h,
                                    shape.in_w,
                                    grp * g,
                                    g,
                                    iy,
                                    ix,
                                    j,
                                );
                                acc += encoding.bit_weight(j, act_bits) * lut.code(idx, m) as i64;
                            }
                        }
                    }
                }
                out[(k * oh + oy) * ow + ox] = i32::try_from(acc).expect("accumulator overflow");
            }
        }
    }
    out
}

/// Reference direct integer convolution (the CMSIS-style baseline):
/// `[K, OH, OW]` accumulators from `[C, H, W]` activation codes and
/// `[K, C, R, S]` quantized weights.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn direct_conv_acc(codes: &[i32], shape: &PooledConvShape, weights: &[i8]) -> Vec<i32> {
    assert_eq!(codes.len(), shape.in_ch * shape.in_h * shape.in_w, "activation size mismatch");
    assert_eq!(
        weights.len(),
        shape.out_ch * shape.in_ch * shape.kernel * shape.kernel,
        "weight size mismatch"
    );
    let geo = shape.geometry();
    let (oh, ow) = (geo.out_h(), geo.out_w());
    let k_sz = shape.kernel;
    let mut out = vec![0i32; shape.out_ch * oh * ow];
    for k in 0..shape.out_ch {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc: i64 = 0;
                for c in 0..shape.in_ch {
                    for ky in 0..k_sz {
                        let iy = match geo.input_row(oy, ky) {
                            Some(v) => v,
                            None => continue,
                        };
                        for kx in 0..k_sz {
                            let ix = match geo.input_col(ox, kx) {
                                Some(v) => v,
                                None => continue,
                            };
                            let a = codes[(c * shape.in_h + iy) * shape.in_w + ix] as i64;
                            let w = weights[((k * shape.in_ch + c) * k_sz + ky) * k_sz + kx] as i64;
                            acc += a * w;
                        }
                    }
                }
                out[(k * oh + oy) * ow + ox] = i32::try_from(acc).expect("accumulator overflow");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LutOrder, WeightPool};
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn shape_1x1(in_ch: usize, out_ch: usize, hw: usize) -> PooledConvShape {
        PooledConvShape { in_ch, out_ch, kernel: 1, stride: 1, pad: 0, in_h: hw, in_w: hw }
    }

    /// With integer pool vectors whose LUT scale is exactly 1 (max entry =
    /// qmax), the bit-serial accumulator must equal the plain integer dot
    /// product.
    #[test]
    fn bitserial_equals_integer_dot_product() {
        // Pool vector chosen so max |dot| = 127 exactly => scale = 1.
        let pool = WeightPool::from_vectors(vec![vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 0.0]]);
        let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
        assert!((lut.scale() - 1.0).abs() < 1e-6);

        let shape = shape_1x1(8, 1, 1);
        let codes: Vec<i32> = vec![3, 0, 1, 2, 5, 7, 1, 9];
        let acc = bitserial_conv_acc(&codes, &shape, &[0], &lut, 8, ActEncoding::Unsigned);
        let expect: i32 = codes.iter().zip(pool.vector(0)).map(|(&a, &w)| a * w as i32).sum();
        assert_eq!(acc, vec![expect]);
    }

    #[test]
    fn signed_encoding_handles_negative_codes() {
        let pool = WeightPool::from_vectors(vec![vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 0.0]]);
        let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
        let shape = shape_1x1(8, 1, 1);
        let codes: Vec<i32> = vec![-3, 0, 1, -2, 5, -8, 1, 7];
        let acc =
            bitserial_conv_acc(&codes, &shape, &[0], &lut, 8, ActEncoding::SignedTwosComplement);
        let expect: i32 = codes.iter().zip(pool.vector(0)).map(|(&a, &w)| a * w as i32).sum();
        assert_eq!(acc, vec![expect]);
    }

    #[test]
    fn truncating_bits_drops_low_bits() {
        let pool = WeightPool::from_vectors(vec![vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 0.0]]);
        let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
        let shape = shape_1x1(8, 1, 1);
        // Codes fit in 4 bits; computing at 4 bits must equal full result.
        let codes: Vec<i32> = vec![3, 7, 1, 2, 5, 15, 1, 9];
        let full = bitserial_conv_acc(&codes, &shape, &[0], &lut, 8, ActEncoding::Unsigned);
        let trunc = bitserial_conv_acc(&codes, &shape, &[0], &lut, 4, ActEncoding::Unsigned);
        assert_eq!(full, trunc);
    }

    #[test]
    fn padding_contributes_zero() {
        let pool = WeightPool::from_vectors(vec![vec![1.0; 4]]);
        let lut = LookupTable::build(&pool, 16, LutOrder::InputOriented);
        let shape =
            PooledConvShape { in_ch: 4, out_ch: 1, kernel: 3, stride: 1, pad: 1, in_h: 1, in_w: 1 };
        // Single pixel with code 1 in each channel; 3x3 kernel: only the
        // center tap is inside.
        let codes = vec![1i32; 4];
        let indices = vec![0u8; 9];
        let acc = bitserial_conv_acc(&codes, &shape, &indices, &lut, 8, ActEncoding::Unsigned);
        // dot([1,1,1,1] bits) at one tap: LUT code for pattern 0b1111.
        assert_eq!(acc, vec![lut.code(0, 0b1111)]);
    }

    #[test]
    #[should_panic(expected = "activation code outside")]
    fn code_out_of_range_rejected() {
        let pool = WeightPool::from_vectors(vec![vec![1.0; 4]]);
        let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
        let shape = shape_1x1(4, 1, 1);
        bitserial_conv_acc(&[300, 0, 0, 0], &shape, &[0], &lut, 8, ActEncoding::Unsigned);
    }

    #[test]
    fn direct_conv_matches_manual() {
        let shape =
            PooledConvShape { in_ch: 1, out_ch: 1, kernel: 3, stride: 1, pad: 0, in_h: 3, in_w: 3 };
        let codes: Vec<i32> = (1..=9).collect();
        let weights: Vec<i8> = vec![1, 0, -1, 2, 0, -2, 1, 0, -1]; // Sobel-ish
        let acc = direct_conv_acc(&codes, &shape, &weights);
        let expect: i32 = codes.iter().zip(&weights).map(|(&a, &w)| a * w as i32).sum();
        assert_eq!(acc, vec![expect]);
    }

    /// The float reconstruction of the bit-serial accumulator must match a
    /// float convolution with the pool weights, within LUT quantization
    /// error bounds.
    #[test]
    fn float_reconstruction_close_to_float_conv() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let g = 8;
        let pool_vecs: Vec<Vec<f32>> =
            (0..4).map(|_| (0..g).map(|_| rng.gen_range(-0.5f32..0.5)).collect()).collect();
        let pool = WeightPool::from_vectors(pool_vecs.clone());
        let lut = LookupTable::build(&pool, 16, LutOrder::InputOriented);
        let shape =
            PooledConvShape { in_ch: 8, out_ch: 2, kernel: 3, stride: 1, pad: 1, in_h: 5, in_w: 5 };
        let act_scale = 0.05f32;
        let codes: Vec<i32> = (0..8 * 25).map(|_| rng.gen_range(0..256)).collect();
        let indices: Vec<u8> = (0..shape.index_count(g)).map(|_| rng.gen_range(0..4)).collect();

        let acc = bitserial_conv_acc(&codes, &shape, &indices, &lut, 8, ActEncoding::Unsigned);

        // Float reference: conv with weights = assigned pool vectors.
        let geo = shape.geometry();
        for k in 0..2 {
            for oy in 0..5 {
                for ox in 0..5 {
                    let mut expect = 0.0f64;
                    for grp in 0..1 {
                        for ky in 0..3 {
                            for kx in 0..3 {
                                if let (Some(iy), Some(ix)) =
                                    (geo.input_row(oy, ky), geo.input_col(ox, kx))
                                {
                                    let idx = indices[((k + grp) * 3 + ky) * 3 + kx] as usize;
                                    for i in 0..g {
                                        let a = codes[((grp * g + i) * 5 + iy) * 5 + ix] as f64
                                            * act_scale as f64;
                                        expect += a * pool_vecs[idx][i] as f64;
                                    }
                                }
                            }
                        }
                    }
                    let got =
                        acc[(k * 5 + oy) * 5 + ox] as f64 * lut.scale() as f64 * act_scale as f64;
                    // 16-bit LUT: per-entry error <= scale/2; across
                    // 9 taps x 8 bits the bound is 9*255*scale/2 roughly.
                    let bound = 9.0 * 255.0 * lut.scale() as f64 * act_scale as f64;
                    assert!(
                        (got - expect).abs() <= bound,
                        "k={k} oy={oy} ox={ox}: {got} vs {expect}"
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Bit-serial LUT conv at 16-bit LUT ≈ direct conv with the
        /// quantized pool weights when pool entries are powers of two
        /// (exactly representable).
        #[test]
        fn prop_linear_in_activation_codes(seed in 0u64..100) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let pool = WeightPool::from_vectors(vec![
                vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 0.0],
                vec![0.0, 64.0, 32.0, 16.0, 8.0, 4.0, 2.0, 1.0],
            ]);
            let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
            prop_assert!((lut.scale() - 1.0).abs() < 1e-6);
            let shape = shape_1x1(8, 2, 2);
            let codes: Vec<i32> = (0..8 * 4).map(|_| rng.gen_range(0..16)).collect();
            let indices: Vec<u8> = (0..shape.index_count(8)).map(|_| rng.gen_range(0..2)).collect();
            let acc = bitserial_conv_acc(&codes, &shape, &indices, &lut, 4, ActEncoding::Unsigned);
            // Independent direct computation.
            for k in 0..2 {
                for p in 0..4 {
                    let idx = indices[k] as usize;
                    let expect: i32 = (0..8)
                        .map(|i| codes[i * 4 + p] * pool.vector(idx)[i] as i32)
                        .sum();
                    prop_assert_eq!(acc[k * 4 + p], expect);
                }
            }
        }
    }
}
