//! Z-dimension weight grouping (paper Figure 3).
//!
//! A `[K, C, R, S]` convolution weight tensor is sliced along the channel
//! axis into vectors of length `G`: for filter `k`, channel group `g` and
//! spatial tap `(r, s)`, the vector is
//! `[w[k][g*G + i][r][s] for i in 0..G]`.
//!
//! The canonical ordering used everywhere (pool building, projection, index
//! maps, kernels) is `k`-major, then `g`, then `r`, then `s`.

use wp_tensor::Tensor;

/// Number of z-vectors a `[K, C, R, S]` weight tensor yields at group size
/// `group`.
///
/// # Panics
///
/// Panics if `group` is zero or does not divide `c`.
pub fn vector_count(k: usize, c: usize, r: usize, s: usize, group: usize) -> usize {
    assert!(group > 0, "group size must be positive");
    assert_eq!(c % group, 0, "channels {c} not divisible by group size {group}");
    k * (c / group) * r * s
}

/// Whether a conv layer with `in_ch` channels can be z-grouped at `group`.
pub fn is_groupable(in_ch: usize, group: usize) -> bool {
    group > 0 && in_ch.is_multiple_of(group)
}

/// Extracts all z-vectors from a `[K, C, R, S]` weight tensor in canonical
/// order.
///
/// # Panics
///
/// Panics if the tensor is not rank 4 or `C` is not divisible by `group`.
pub fn extract_z_vectors(weight: &Tensor<f32>, group: usize) -> Vec<Vec<f32>> {
    let d = weight.dims();
    assert_eq!(d.len(), 4, "expected [K, C, R, S] weights");
    let (k, c, r, s) = (d[0], d[1], d[2], d[3]);
    assert!(is_groupable(c, group), "channels {c} not divisible by group {group}");
    let groups = c / group;
    let mut out = Vec::with_capacity(vector_count(k, c, r, s, group));
    for f in 0..k {
        for g in 0..groups {
            for ky in 0..r {
                for kx in 0..s {
                    let mut v = Vec::with_capacity(group);
                    for i in 0..group {
                        v.push(weight.get4(f, g * group + i, ky, kx));
                    }
                    out.push(v);
                }
            }
        }
    }
    out
}

/// Writes z-vectors (in canonical order) back into a `[K, C, R, S]` weight
/// tensor — the inverse of [`extract_z_vectors`].
///
/// # Panics
///
/// Panics on rank/divisibility mismatch, wrong vector count, or wrong
/// vector lengths.
pub fn write_z_vectors(weight: &mut Tensor<f32>, group: usize, vectors: &[Vec<f32>]) {
    let d = weight.dims().to_vec();
    assert_eq!(d.len(), 4, "expected [K, C, R, S] weights");
    let (k, c, r, s) = (d[0], d[1], d[2], d[3]);
    assert!(is_groupable(c, group), "channels {c} not divisible by group {group}");
    let groups = c / group;
    assert_eq!(vectors.len(), vector_count(k, c, r, s, group), "vector count mismatch");
    let mut it = vectors.iter();
    for f in 0..k {
        for g in 0..groups {
            for ky in 0..r {
                for kx in 0..s {
                    let v = it.next().unwrap();
                    assert_eq!(v.len(), group, "vector length mismatch");
                    for (i, &val) in v.iter().enumerate() {
                        weight.set4(f, g * group + i, ky, kx, val);
                    }
                }
            }
        }
    }
}

/// Canonical flat position of the vector for `(filter, group, r, s)`; the
/// same ordering [`extract_z_vectors`] produces and index maps store.
#[inline]
pub fn vector_position(
    filter: usize,
    group_idx: usize,
    r: usize,
    s: usize,
    groups: usize,
    kernel_h: usize,
    kernel_w: usize,
) -> usize {
    ((filter * groups + group_idx) * kernel_h + r) * kernel_w + s
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counts_match_figure3_example() {
        // Figure 3: an 8x3x3 filter with group size 4 yields 18 vectors.
        assert_eq!(vector_count(1, 8, 3, 3, 4), 18);
    }

    #[test]
    fn extract_reads_channel_runs() {
        // weight[k][c][r][s] encoded as value k*1000 + c*100 + r*10 + s.
        let mut w = Tensor::<f32>::zeros(&[2, 4, 2, 2]);
        for k in 0..2 {
            for c in 0..4 {
                for r in 0..2 {
                    for s in 0..2 {
                        w.set4(k, c, r, s, (k * 1000 + c * 100 + r * 10 + s) as f32);
                    }
                }
            }
        }
        let vecs = extract_z_vectors(&w, 4);
        assert_eq!(vecs.len(), 2 * 2 * 2);
        // First vector: filter 0, group 0, tap (0,0): channels 0..4.
        assert_eq!(vecs[0], vec![0.0, 100.0, 200.0, 300.0]);
        // Last vector: filter 1, tap (1,1).
        assert_eq!(vecs[7], vec![1011.0, 1111.0, 1211.0, 1311.0]);
    }

    #[test]
    fn round_trip_write_extract() {
        let mut w = Tensor::<f32>::zeros(&[3, 8, 3, 3]);
        for (i, v) in w.data_mut().iter_mut().enumerate() {
            *v = i as f32 * 0.5;
        }
        let vecs = extract_z_vectors(&w, 8);
        let mut w2 = Tensor::<f32>::zeros(&[3, 8, 3, 3]);
        write_z_vectors(&mut w2, 8, &vecs);
        assert_eq!(w, w2);
    }

    #[test]
    fn vector_position_matches_extract_order() {
        let mut w = Tensor::<f32>::zeros(&[2, 8, 3, 3]);
        for (i, v) in w.data_mut().iter_mut().enumerate() {
            *v = i as f32;
        }
        let vecs = extract_z_vectors(&w, 4);
        let groups = 2;
        for f in 0..2 {
            for g in 0..groups {
                for r in 0..3 {
                    for s in 0..3 {
                        let pos = vector_position(f, g, r, s, groups, 3, 3);
                        let expect: Vec<f32> = (0..4).map(|i| w.get4(f, g * 4 + i, r, s)).collect();
                        assert_eq!(vecs[pos], expect);
                    }
                }
            }
        }
    }

    #[test]
    fn one_by_one_kernels_supported() {
        let w = Tensor::<f32>::full(&[4, 8, 1, 1], 1.0);
        let vecs = extract_z_vectors(&w, 8);
        assert_eq!(vecs.len(), 4);
        assert!(vecs.iter().all(|v| v.len() == 8));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_channels_rejected() {
        let w = Tensor::<f32>::zeros(&[1, 6, 3, 3]);
        extract_z_vectors(&w, 4);
    }

    #[test]
    fn is_groupable_checks() {
        assert!(is_groupable(64, 8));
        assert!(!is_groupable(3, 8));
        assert!(!is_groupable(8, 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_round_trip(
            k in 1usize..4,
            groups in 1usize..3,
            g in prop::sample::select(vec![4usize, 8]),
            r in 1usize..4,
        ) {
            let c = groups * g;
            let mut w = Tensor::<f32>::zeros(&[k, c, r, r]);
            for (i, v) in w.data_mut().iter_mut().enumerate() {
                *v = (i as f32).sin();
            }
            let vecs = extract_z_vectors(&w, g);
            prop_assert_eq!(vecs.len(), vector_count(k, c, r, r, g));
            let mut w2 = Tensor::<f32>::zeros(&[k, c, r, r]);
            write_z_vectors(&mut w2, g, &vecs);
            prop_assert_eq!(w, w2);
        }
    }
}
