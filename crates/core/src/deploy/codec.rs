//! Bundle (de)serialization codecs: JSON and the entropy-coded binary
//! **WPB** format.
//!
//! A [`DeployBundle`]'s dominant storage term is its pool-index streams
//! (SWIS and CIMPool make the same observation), and
//! [`DeployBundle::index_entropy_bits`] measures how far the fixed-width
//! encoding sits above the empirical entropy. WPB closes that gap: each
//! pooled layer's index stream is Rice/Golomb coded with a per-layer
//! parameter chosen from the layer's measured index statistics (with an
//! optional frequency-rank remap for skewed streams, and a raw
//! fixed-width fallback whenever entropy coding would *expand* the
//! stream), the LUT is bit-packed at its entry width, and pool vectors
//! and direct weights are stored as raw little-endian bytes.
//!
//! # WPB layout
//!
//! ```text
//! "WPB1"  magic (4 bytes)
//! u8      version (currently 1)
//! u8      act_bits
//! u32le   CRC-32 of the six header bytes above
//! then sections, each:
//!   u8      tag        1=spec  2=pool  3=lut  4=convs
//!   varint  payload length (LEB128)
//!   [...]   payload
//!   u32le   CRC-32 (IEEE) of the payload
//! ```
//!
//! Unknown section tags are skipped (forward compatibility); a missing or
//! duplicated known section, a failed checksum, or a truncated buffer all
//! fail loudly with a typed [`CodecError`]. Multi-byte integers are
//! little-endian; bitstreams fill bytes LSB-first.
//!
//! Section payloads:
//!
//! * **spec** — the [`NetSpec`] as JSON bytes (shapes are tiny; keeping
//!   them readable costs nothing next to the index streams).
//! * **pool** — `varint S`, `varint G`, then `S·G` f32 bit patterns.
//! * **lut** — `varint G`, `varint S`, `u8 bits`, `u8 order`, `f32 scale`,
//!   then the codes bit-packed at `bits`-bit two's complement in storage
//!   order.
//! * **convs** — `varint n`, then per conv a `u8` kind: direct convs store
//!   `varint n`, `f32 scale` and raw int8 bytes; pooled convs store
//!   `varint n`, a coding-mode header and the coded bitstream (see
//!   [`IndexCoding`]).

use super::{ConvPayload, DeployBundle};
use crate::netspec::NetSpec;
use crate::{LookupTable, LutOrder, WeightPool};
use std::fmt;
use std::path::Path;

/// Magic bytes opening every WPB file.
pub const WPB_MAGIC: [u8; 4] = *b"WPB1";

/// The WPB format version this codec writes.
pub const WPB_VERSION: u8 = 1;

/// Largest Rice parameter the encoder considers (indices are bytes, so
/// larger parameters always lose to the raw fallback).
const MAX_RICE_K: u8 = 7;

/// Section tags.
const SEC_SPEC: u8 = 1;
const SEC_POOL: u8 = 2;
const SEC_LUT: u8 = 3;
const SEC_CONVS: u8 = 4;

/// Why encoding or decoding a bundle failed.
#[derive(Debug)]
pub enum CodecError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The file's version is newer than this codec understands.
    UnsupportedVersion(u8),
    /// The buffer ended before the named piece could be read.
    Truncated(&'static str),
    /// A section's checksum did not match its payload.
    Checksum(&'static str),
    /// The bytes parsed but violate the format's invariants.
    Malformed(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a WPB bundle (bad magic)"),
            CodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported WPB version {v} (this codec reads {WPB_VERSION})")
            }
            CodecError::Truncated(what) => write!(f, "truncated bundle: {what}"),
            CodecError::Checksum(section) => {
                write!(f, "checksum mismatch in {section} section (corrupt or truncated file)")
            }
            CodecError::Malformed(m) => write!(f, "malformed bundle: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A bundle serialization format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable JSON (the original interchange format).
    Json,
    /// Entropy-coded binary WPB.
    Wpb,
}

impl Format {
    /// Detects the format of serialized bytes from their magic prefix.
    pub fn sniff(bytes: &[u8]) -> Self {
        if bytes.starts_with(&WPB_MAGIC) {
            Format::Wpb
        } else {
            Format::Json
        }
    }

    /// Picks a format from a path's extension: `.wpb` (case-insensitive)
    /// is WPB, anything else JSON.
    pub fn for_path(path: &Path) -> Self {
        match path.extension().and_then(|e| e.to_str()) {
            Some(ext) if ext.eq_ignore_ascii_case("wpb") => Format::Wpb,
            _ => Format::Json,
        }
    }

    /// The codec implementing this format.
    pub fn codec(self) -> &'static dyn BundleCodec {
        match self {
            Format::Json => &JsonCodec,
            Format::Wpb => &WpbCodec,
        }
    }
}

/// Format-agnostic bundle (de)serialization.
///
/// Both implementations are round-trip equal by construction:
/// `decode(encode(b)) == b` for every valid bundle (pinned by unit and
/// property tests, including both [`LutOrder`]s and both
/// [`ConvPayload`] kinds).
pub trait BundleCodec: Sync {
    /// The format this codec implements.
    fn format(&self) -> Format;

    /// Serializes `bundle` to bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] if the bundle violates the
    /// format's representable range (e.g. LUT codes outside their stated
    /// bitwidth).
    fn encode(&self, bundle: &DeployBundle) -> Result<Vec<u8>, CodecError>;

    /// Reconstructs a bundle from bytes produced by [`BundleCodec::encode`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`CodecError`]; truncated or corrupted input fails
    /// loudly rather than yielding a partial bundle.
    fn decode(&self, bytes: &[u8]) -> Result<DeployBundle, CodecError>;
}

/// The JSON codec (serde over the vendored shim).
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonCodec;

impl BundleCodec for JsonCodec {
    fn format(&self) -> Format {
        Format::Json
    }

    fn encode(&self, bundle: &DeployBundle) -> Result<Vec<u8>, CodecError> {
        serde_json::to_string(bundle)
            .map(String::into_bytes)
            .map_err(|e| CodecError::Malformed(format!("json: {e}")))
    }

    fn decode(&self, bytes: &[u8]) -> Result<DeployBundle, CodecError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| CodecError::Malformed("json bundle is not UTF-8".into()))?;
        serde_json::from_str(text).map_err(|e| CodecError::Malformed(format!("json: {e}")))
    }
}

/// The entropy-coded binary codec (see the module docs for the layout).
#[derive(Debug, Clone, Copy, Default)]
pub struct WpbCodec;

impl BundleCodec for WpbCodec {
    fn format(&self) -> Format {
        Format::Wpb
    }

    fn encode(&self, bundle: &DeployBundle) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        out.extend_from_slice(&WPB_MAGIC);
        out.push(WPB_VERSION);
        out.push(bundle.act_bits);
        // The header gets its own checksum: act_bits lives outside every
        // section, and a flipped bit there would otherwise decode into a
        // quietly wrong bundle.
        let header_crc = crc32(&out);
        out.extend_from_slice(&header_crc.to_le_bytes());
        write_section(&mut out, SEC_SPEC, &encode_spec(&bundle.spec)?);
        write_section(&mut out, SEC_POOL, &encode_pool(&bundle.pool));
        write_section(&mut out, SEC_LUT, &encode_lut(&bundle.lut)?);
        write_section(&mut out, SEC_CONVS, &encode_convs(&bundle.convs));
        Ok(out)
    }

    fn decode(&self, bytes: &[u8]) -> Result<DeployBundle, CodecError> {
        if !bytes.starts_with(&WPB_MAGIC) {
            return Err(CodecError::BadMagic);
        }
        let mut r = ByteReader::new(&bytes[WPB_MAGIC.len()..]);
        let version = r.u8("version")?;
        if version != WPB_VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let act_bits = r.u8("act_bits")?;
        let header_crc = r.u32le("header checksum")?;
        if crc32(&bytes[..WPB_MAGIC.len() + 2]) != header_crc {
            return Err(CodecError::Checksum("header"));
        }

        let mut spec: Option<NetSpec> = None;
        let mut pool: Option<WeightPool> = None;
        let mut lut: Option<LookupTable> = None;
        let mut convs: Option<Vec<ConvPayload>> = None;
        while !r.is_empty() {
            let tag = r.u8("section tag")?;
            let len = r.varint("section length")? as usize;
            let payload = r.take(len, "section payload")?;
            let crc = u32::from_le_bytes(
                r.take(4, "section checksum")?.try_into().expect("4-byte slice"),
            );
            let name = section_name(tag);
            if crc32(payload) != crc {
                return Err(CodecError::Checksum(name));
            }
            match tag {
                SEC_SPEC => store(&mut spec, decode_spec(payload)?, name)?,
                SEC_POOL => store(&mut pool, decode_pool(payload)?, name)?,
                SEC_LUT => store(&mut lut, decode_lut(payload)?, name)?,
                SEC_CONVS => store(&mut convs, decode_convs(payload)?, name)?,
                // Unknown sections are checksummed and skipped so older
                // readers survive additive format growth.
                _ => {}
            }
        }
        let missing = |name: &'static str| CodecError::Truncated(name);
        Ok(DeployBundle {
            spec: spec.ok_or_else(|| missing("missing spec section"))?,
            pool: pool.ok_or_else(|| missing("missing pool section"))?,
            lut: lut.ok_or_else(|| missing("missing lut section"))?,
            convs: convs.ok_or_else(|| missing("missing convs section"))?,
            act_bits,
        })
    }
}

/// Fills a section slot, rejecting duplicates.
fn store<T>(slot: &mut Option<T>, value: T, name: &'static str) -> Result<(), CodecError> {
    if slot.replace(value).is_some() {
        return Err(CodecError::Malformed(format!("duplicate {name} section")));
    }
    Ok(())
}

fn section_name(tag: u8) -> &'static str {
    match tag {
        SEC_SPEC => "spec",
        SEC_POOL => "pool",
        SEC_LUT => "lut",
        SEC_CONVS => "convs",
        _ => "unknown",
    }
}

// ---------------------------------------------------------------------------
// Section payloads
// ---------------------------------------------------------------------------

fn encode_spec(spec: &NetSpec) -> Result<Vec<u8>, CodecError> {
    serde_json::to_string(spec)
        .map(String::into_bytes)
        .map_err(|e| CodecError::Malformed(format!("spec: {e}")))
}

fn decode_spec(payload: &[u8]) -> Result<NetSpec, CodecError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| CodecError::Malformed("spec section is not UTF-8".into()))?;
    serde_json::from_str(text).map_err(|e| CodecError::Malformed(format!("spec: {e}")))
}

fn encode_pool(pool: &WeightPool) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, pool.len() as u64);
    write_varint(&mut out, pool.group_size() as u64);
    for v in pool.vectors() {
        for &x in v {
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }
    out
}

fn decode_pool(payload: &[u8]) -> Result<WeightPool, CodecError> {
    let mut r = ByteReader::new(payload);
    let s = r.varint("pool size")? as usize;
    let g = r.varint("pool group size")? as usize;
    if s == 0 || g == 0 {
        return Err(CodecError::Malformed(format!("empty pool ({s} vectors of {g})")));
    }
    // Claimed element count must fit the remaining payload *before* any
    // allocation: a crafted varint must be a typed error, not a
    // capacity-overflow panic or a huge allocation.
    let needed = s
        .checked_mul(g)
        .and_then(|e| e.checked_mul(4))
        .ok_or_else(|| CodecError::Malformed(format!("pool of {s}x{g} overflows")))?;
    if needed > r.remaining() {
        return Err(CodecError::Truncated("pool vector elements"));
    }
    let mut vectors = Vec::with_capacity(s);
    for _ in 0..s {
        let mut v = Vec::with_capacity(g);
        for _ in 0..g {
            v.push(f32::from_bits(r.u32le("pool vector element")?));
        }
        vectors.push(v);
    }
    r.expect_empty("pool")?;
    Ok(WeightPool::from_vectors(vectors))
}

fn encode_lut(lut: &LookupTable) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    write_varint(&mut out, lut.group_size() as u64);
    write_varint(&mut out, lut.pool_size() as u64);
    out.push(lut.bits());
    out.push(match lut.order() {
        LutOrder::InputOriented => 0,
        LutOrder::WeightOriented => 1,
    });
    out.extend_from_slice(&lut.scale().to_bits().to_le_bytes());
    let bits = u32::from(lut.bits());
    let (lo, hi) = (-(1i64 << (bits - 1)), (1i64 << (bits - 1)) - 1);
    let mut w = BitWriter::new();
    for &code in lut.codes() {
        if i64::from(code) < lo || i64::from(code) > hi {
            return Err(CodecError::Malformed(format!(
                "lut code {code} does not fit the table's {bits}-bit width"
            )));
        }
        w.write_bits(code as u32 as u64, bits);
    }
    out.extend_from_slice(&w.into_bytes());
    Ok(out)
}

fn decode_lut(payload: &[u8]) -> Result<LookupTable, CodecError> {
    let mut r = ByteReader::new(payload);
    let group = r.varint("lut group size")? as usize;
    let pool_size = r.varint("lut pool size")? as usize;
    let bits = r.u8("lut bits")?;
    let order = match r.u8("lut order")? {
        0 => LutOrder::InputOriented,
        1 => LutOrder::WeightOriented,
        other => return Err(CodecError::Malformed(format!("unknown lut order {other}"))),
    };
    let scale = f32::from_bits(r.u32le("lut scale")?);
    if group == 0 || group > 12 || pool_size == 0 || !(2..=16).contains(&bits) {
        return Err(CodecError::Malformed(format!(
            "implausible lut shape: group {group}, pool {pool_size}, {bits} bits"
        )));
    }
    // Shape is bounded (group <= 12 checked above), but pool_size comes
    // from the wire: the code count and its bit cost must fit the
    // remaining payload before allocating.
    let count = pool_size
        .checked_mul(1usize << group)
        .ok_or_else(|| CodecError::Malformed(format!("lut of {pool_size} << {group} overflows")))?;
    let width = u32::from(bits);
    let needed_bits = (count as u64)
        .checked_mul(u64::from(width))
        .ok_or_else(|| CodecError::Malformed(format!("lut of {count} codes overflows")))?;
    if needed_bits.div_ceil(8) > r.remaining() as u64 {
        return Err(CodecError::Truncated("lut codes"));
    }
    let mut b = BitReader::new(r.rest());
    let mut codes = Vec::with_capacity(count);
    for _ in 0..count {
        let raw = b.read_bits(width, "lut code")? as u32;
        codes.push(sign_extend(raw, width));
    }
    LookupTable::from_parts(group, pool_size, bits, scale, order, codes)
        .map_err(CodecError::Malformed)
}

fn encode_convs(convs: &[ConvPayload]) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, convs.len() as u64);
    for conv in convs {
        match conv {
            ConvPayload::Pooled { indices } => {
                out.push(0);
                write_varint(&mut out, indices.len() as u64);
                let coding = IndexCoding::choose(indices);
                coding.write_header(&mut out);
                let stream = coding.encode_stream(indices);
                write_varint(&mut out, stream.len() as u64);
                out.extend_from_slice(&stream);
            }
            ConvPayload::Direct { weights, scale } => {
                out.push(1);
                write_varint(&mut out, weights.len() as u64);
                out.extend_from_slice(&scale.to_bits().to_le_bytes());
                out.extend(weights.iter().map(|&w| w as u8));
            }
        }
    }
    out
}

fn decode_convs(payload: &[u8]) -> Result<Vec<ConvPayload>, CodecError> {
    let mut r = ByteReader::new(payload);
    let n = r.varint("conv count")? as usize;
    // Each conv costs at least two bytes on the wire.
    if n > r.remaining() / 2 + 1 {
        return Err(CodecError::Malformed(format!(
            "{n} convs in a {}-byte section",
            payload.len()
        )));
    }
    let mut convs = Vec::with_capacity(n);
    for _ in 0..n {
        match r.u8("conv kind")? {
            0 => {
                let count = r.varint("index count")? as usize;
                let coding = IndexCoding::read_header(&mut r)?;
                let stream_len = r.varint("index stream length")? as usize;
                let stream = r.take(stream_len, "index stream")?;
                // Every coding spends >= 1 bit per index except raw at
                // width 0, where the whole stream is implicit; cap that
                // case by the section size so a crafted count cannot
                // balloon the decode.
                let max_count = match coding {
                    IndexCoding::Raw { width: 0 } => payload.len().saturating_mul(8),
                    _ => stream.len().saturating_mul(8),
                };
                if count > max_count {
                    return Err(CodecError::Malformed(format!(
                        "{count} indices cannot fit a {}-byte stream",
                        stream.len()
                    )));
                }
                let indices = coding.decode_stream(stream, count)?;
                convs.push(ConvPayload::Pooled { indices });
            }
            1 => {
                let count = r.varint("weight count")? as usize;
                let scale = f32::from_bits(r.u32le("weight scale")?);
                let bytes = r.take(count, "direct weights")?;
                let weights = bytes.iter().map(|&b| b as i8).collect();
                convs.push(ConvPayload::Direct { weights, scale });
            }
            other => {
                return Err(CodecError::Malformed(format!("unknown conv payload kind {other}")))
            }
        }
    }
    r.expect_empty("convs")?;
    Ok(convs)
}

// ---------------------------------------------------------------------------
// Index-stream coding
// ---------------------------------------------------------------------------

/// How one pooled layer's index stream is coded.
///
/// The encoder measures the layer's index histogram and picks whichever
/// representation is smallest *for that layer*:
///
/// * `Raw` — fixed width at the stream's own `ceil(log2(max+1))` bits:
///   the fallback whenever entropy coding would expand the stream (e.g.
///   near-uniform index usage, where fixed width already sits on the
///   entropy).
/// * `Rice` — Rice/Golomb codes of the raw index values with per-layer
///   parameter `k` (quotient in unary, remainder in `k` bits).
/// * `RiceRemap` — Rice codes of frequency ranks: a small rank→index
///   table (stored with the layer) maps the most frequent index to rank
///   0, which turns any skewed histogram into the decaying shape Rice
///   coding wants. The table's 8 bits/entry are charged against the mode
///   when choosing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexCoding {
    /// Fixed-width indices at `width` bits each.
    Raw {
        /// Bits per index (0 when every index is 0).
        width: u8,
    },
    /// Rice codes of the raw index values.
    Rice {
        /// The Rice parameter (remainder width).
        k: u8,
    },
    /// Rice codes of frequency ranks via a rank→index side table.
    RiceRemap {
        /// The Rice parameter (remainder width).
        k: u8,
        /// `table[rank]` is the pool index with that frequency rank.
        table: Vec<u8>,
    },
}

impl IndexCoding {
    /// Measures `indices` and picks the smallest representation.
    pub fn choose(indices: &[u8]) -> Self {
        if indices.is_empty() {
            return IndexCoding::Raw { width: 0 };
        }
        let hist = histogram(indices);
        let max = indices.iter().copied().max().expect("non-empty") as u32;
        let width = bits_for(max);
        let mut best = IndexCoding::Raw { width: width as u8 };
        let mut best_bits = indices.len() as u64 * u64::from(width);

        for k in 0..=MAX_RICE_K {
            let bits = rice_cost(&hist, u32::from(k));
            if bits < best_bits {
                best = IndexCoding::Rice { k };
                best_bits = bits;
            }
        }

        // Frequency-rank remap: most frequent symbol becomes rank 0.
        let mut by_freq: Vec<(u8, u64)> =
            hist.iter().enumerate().filter(|&(_, &c)| c > 0).map(|(v, &c)| (v as u8, c)).collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut rank_hist = [0u64; 256];
        for (rank, &(_, count)) in by_freq.iter().enumerate() {
            rank_hist[rank] = count;
        }
        let table: Vec<u8> = by_freq.iter().map(|&(v, _)| v).collect();
        let table_bits = 8 * table.len() as u64;
        for k in 0..=MAX_RICE_K {
            let bits = table_bits + rice_cost(&rank_hist, u32::from(k));
            if bits < best_bits {
                best = IndexCoding::RiceRemap { k, table: table.clone() };
                best_bits = bits;
            }
        }
        best
    }

    /// Total coded bits `encode_stream` will produce for `indices` under
    /// this coding, side table included (used by the size accounting; the
    /// actual stream is byte-padded).
    pub fn coded_bits(&self, indices: &[u8]) -> u64 {
        let hist = histogram(indices);
        match self {
            IndexCoding::Raw { width } => indices.len() as u64 * u64::from(*width),
            IndexCoding::Rice { k } => rice_cost(&hist, u32::from(*k)),
            IndexCoding::RiceRemap { k, table } => {
                let mut rank_hist = [0u64; 256];
                for (rank, &v) in table.iter().enumerate() {
                    rank_hist[rank] = hist[v as usize];
                }
                8 * table.len() as u64 + rice_cost(&rank_hist, u32::from(*k))
            }
        }
    }

    /// Short human-readable description (`raw[4b]`, `rice[k=1]`, ...).
    pub fn describe(&self) -> String {
        match self {
            IndexCoding::Raw { width } => format!("raw[{width}b]"),
            IndexCoding::Rice { k } => format!("rice[k={k}]"),
            IndexCoding::RiceRemap { k, table } => {
                format!("rice+remap[k={k},{} syms]", table.len())
            }
        }
    }

    fn write_header(&self, out: &mut Vec<u8>) {
        match self {
            IndexCoding::Raw { width } => {
                out.push(0);
                out.push(*width);
            }
            IndexCoding::Rice { k } => {
                out.push(1);
                out.push(*k);
            }
            IndexCoding::RiceRemap { k, table } => {
                out.push(2);
                out.push(*k);
                write_varint(out, table.len() as u64);
                out.extend_from_slice(table);
            }
        }
    }

    fn read_header(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.u8("index coding mode")? {
            0 => {
                let width = r.u8("raw index width")?;
                if width > 8 {
                    return Err(CodecError::Malformed(format!("raw index width {width} > 8")));
                }
                Ok(IndexCoding::Raw { width })
            }
            1 => {
                let k = r.u8("rice parameter")?;
                if k > MAX_RICE_K {
                    return Err(CodecError::Malformed(format!(
                        "rice parameter {k} > {MAX_RICE_K}"
                    )));
                }
                Ok(IndexCoding::Rice { k })
            }
            2 => {
                let k = r.u8("rice parameter")?;
                if k > MAX_RICE_K {
                    return Err(CodecError::Malformed(format!(
                        "rice parameter {k} > {MAX_RICE_K}"
                    )));
                }
                let len = r.varint("remap table length")? as usize;
                if len == 0 || len > 256 {
                    return Err(CodecError::Malformed(format!("remap table of {len} entries")));
                }
                let table = r.take(len, "remap table")?.to_vec();
                Ok(IndexCoding::RiceRemap { k, table })
            }
            other => Err(CodecError::Malformed(format!("unknown index coding mode {other}"))),
        }
    }

    fn encode_stream(&self, indices: &[u8]) -> Vec<u8> {
        let mut w = BitWriter::new();
        match self {
            IndexCoding::Raw { width } => {
                for &v in indices {
                    w.write_bits(u64::from(v), u32::from(*width));
                }
            }
            IndexCoding::Rice { k } => {
                for &v in indices {
                    w.write_rice(u32::from(v), u32::from(*k));
                }
            }
            IndexCoding::RiceRemap { k, table } => {
                let mut rank_of = [0u8; 256];
                for (rank, &v) in table.iter().enumerate() {
                    rank_of[v as usize] = rank as u8;
                }
                for &v in indices {
                    w.write_rice(u32::from(rank_of[v as usize]), u32::from(*k));
                }
            }
        }
        w.into_bytes()
    }

    fn decode_stream(&self, stream: &[u8], count: usize) -> Result<Vec<u8>, CodecError> {
        let mut b = BitReader::new(stream);
        let mut out = Vec::with_capacity(count);
        match self {
            IndexCoding::Raw { width } => {
                for _ in 0..count {
                    out.push(b.read_bits(u32::from(*width), "raw index")? as u8);
                }
            }
            IndexCoding::Rice { k } => {
                for _ in 0..count {
                    let v = b.read_rice(u32::from(*k), "index")?;
                    let v = u8::try_from(v).map_err(|_| {
                        CodecError::Malformed(format!("rice-coded index {v} exceeds a byte"))
                    })?;
                    out.push(v);
                }
            }
            IndexCoding::RiceRemap { k, table } => {
                for _ in 0..count {
                    let rank = b.read_rice(u32::from(*k), "index rank")? as usize;
                    let v = *table.get(rank).ok_or_else(|| {
                        CodecError::Malformed(format!(
                            "index rank {rank} outside the {}-entry remap table",
                            table.len()
                        ))
                    })?;
                    out.push(v);
                }
            }
        }
        Ok(out)
    }
}

/// Sum of Rice-coded bit lengths over a value histogram.
fn rice_cost(hist: &[u64; 256], k: u32) -> u64 {
    hist.iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(v, &c)| c * ((v as u64 >> k) + 1 + u64::from(k)))
        .sum()
}

/// Bits needed to represent `max` (0 for 0).
fn bits_for(max: u32) -> u32 {
    32 - max.leading_zeros()
}

/// Sign-extends a `width`-bit two's-complement value.
fn sign_extend(raw: u32, width: u32) -> i32 {
    if width == 32 || raw & (1 << (width - 1)) == 0 {
        raw as i32
    } else {
        (raw | !((1u32 << width) - 1)) as i32
    }
}

// ---------------------------------------------------------------------------
// Per-layer statistics (wp_bundle inspect, bundle_size bench)
// ---------------------------------------------------------------------------

/// One pooled layer's index-stream coding report.
#[derive(Debug, Clone)]
pub struct IndexStreamStats {
    /// Position in [`DeployBundle::convs`].
    pub conv: usize,
    /// Indices in the stream.
    pub count: usize,
    /// Empirical entropy in bits per index ([`stream_entropy_bits`]).
    pub entropy_bits: f64,
    /// WPB coded size in bits per index (remap table amortized in).
    pub coded_bits: f64,
    /// The chosen coding, human readable.
    pub coding: String,
}

/// Per-pooled-layer coding statistics for `bundle` (direct convs carry no
/// index stream and are omitted).
pub fn index_stream_stats(bundle: &DeployBundle) -> Vec<IndexStreamStats> {
    bundle
        .convs
        .iter()
        .enumerate()
        .filter_map(|(conv, payload)| match payload {
            ConvPayload::Pooled { indices } => {
                let coding = IndexCoding::choose(indices);
                let coded = coding.coded_bits(indices);
                let per_index =
                    if indices.is_empty() { 0.0 } else { coded as f64 / indices.len() as f64 };
                Some(IndexStreamStats {
                    conv,
                    count: indices.len(),
                    entropy_bits: stream_entropy_bits(indices),
                    coded_bits: per_index,
                    coding: coding.describe(),
                })
            }
            ConvPayload::Direct { .. } => None,
        })
        .collect()
}

/// Empirical entropy of one index stream in bits per index.
///
/// An empty stream has zero entropy (not NaN): there is nothing to code.
pub fn stream_entropy_bits(indices: &[u8]) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    let total = indices.len() as f64;
    histogram(indices)
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// Byte-value histogram of one index stream.
fn histogram(indices: &[u8]) -> [u64; 256] {
    let mut hist = [0u64; 256];
    for &i in indices {
        hist[i as usize] += 1;
    }
    hist
}

// ---------------------------------------------------------------------------
// Primitives: varints, checksums, bitstreams
// ---------------------------------------------------------------------------

/// Appends a LEB128 varint.
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `tag`, varint length, `payload`, and the payload's CRC-32.
fn write_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    write_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// CRC-32 (IEEE 802.3, reflected) lookup table.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut j = 0;
        while j < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            j += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// A bounds-checked byte cursor; every overrun is a loud
/// [`CodecError::Truncated`] naming what was being read.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn is_empty(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn rest(&self) -> &'a [u8] {
        &self.bytes[self.pos..]
    }

    fn expect_empty(&self, section: &'static str) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::Malformed(format!(
                "{} trailing bytes in {section} section",
                self.bytes.len() - self.pos
            )))
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.bytes.len() - self.pos < n {
            return Err(CodecError::Truncated(what));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32le(&mut self, what: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4-byte slice")))
    }

    fn varint(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8(what)?;
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(CodecError::Malformed(format!("varint too long reading {what}")))
    }
}

/// LSB-first bit appender.
struct BitWriter {
    bytes: Vec<u8>,
    used: u8,
}

impl BitWriter {
    fn new() -> Self {
        Self { bytes: Vec::new(), used: 0 }
    }

    fn push_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            *self.bytes.last_mut().expect("pushed above") |= 1 << self.used;
        }
        self.used = (self.used + 1) & 7;
    }

    /// Writes the low `n` bits of `v`, LSB first.
    fn write_bits(&mut self, v: u64, n: u32) {
        for i in 0..n {
            self.push_bit((v >> i) & 1 == 1);
        }
    }

    /// Rice code: quotient `v >> k` in unary (ones, zero-terminated),
    /// then the low `k` remainder bits.
    fn write_rice(&mut self, v: u32, k: u32) {
        for _ in 0..(v >> k) {
            self.push_bit(true);
        }
        self.push_bit(false);
        self.write_bits(u64::from(v), k);
    }

    fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// LSB-first bit cursor over a byte slice.
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn read_bit(&mut self, what: &'static str) -> Result<bool, CodecError> {
        let byte = (self.pos / 8) as usize;
        if byte >= self.bytes.len() {
            return Err(CodecError::Truncated(what));
        }
        let bit = (self.bytes[byte] >> (self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    fn read_bits(&mut self, n: u32, what: &'static str) -> Result<u64, CodecError> {
        let mut v = 0u64;
        for i in 0..n {
            if self.read_bit(what)? {
                v |= 1 << i;
            }
        }
        Ok(v)
    }

    fn read_rice(&mut self, k: u32, what: &'static str) -> Result<u32, CodecError> {
        let mut q = 0u32;
        while self.read_bit(what)? {
            q += 1;
            if q > 4096 {
                return Err(CodecError::Malformed(format!("runaway rice quotient reading {what}")));
            }
        }
        let r = self.read_bits(k, what)? as u32;
        Ok((q << k) | r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netspec::{ConvSpec, LayerSpec};
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    /// A hand-built bundle exercising both payload kinds and a controllable
    /// index distribution (`skew` 0 = uniform, larger = more peaked).
    fn fabricated_bundle(seed: u64, pool_size: usize, order: LutOrder, skew: u32) -> DeployBundle {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let group = 8usize;
        let vectors: Vec<Vec<f32>> = (0..pool_size)
            .map(|_| (0..group).map(|_| rng.gen_range(-0.5f32..0.5)).collect())
            .collect();
        let pool = WeightPool::from_vectors(vectors);
        let lut = LookupTable::build(&pool, 8, order);
        let spec = NetSpec {
            name: format!("fab-{seed}"),
            input: (3, 6, 6),
            classes: 4,
            layers: vec![
                LayerSpec::Conv(ConvSpec {
                    in_ch: 3,
                    out_ch: 8,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    compressed: false,
                }),
                LayerSpec::Conv(ConvSpec {
                    in_ch: 8,
                    out_ch: 16,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    compressed: true,
                }),
                LayerSpec::GlobalAvgPool,
                LayerSpec::Dense { in_features: 16, out_features: 4, compressed: false },
            ],
        };
        let direct: Vec<i8> = (0..8 * 3 * 9).map(|_| rng.gen_range(-127i32..=127) as i8).collect();
        let indices: Vec<u8> = (0..16 * 9)
            .map(|_| {
                let mut v = rng.gen_range(0..pool_size);
                for _ in 0..skew {
                    v = v.min(rng.gen_range(0..pool_size));
                }
                v as u8
            })
            .collect();
        DeployBundle {
            spec,
            pool,
            lut,
            convs: vec![
                ConvPayload::Direct { weights: direct, scale: 0.0625 },
                ConvPayload::Pooled { indices },
            ],
            act_bits: 8,
        }
    }

    #[test]
    fn wpb_round_trips_both_orders_and_payload_kinds() {
        for order in [LutOrder::InputOriented, LutOrder::WeightOriented] {
            for skew in [0, 3] {
                let b = fabricated_bundle(7, 16, order, skew);
                let bytes = WpbCodec.encode(&b).unwrap();
                assert_eq!(Format::sniff(&bytes), Format::Wpb);
                let back = WpbCodec.decode(&bytes).unwrap();
                assert_eq!(b, back);
            }
        }
    }

    #[test]
    fn json_and_wpb_decode_to_the_same_bundle() {
        let b = fabricated_bundle(9, 8, LutOrder::InputOriented, 2);
        let json = JsonCodec.encode(&b).unwrap();
        let wpb = WpbCodec.encode(&b).unwrap();
        assert_eq!(JsonCodec.decode(&json).unwrap(), WpbCodec.decode(&wpb).unwrap());
        assert!(wpb.len() < json.len(), "wpb {} vs json {}", wpb.len(), json.len());
    }

    #[test]
    fn empty_index_stream_round_trips() {
        let mut b = fabricated_bundle(3, 4, LutOrder::InputOriented, 0);
        b.convs[1] = ConvPayload::Pooled { indices: Vec::new() };
        let bytes = WpbCodec.encode(&b).unwrap();
        assert_eq!(WpbCodec.decode(&bytes).unwrap(), b);
    }

    #[test]
    fn stream_entropy_of_empty_stream_is_zero() {
        assert_eq!(stream_entropy_bits(&[]), 0.0);
        // Single-symbol streams are also zero-entropy, not NaN.
        assert_eq!(stream_entropy_bits(&[5; 100]), 0.0);
    }

    #[test]
    fn uniform_streams_fall_back_to_raw_fixed_width() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let uniform: Vec<u8> = (0..4096).map(|_| rng.gen_range(0..16) as u8).collect();
        let coding = IndexCoding::choose(&uniform);
        assert_eq!(coding, IndexCoding::Raw { width: 4 }, "uniform: {}", coding.describe());
        assert_eq!(coding.coded_bits(&uniform), 4 * 4096);
    }

    #[test]
    fn skewed_streams_choose_rice_and_beat_fixed_width() {
        // Geometric-ish: symbol v with probability ~2^-v.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let skewed: Vec<u8> = (0..4096)
            .map(|_| {
                let mut v = 0u8;
                while v < 15 && rng.gen_range(0..2) == 0 {
                    v += 1;
                }
                v
            })
            .collect();
        let coding = IndexCoding::choose(&skewed);
        assert!(
            matches!(coding, IndexCoding::Rice { .. } | IndexCoding::RiceRemap { .. }),
            "skewed stream should entropy-code, chose {}",
            coding.describe()
        );
        let coded = coding.coded_bits(&skewed) as f64 / skewed.len() as f64;
        let fixed = 4.0;
        let entropy = stream_entropy_bits(&skewed);
        assert!(coded < fixed, "coded {coded:.3} must beat fixed {fixed}");
        assert!(coded <= entropy * 1.15 + 0.2, "coded {coded:.3} vs entropy {entropy:.3}");
    }

    #[test]
    fn remap_handles_skew_on_arbitrary_symbols() {
        // Heavy mass on a *high* index: plain Rice on raw values is poor,
        // the rank remap makes it geometric again.
        let mut stream = vec![200u8; 1000];
        stream.extend(std::iter::repeat_n(13u8, 100));
        stream.extend(std::iter::repeat_n(77u8, 10));
        let coding = IndexCoding::choose(&stream);
        assert!(
            matches!(coding, IndexCoding::RiceRemap { .. }),
            "expected remap, chose {}",
            coding.describe()
        );
        // Round trip through the actual bitstream.
        let stream_bytes = coding.encode_stream(&stream);
        let back = coding.decode_stream(&stream_bytes, stream.len()).unwrap();
        assert_eq!(back, stream);
    }

    #[test]
    fn truncated_files_fail_loudly() {
        let b = fabricated_bundle(5, 8, LutOrder::WeightOriented, 1);
        let bytes = WpbCodec.encode(&b).unwrap();
        // Every proper prefix must error, never yield a bundle.
        for cut in [3, 5, 7, bytes.len() / 4, bytes.len() / 2, bytes.len() - 5, bytes.len() - 1] {
            let err = WpbCodec.decode(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let b = fabricated_bundle(6, 8, LutOrder::InputOriented, 0);
        let mut bytes = WpbCodec.encode(&b).unwrap();
        // Flip a bit inside the convs payload (late in the buffer, past
        // every header byte).
        let at = bytes.len() - 40;
        bytes[at] ^= 0x10;
        match WpbCodec.decode(&bytes) {
            Err(CodecError::Checksum(_)) | Err(CodecError::Malformed(_)) => {}
            other => panic!("corruption must fail, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_header_fails_the_header_checksum() {
        // act_bits lives outside every section; a flipped bit there must
        // not decode into a quietly wrong bundle.
        let b = fabricated_bundle(6, 8, LutOrder::InputOriented, 0);
        let mut bytes = WpbCodec.encode(&b).unwrap();
        bytes[5] ^= 0x04; // act_bits
        assert!(matches!(WpbCodec.decode(&bytes), Err(CodecError::Checksum("header"))));
    }

    #[test]
    fn hostile_counts_are_errors_not_panics() {
        // Hand-build sections whose varint counts claim far more elements
        // than the payload holds; decode must return typed errors (never
        // a capacity-overflow panic or a giant allocation).
        let huge_pool = {
            let mut p = Vec::new();
            write_varint(&mut p, 1 << 62); // S
            write_varint(&mut p, 8); // G
            p
        };
        assert!(decode_pool(&huge_pool).is_err());

        let huge_lut = {
            let mut p = Vec::new();
            write_varint(&mut p, 12); // group
            write_varint(&mut p, 1 << 60); // pool_size
            p.push(8); // bits
            p.push(0); // order
            p.extend_from_slice(&1.0f32.to_bits().to_le_bytes());
            p
        };
        assert!(decode_lut(&huge_lut).is_err());

        let huge_convs = {
            let mut p = Vec::new();
            write_varint(&mut p, 1); // one conv
            p.push(0); // pooled
            write_varint(&mut p, 1 << 50); // indices "count"
            p.push(0); // raw mode
            p.push(0); // width 0 (zero stream bits per index)
            write_varint(&mut p, 0); // empty stream
            p
        };
        assert!(decode_convs(&huge_convs).is_err());

        let many_convs = {
            let mut p = Vec::new();
            write_varint(&mut p, 1 << 55);
            p
        };
        assert!(decode_convs(&many_convs).is_err());
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let b = fabricated_bundle(8, 4, LutOrder::InputOriented, 0);
        let bytes = WpbCodec.encode(&b).unwrap();
        assert!(matches!(WpbCodec.decode(b"JSON{}"), Err(CodecError::BadMagic)));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert!(matches!(WpbCodec.decode(&wrong_version), Err(CodecError::UnsupportedVersion(99))));
    }

    #[test]
    fn format_sniffing_and_extensions() {
        assert_eq!(Format::sniff(b"WPB1...."), Format::Wpb);
        assert_eq!(Format::sniff(b"{\"spec\":..."), Format::Json);
        assert_eq!(Format::for_path(Path::new("m.wpb")), Format::Wpb);
        assert_eq!(Format::for_path(Path::new("m.WPB")), Format::Wpb);
        assert_eq!(Format::for_path(Path::new("m.json")), Format::Json);
        assert_eq!(Format::for_path(Path::new("m")), Format::Json);
        assert_eq!(Format::Wpb.codec().format(), Format::Wpb);
        assert_eq!(Format::Json.codec().format(), Format::Json);
    }

    #[test]
    fn stats_cover_pooled_layers_only() {
        let b = fabricated_bundle(11, 16, LutOrder::InputOriented, 2);
        let stats = index_stream_stats(&b);
        assert_eq!(stats.len(), 1, "one pooled conv");
        assert_eq!(stats[0].conv, 1);
        assert_eq!(stats[0].count, 16 * 9);
        assert!(stats[0].entropy_bits > 0.0);
        assert!(stats[0].coded_bits > 0.0);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn bitstream_primitives_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_rice(37, 3);
        w.write_rice(0, 0);
        w.write_bits(0x5A5A, 16);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4, "t").unwrap(), 0b1011);
        assert_eq!(r.read_rice(3, "t").unwrap(), 37);
        assert_eq!(r.read_rice(0, "t").unwrap(), 0);
        assert_eq!(r.read_bits(16, "t").unwrap(), 0x5A5A);
        assert!(r.read_bits(64, "past the end").is_err());
    }

    #[test]
    fn sign_extension_is_exact() {
        assert_eq!(sign_extend(0b1111_1111, 8), -1);
        assert_eq!(sign_extend(0b0111_1111, 8), 127);
        assert_eq!(sign_extend(0b10, 2), -2);
        assert_eq!(sign_extend(5, 16), 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// WPB and JSON reconstruct the identical bundle for arbitrary
        /// pools, orders, skews and payload mixes.
        #[test]
        fn prop_wpb_round_trip_equals_json(
            seed in 0u64..1000,
            pool_size in 2usize..32,
            order_bit in 0u8..2,
            skew in 0u32..5,
        ) {
            let order = if order_bit == 0 {
                LutOrder::InputOriented
            } else {
                LutOrder::WeightOriented
            };
            let b = fabricated_bundle(seed, pool_size, order, skew);
            let wpb = WpbCodec.encode(&b).unwrap();
            let json = JsonCodec.encode(&b).unwrap();
            prop_assert_eq!(&WpbCodec.decode(&wpb).unwrap(), &b);
            prop_assert_eq!(&JsonCodec.decode(&json).unwrap(), &b);
        }

        /// Every index coding the chooser can emit decodes its own stream
        /// back bit-identically.
        #[test]
        fn prop_index_coding_round_trips(seed in 0u64..500, skew in 0u32..6, n in 0usize..600) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let indices: Vec<u8> = (0..n)
                .map(|_| {
                    let mut v = rng.gen_range(0..250u32);
                    for _ in 0..skew {
                        v = v.min(rng.gen_range(0..250));
                    }
                    v as u8
                })
                .collect();
            let coding = IndexCoding::choose(&indices);
            let stream = coding.encode_stream(&indices);
            let back = coding.decode_stream(&stream, indices.len()).unwrap();
            prop_assert_eq!(back, indices);
        }

        /// The chooser never does worse than the raw fixed-width fallback.
        #[test]
        fn prop_chosen_coding_never_expands(seed in 0u64..500, skew in 0u32..6) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let indices: Vec<u8> = (0..512)
                .map(|_| {
                    let mut v = rng.gen_range(0..64u32);
                    for _ in 0..skew {
                        v = v.min(rng.gen_range(0..64));
                    }
                    v as u8
                })
                .collect();
            let max = indices.iter().copied().max().unwrap_or(0);
            let raw_bits = indices.len() as u64 * u64::from(bits_for(u32::from(max)));
            let coding = IndexCoding::choose(&indices);
            prop_assert!(coding.coded_bits(&indices) <= raw_bits);
        }
    }
}
