//! Bundle (de)serialization codecs: JSON and the entropy-coded binary
//! **WPB** format.
//!
//! A [`DeployBundle`]'s dominant storage term is its pool-index streams
//! (SWIS and CIMPool make the same observation), and
//! [`DeployBundle::index_entropy_bits`] measures how far the fixed-width
//! encoding sits above the empirical entropy. WPB closes that gap: each
//! pooled layer's index stream is Rice/Golomb coded with a per-layer
//! parameter chosen from the layer's measured index statistics (with an
//! optional frequency-rank remap for skewed streams, and a raw
//! fixed-width fallback whenever entropy coding would *expand* the
//! stream), the LUT is bit-packed at its entry width, and pool vectors
//! and direct weights are stored as raw little-endian bytes.
//!
//! # WPB layout
//!
//! ```text
//! "WPB1"  magic (4 bytes)
//! u8      version (1 = Rice-era streams, 2 = at least one ANS stream)
//! u8      act_bits
//! u32le   CRC-32 of the six header bytes above
//! then sections, each:
//!   u8      tag        1=spec  2=pool  3=lut  4=convs
//!   varint  payload length (LEB128)
//!   [...]   payload
//!   u32le   CRC-32 (IEEE) of the payload
//! ```
//!
//! Unknown section tags are skipped (forward compatibility); a missing or
//! duplicated known section, a failed checksum, or a truncated stream all
//! fail loudly with a typed [`CodecError`]. Multi-byte integers are
//! little-endian; bitstreams fill bytes LSB-first.
//!
//! Decoding is **streaming and section-oriented**: the one real decoder
//! ([`WpbCodec::decode_from`]) pulls sections from any [`std::io::Read`]
//! through a [`super::stream::SectionReader`], verifying each CRC and
//! decoding into destinations preallocated from validated counts — peak
//! transient memory is bounded by the largest section, never the whole
//! file. The buffer entry points ([`BundleCodec::decode`],
//! [`DeployBundle::from_bytes`]) run the same streaming decoder over the
//! slice, so the two paths cannot drift apart.
//!
//! Section payloads:
//!
//! * **spec** — the [`NetSpec`] as JSON bytes (shapes are tiny; keeping
//!   them readable costs nothing next to the index streams).
//! * **pool** — `varint S`, `varint G`, then `S·G` f32 bit patterns.
//! * **lut** — `varint G`, `varint S`, `u8 bits`, `u8 order`, `f32 scale`,
//!   then the codes bit-packed at `bits`-bit two's complement in storage
//!   order.
//! * **convs** — `varint n`, then per conv a `u8` kind: direct convs store
//!   `varint n`, `f32 scale` and raw int8 bytes; pooled convs store
//!   `varint n`, a coding-mode header and the coded bitstream (see
//!   [`IndexCoding`]). Because the spec and pool sections precede convs in
//!   every stream this codec writes, pooled index counts are validated
//!   against the spec-derived expectation before anything is allocated.

use super::ans;
use super::stream::{DecodeStats, SectionReader};
use super::{ConvPayload, DeployBundle};
use crate::netspec::{LayerSpec, NetSpec};
use crate::{LookupTable, LutOrder, WeightPool};
use std::fmt;
use std::io::Read;
use std::path::Path;

/// Magic bytes opening every WPB file.
pub const WPB_MAGIC: [u8; 4] = *b"WPB1";

/// The newest WPB format version this codec reads and writes. Version 2
/// added the per-layer ANS index-stream coding; bundles whose every
/// stream still codes as Rice/raw are written as version 1 so pre-ANS
/// readers keep loading them.
pub const WPB_VERSION: u8 = 2;

/// The oldest WPB version this codec still reads.
pub const WPB_MIN_VERSION: u8 = 1;

/// Largest Rice parameter the encoder considers (indices are bytes, so
/// larger parameters always lose to the raw fallback).
const MAX_RICE_K: u8 = 7;

/// Section tags.
const SEC_SPEC: u8 = 1;
const SEC_POOL: u8 = 2;
const SEC_LUT: u8 = 3;
const SEC_CONVS: u8 = 4;

/// Why encoding or decoding a bundle failed.
#[derive(Debug)]
pub enum CodecError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The file's version is newer than this codec understands.
    UnsupportedVersion(u8),
    /// The buffer ended before the named piece could be read.
    Truncated(&'static str),
    /// A section's checksum did not match its payload.
    Checksum(&'static str),
    /// The bytes parsed but violate the format's invariants.
    Malformed(String),
    /// The underlying stream failed with a real I/O error (not EOF —
    /// running dry is [`CodecError::Truncated`]).
    Io(std::io::Error),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a WPB bundle (bad magic)"),
            CodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported WPB version {v} (this codec reads {WPB_VERSION})")
            }
            CodecError::Truncated(what) => write!(f, "truncated bundle: {what}"),
            CodecError::Checksum(section) => {
                write!(f, "checksum mismatch in {section} section (corrupt or truncated file)")
            }
            CodecError::Malformed(m) => write!(f, "malformed bundle: {m}"),
            CodecError::Io(e) => write!(f, "bundle stream i/o error: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A bundle serialization format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable JSON (the original interchange format).
    Json,
    /// Entropy-coded binary WPB.
    Wpb,
}

impl Format {
    /// Detects the format of serialized bytes from their magic prefix.
    pub fn sniff(bytes: &[u8]) -> Self {
        if bytes.starts_with(&WPB_MAGIC) {
            Format::Wpb
        } else {
            Format::Json
        }
    }

    /// Picks a format from a path's extension: `.wpb` (case-insensitive)
    /// is WPB, anything else JSON.
    pub fn for_path(path: &Path) -> Self {
        match path.extension().and_then(|e| e.to_str()) {
            Some(ext) if ext.eq_ignore_ascii_case("wpb") => Format::Wpb,
            _ => Format::Json,
        }
    }

    /// The codec implementing this format (with the default [`Auto`]
    /// index-codec preference; use [`EncodeOptions`] to force one).
    ///
    /// [`Auto`]: IndexCodecPref::Auto
    pub fn codec(self) -> &'static dyn BundleCodec {
        static WPB: WpbCodec = WpbCodec { pref: IndexCodecPref::Auto };
        match self {
            Format::Json => &JsonCodec,
            Format::Wpb => &WPB,
        }
    }
}

/// Which index-stream entropy coder the WPB encoder may pick per layer.
///
/// [`Auto`](IndexCodecPref::Auto) measures each layer's histogram and
/// takes whichever coding is smallest in actual bits; the forced modes
/// exist for A/B comparisons (`wp_bundle convert --codec`) and for
/// pinning the Rice baseline in benchmarks. Decoding is unaffected — the
/// chosen coding is recorded per layer in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexCodecPref {
    /// Smallest of raw / Rice / Rice+remap / ANS, measured per layer.
    #[default]
    Auto,
    /// Restrict to the WPB v1 codings (raw / Rice / Rice+remap).
    Rice,
    /// Force tabled ANS on every non-empty stream.
    Ans,
}

impl IndexCodecPref {
    /// Short lowercase name (`auto`, `rice`, `ans`).
    pub fn name(self) -> &'static str {
        match self {
            IndexCodecPref::Auto => "auto",
            IndexCodecPref::Rice => "rice",
            IndexCodecPref::Ans => "ans",
        }
    }
}

impl std::str::FromStr for IndexCodecPref {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(IndexCodecPref::Auto),
            "rice" => Ok(IndexCodecPref::Rice),
            "ans" => Ok(IndexCodecPref::Ans),
            other => Err(format!("unknown index codec {other:?} (auto|rice|ans)")),
        }
    }
}

impl fmt::Display for IndexCodecPref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The one place a bundle's serialization is chosen: format plus
/// index-codec preference. [`DeployBundle::save`], [`DeployBundle::to_bytes`],
/// the `wp_bundle` CLI and the server registry all route through this,
/// so path-based and explicit-format call sites cannot disagree about
/// which codec a given target gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeOptions {
    format: Format,
    index_codec: IndexCodecPref,
}

impl EncodeOptions {
    /// Options for an explicit format with the default ([`Auto`]) index
    /// codec.
    ///
    /// [`Auto`]: IndexCodecPref::Auto
    pub fn new(format: Format) -> Self {
        Self { format, index_codec: IndexCodecPref::Auto }
    }

    /// The selection rule shared by every path-based writer: format from
    /// the extension ([`Format::for_path`]), [`Auto`] index codec.
    ///
    /// [`Auto`]: IndexCodecPref::Auto
    pub fn for_path(path: &Path) -> Self {
        Self::new(Format::for_path(path))
    }

    /// Forces a per-layer index codec (ignored by the JSON format, which
    /// has no coded streams).
    pub fn with_index_codec(mut self, pref: IndexCodecPref) -> Self {
        self.index_codec = pref;
        self
    }

    /// The chosen format.
    pub fn format(&self) -> Format {
        self.format
    }

    /// The chosen index-codec preference.
    pub fn index_codec(&self) -> IndexCodecPref {
        self.index_codec
    }

    /// Serializes `bundle` under these options.
    ///
    /// # Errors
    ///
    /// Returns any [`CodecError`] from the codec.
    pub fn encode(&self, bundle: &DeployBundle) -> Result<Vec<u8>, CodecError> {
        match self.format {
            Format::Json => JsonCodec.encode(bundle),
            Format::Wpb => WpbCodec::with_pref(self.index_codec).encode(bundle),
        }
    }
}

/// Format-agnostic bundle (de)serialization.
///
/// Both implementations are round-trip equal by construction:
/// `decode(encode(b)) == b` for every valid bundle (pinned by unit and
/// property tests, including both [`LutOrder`]s and both
/// [`ConvPayload`] kinds).
pub trait BundleCodec: Sync {
    /// The format this codec implements.
    fn format(&self) -> Format;

    /// Serializes `bundle` to bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] if the bundle violates the
    /// format's representable range (e.g. LUT codes outside their stated
    /// bitwidth).
    fn encode(&self, bundle: &DeployBundle) -> Result<Vec<u8>, CodecError>;

    /// Reconstructs a bundle from bytes produced by [`BundleCodec::encode`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`CodecError`]; truncated or corrupted input fails
    /// loudly rather than yielding a partial bundle.
    fn decode(&self, bytes: &[u8]) -> Result<DeployBundle, CodecError>;
}

/// The JSON codec (serde over the vendored shim).
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonCodec;

impl BundleCodec for JsonCodec {
    fn format(&self) -> Format {
        Format::Json
    }

    fn encode(&self, bundle: &DeployBundle) -> Result<Vec<u8>, CodecError> {
        serde_json::to_string(bundle)
            .map(String::into_bytes)
            .map_err(|e| CodecError::Malformed(format!("json: {e}")))
    }

    fn decode(&self, bytes: &[u8]) -> Result<DeployBundle, CodecError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| CodecError::Malformed("json bundle is not UTF-8".into()))?;
        serde_json::from_str(text).map_err(|e| CodecError::Malformed(format!("json: {e}")))
    }
}

/// The entropy-coded binary codec (see the module docs for the layout).
///
/// Carries the per-layer index-codec preference used at encode time;
/// decoding reads whatever coding each layer recorded.
#[derive(Debug, Clone, Copy, Default)]
pub struct WpbCodec {
    /// Index-stream codec preference applied to every pooled layer.
    pub pref: IndexCodecPref,
}

impl WpbCodec {
    /// A codec with a forced index-stream preference.
    pub fn with_pref(pref: IndexCodecPref) -> Self {
        Self { pref }
    }

    /// Streaming decode from any [`Read`]: sections are pulled one at a
    /// time through a [`SectionReader`], so peak transient memory is
    /// bounded by the largest section rather than the whole stream. This
    /// is *the* WPB decoder — the buffer path runs it over a slice.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CodecError`]; truncated or corrupted streams
    /// fail loudly rather than yielding a partial bundle.
    pub fn decode_from<R: Read>(reader: R) -> Result<DeployBundle, CodecError> {
        Self::decode_from_with_stats(reader).map(|(bundle, _)| bundle)
    }

    /// [`WpbCodec::decode_from`] plus [`DecodeStats`] accounting of what
    /// the decode buffered — the hook behind the "peak transient stays
    /// <= largest section" tests.
    ///
    /// # Errors
    ///
    /// As [`WpbCodec::decode_from`].
    pub fn decode_from_with_stats<R: Read>(
        reader: R,
    ) -> Result<(DeployBundle, DecodeStats), CodecError> {
        let mut r = SectionReader::new(reader);
        let act_bits = read_wpb_prologue(&mut r)?;

        let mut spec: Option<NetSpec> = None;
        let mut pool: Option<WeightPool> = None;
        let mut lut: Option<LookupTable> = None;
        let mut convs: Option<Vec<ConvPayload>> = None;
        while let Some(header) = r.next_section()? {
            let name = section_name(header.tag);
            match header.tag {
                SEC_SPEC => {
                    let payload = r.payload(&header, name)?;
                    let decoded = decode_spec(payload)?;
                    store(&mut spec, decoded, name)?;
                }
                SEC_POOL => {
                    let payload = r.payload(&header, name)?;
                    let decoded = decode_pool(payload)?;
                    store(&mut pool, decoded, name)?;
                }
                SEC_LUT => {
                    let payload = r.payload(&header, name)?;
                    let decoded = decode_lut(payload)?;
                    store(&mut lut, decoded, name)?;
                }
                SEC_CONVS => {
                    // The spec and pool sections precede convs in every
                    // stream we write, so pooled index counts can be
                    // validated against the spec-derived expectation and
                    // destinations preallocated exactly.
                    let ctx = ConvContext::from_sections(spec.as_ref(), pool.as_ref());
                    let payload = r.payload(&header, name)?;
                    let decoded = decode_convs(payload, ctx.as_ref())?;
                    store(&mut convs, decoded, name)?;
                }
                // Unknown sections are CRC-checked and skipped in chunks
                // (never buffered) so older readers survive additive
                // format growth without paying for it.
                _ => r.skip_payload(&header)?,
            }
        }
        let missing = |name: &'static str| CodecError::Truncated(name);
        let bundle = DeployBundle {
            spec: spec.ok_or_else(|| missing("missing spec section"))?,
            pool: pool.ok_or_else(|| missing("missing pool section"))?,
            lut: lut.ok_or_else(|| missing("missing lut section"))?,
            convs: convs.ok_or_else(|| missing("missing convs section"))?,
            act_bits,
        };
        Ok((bundle, r.stats()))
    }
}

impl BundleCodec for WpbCodec {
    fn format(&self) -> Format {
        Format::Wpb
    }

    fn encode(&self, bundle: &DeployBundle) -> Result<Vec<u8>, CodecError> {
        // Sections are built before the header: the version byte depends
        // on whether any layer chose ANS (version 2) so Rice-era readers
        // keep loading bundles that don't use the new coding.
        let spec = encode_spec(&bundle.spec)?;
        let pool = encode_pool(&bundle.pool);
        let lut = encode_lut(&bundle.lut)?;
        let (convs, used_ans) = encode_convs(&bundle.convs, self.pref);
        let version = if used_ans { WPB_VERSION } else { WPB_MIN_VERSION };

        let mut out = Vec::new();
        out.extend_from_slice(&WPB_MAGIC);
        out.push(version);
        out.push(bundle.act_bits);
        // The header gets its own checksum: act_bits lives outside every
        // section, and a flipped bit there would otherwise decode into a
        // quietly wrong bundle.
        let header_crc = crc32(&out);
        out.extend_from_slice(&header_crc.to_le_bytes());
        write_section(&mut out, SEC_SPEC, &spec);
        write_section(&mut out, SEC_POOL, &pool);
        write_section(&mut out, SEC_LUT, &lut);
        write_section(&mut out, SEC_CONVS, &convs);
        Ok(out)
    }

    fn decode(&self, bytes: &[u8]) -> Result<DeployBundle, CodecError> {
        Self::decode_from(bytes)
    }
}

/// Reads and validates the fixed WPB prologue (magic, version, act_bits,
/// header CRC), returning `act_bits`.
fn read_wpb_prologue<R: Read>(r: &mut SectionReader<R>) -> Result<u8, CodecError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic, "magic")?;
    if magic != WPB_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.read_u8("version")?;
    if !(WPB_MIN_VERSION..=WPB_VERSION).contains(&version) {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let act_bits = r.read_u8("act_bits")?;
    let header_crc = r.read_u32le("header checksum")?;
    if crc32(&[magic.as_slice(), &[version, act_bits]].concat()) != header_crc {
        return Err(CodecError::Checksum("header"));
    }
    Ok(act_bits)
}

/// The index coding each conv payload in a WPB byte buffer **actually
/// recorded** — as opposed to what [`IndexCoding::choose`] would pick
/// for the decoded streams today. Entries align with
/// [`DeployBundle::convs`]; `None` marks a direct (int8) conv, which
/// carries no index stream. This is what `wp_bundle inspect` reports
/// for `.wpb` files, and how a forced `--codec` conversion is audited.
///
/// # Errors
///
/// Returns a typed [`CodecError`] for non-WPB input or malformed convs
/// sections.
pub fn wpb_recorded_codings(bytes: &[u8]) -> Result<Vec<Option<IndexCoding>>, CodecError> {
    let mut r = SectionReader::new(bytes);
    read_wpb_prologue(&mut r)?;
    while let Some(header) = r.next_section()? {
        if header.tag != SEC_CONVS {
            r.skip_payload(&header)?;
            continue;
        }
        let payload = r.payload(&header, "convs")?;
        let mut b = ByteReader::new(payload);
        let n = b.varint("conv count")? as usize;
        if n > b.remaining() / 2 + 1 {
            return Err(CodecError::Malformed(format!(
                "{n} convs in a {}-byte section",
                payload.len()
            )));
        }
        let mut codings = Vec::with_capacity(n);
        for _ in 0..n {
            match b.u8("conv kind")? {
                0 => {
                    b.varint("index count")?;
                    let coding = IndexCoding::read_header(&mut b)?;
                    let stream_len = b.varint("index stream length")? as usize;
                    b.take(stream_len, "index stream")?;
                    codings.push(Some(coding));
                }
                1 => {
                    let count = b.varint("weight count")? as usize;
                    b.u32le("weight scale")?;
                    b.take(count, "direct weights")?;
                    codings.push(None);
                }
                other => {
                    return Err(CodecError::Malformed(format!("unknown conv payload kind {other}")))
                }
            }
        }
        return Ok(codings);
    }
    Err(CodecError::Truncated("missing convs section"))
}

/// Fills a section slot, rejecting duplicates.
fn store<T>(slot: &mut Option<T>, value: T, name: &'static str) -> Result<(), CodecError> {
    if slot.replace(value).is_some() {
        return Err(CodecError::Malformed(format!("duplicate {name} section")));
    }
    Ok(())
}

fn section_name(tag: u8) -> &'static str {
    match tag {
        SEC_SPEC => "spec",
        SEC_POOL => "pool",
        SEC_LUT => "lut",
        SEC_CONVS => "convs",
        _ => "unknown",
    }
}

// ---------------------------------------------------------------------------
// Section payloads
// ---------------------------------------------------------------------------

fn encode_spec(spec: &NetSpec) -> Result<Vec<u8>, CodecError> {
    serde_json::to_string(spec)
        .map(String::into_bytes)
        .map_err(|e| CodecError::Malformed(format!("spec: {e}")))
}

fn decode_spec(payload: &[u8]) -> Result<NetSpec, CodecError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| CodecError::Malformed("spec section is not UTF-8".into()))?;
    serde_json::from_str(text).map_err(|e| CodecError::Malformed(format!("spec: {e}")))
}

fn encode_pool(pool: &WeightPool) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, pool.len() as u64);
    write_varint(&mut out, pool.group_size() as u64);
    for v in pool.vectors() {
        for &x in v {
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }
    out
}

fn decode_pool(payload: &[u8]) -> Result<WeightPool, CodecError> {
    let mut r = ByteReader::new(payload);
    let s = r.varint("pool size")? as usize;
    let g = r.varint("pool group size")? as usize;
    if s == 0 || g == 0 {
        return Err(CodecError::Malformed(format!("empty pool ({s} vectors of {g})")));
    }
    // Claimed element count must fit the remaining payload *before* any
    // allocation: a crafted varint must be a typed error, not a
    // capacity-overflow panic or a huge allocation.
    let needed = s
        .checked_mul(g)
        .and_then(|e| e.checked_mul(4))
        .ok_or_else(|| CodecError::Malformed(format!("pool of {s}x{g} overflows")))?;
    if needed > r.remaining() {
        return Err(CodecError::Truncated("pool vector elements"));
    }
    let mut vectors = Vec::with_capacity(s);
    for _ in 0..s {
        let mut v = Vec::with_capacity(g);
        for _ in 0..g {
            v.push(f32::from_bits(r.u32le("pool vector element")?));
        }
        vectors.push(v);
    }
    r.expect_empty("pool")?;
    Ok(WeightPool::from_vectors(vectors))
}

fn encode_lut(lut: &LookupTable) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    write_varint(&mut out, lut.group_size() as u64);
    write_varint(&mut out, lut.pool_size() as u64);
    out.push(lut.bits());
    out.push(match lut.order() {
        LutOrder::InputOriented => 0,
        LutOrder::WeightOriented => 1,
    });
    out.extend_from_slice(&lut.scale().to_bits().to_le_bytes());
    let bits = u32::from(lut.bits());
    let (lo, hi) = (-(1i64 << (bits - 1)), (1i64 << (bits - 1)) - 1);
    let mut w = BitWriter::new();
    for &code in lut.codes() {
        if i64::from(code) < lo || i64::from(code) > hi {
            return Err(CodecError::Malformed(format!(
                "lut code {code} does not fit the table's {bits}-bit width"
            )));
        }
        w.write_bits(code as u32 as u64, bits);
    }
    out.extend_from_slice(&w.into_bytes());
    Ok(out)
}

fn decode_lut(payload: &[u8]) -> Result<LookupTable, CodecError> {
    let mut r = ByteReader::new(payload);
    let group = r.varint("lut group size")? as usize;
    let pool_size = r.varint("lut pool size")? as usize;
    let bits = r.u8("lut bits")?;
    let order = match r.u8("lut order")? {
        0 => LutOrder::InputOriented,
        1 => LutOrder::WeightOriented,
        other => return Err(CodecError::Malformed(format!("unknown lut order {other}"))),
    };
    let scale = f32::from_bits(r.u32le("lut scale")?);
    if group == 0 || group > 12 || pool_size == 0 || !(2..=16).contains(&bits) {
        return Err(CodecError::Malformed(format!(
            "implausible lut shape: group {group}, pool {pool_size}, {bits} bits"
        )));
    }
    // Shape is bounded (group <= 12 checked above), but pool_size comes
    // from the wire: the code count and its bit cost must fit the
    // remaining payload before allocating.
    let count = pool_size
        .checked_mul(1usize << group)
        .ok_or_else(|| CodecError::Malformed(format!("lut of {pool_size} << {group} overflows")))?;
    let width = u32::from(bits);
    let needed_bits = (count as u64)
        .checked_mul(u64::from(width))
        .ok_or_else(|| CodecError::Malformed(format!("lut of {count} codes overflows")))?;
    if needed_bits.div_ceil(8) > r.remaining() as u64 {
        return Err(CodecError::Truncated("lut codes"));
    }
    let mut b = BitReader::new(r.rest());
    let mut codes = Vec::with_capacity(count);
    for _ in 0..count {
        let raw = b.read_bits(width, "lut code")? as u32;
        codes.push(sign_extend(raw, width));
    }
    LookupTable::from_parts(group, pool_size, bits, scale, order, codes)
        .map_err(CodecError::Malformed)
}

fn encode_convs(convs: &[ConvPayload], pref: IndexCodecPref) -> (Vec<u8>, bool) {
    let mut out = Vec::new();
    let mut used_ans = false;
    write_varint(&mut out, convs.len() as u64);
    for conv in convs {
        match conv {
            ConvPayload::Pooled { indices } => {
                out.push(0);
                write_varint(&mut out, indices.len() as u64);
                let coding = IndexCoding::choose_with(indices, pref);
                used_ans |= matches!(coding, IndexCoding::Ans { .. });
                coding.write_header(&mut out);
                let stream = coding.encode_stream(indices);
                write_varint(&mut out, stream.len() as u64);
                out.extend_from_slice(&stream);
            }
            ConvPayload::Direct { weights, scale } => {
                out.push(1);
                write_varint(&mut out, weights.len() as u64);
                out.extend_from_slice(&scale.to_bits().to_le_bytes());
                out.extend(weights.iter().map(|&w| w as u8));
            }
        }
    }
    (out, used_ans)
}

/// Spec/pool-derived expectations for the convs section: how many conv
/// payloads there should be and, per pooled layer, how many indices.
/// Built when the spec and pool sections were decoded first (which is
/// how this codec always writes them).
struct ConvContext {
    /// Per conv (in spec order): expected pooled index count, when the
    /// spec marks the conv compressed and the pool's group size divides
    /// its input depth.
    pooled_counts: Vec<Option<usize>>,
}

impl ConvContext {
    fn from_sections(spec: Option<&NetSpec>, pool: Option<&WeightPool>) -> Option<Self> {
        let (spec, pool) = (spec?, pool?);
        let group = pool.group_size();
        if group == 0 {
            return None;
        }
        let pooled_counts = spec
            .layers
            .iter()
            .filter_map(|layer| match layer {
                LayerSpec::Conv(cs) => Some(cs),
                _ => None,
            })
            .map(|cs| {
                (cs.compressed && cs.in_ch % group == 0)
                    .then(|| cs.out_ch * (cs.in_ch / group) * cs.kernel * cs.kernel)
            })
            .collect();
        Some(Self { pooled_counts })
    }
}

fn decode_convs(payload: &[u8], ctx: Option<&ConvContext>) -> Result<Vec<ConvPayload>, CodecError> {
    let mut r = ByteReader::new(payload);
    let n = r.varint("conv count")? as usize;
    // Each conv costs at least two bytes on the wire.
    if n > r.remaining() / 2 + 1 {
        return Err(CodecError::Malformed(format!(
            "{n} convs in a {}-byte section",
            payload.len()
        )));
    }
    if let Some(ctx) = ctx {
        if n != ctx.pooled_counts.len() {
            return Err(CodecError::Malformed(format!(
                "{n} conv payloads but the spec section declares {} convs",
                ctx.pooled_counts.len()
            )));
        }
    }
    let mut convs = Vec::with_capacity(n);
    for position in 0..n {
        match r.u8("conv kind")? {
            0 => {
                let count = r.varint("index count")? as usize;
                // When the spec section was decoded first (always, for
                // streams this codec writes), the index count must not
                // exceed the spec-derived expectation — a crafted count
                // cannot balloon the decode no matter what the coded
                // stream claims it holds.
                let expected = ctx.and_then(|c| c.pooled_counts.get(position).copied().flatten());
                if let Some(expected) = expected {
                    if count > expected {
                        return Err(CodecError::Malformed(format!(
                            "conv {position} claims {count} indices; its spec shape holds {expected}"
                        )));
                    }
                }
                let coding = IndexCoding::read_header(&mut r)?;
                let stream_len = r.varint("index stream length")? as usize;
                let stream = r.take(stream_len, "index stream")?;
                // Fallback cap when no spec expectation exists: bound the
                // claimed count by what the stream could possibly encode
                // (raw width 0 and ANS spend sub-bit per index, so they
                // get coding-aware bounds).
                if count > coding.max_decodable(stream.len(), payload.len()) {
                    return Err(CodecError::Malformed(format!(
                        "{count} indices cannot fit a {}-byte stream",
                        stream.len()
                    )));
                }
                let indices = coding.decode_stream(stream, count)?;
                convs.push(ConvPayload::Pooled { indices });
            }
            1 => {
                let count = r.varint("weight count")? as usize;
                let scale = f32::from_bits(r.u32le("weight scale")?);
                let bytes = r.take(count, "direct weights")?;
                let weights = bytes.iter().map(|&b| b as i8).collect();
                convs.push(ConvPayload::Direct { weights, scale });
            }
            other => {
                return Err(CodecError::Malformed(format!("unknown conv payload kind {other}")))
            }
        }
    }
    r.expect_empty("convs")?;
    Ok(convs)
}

// ---------------------------------------------------------------------------
// Index-stream coding
// ---------------------------------------------------------------------------

/// How one pooled layer's index stream is coded.
///
/// The encoder measures the layer's index histogram and picks whichever
/// representation is smallest *for that layer*:
///
/// * `Raw` — fixed width at the stream's own `ceil(log2(max+1))` bits:
///   the fallback whenever entropy coding would expand the stream (e.g.
///   near-uniform index usage, where fixed width already sits on the
///   entropy).
/// * `Rice` — Rice/Golomb codes of the raw index values with per-layer
///   parameter `k` (quotient in unary, remainder in `k` bits).
/// * `RiceRemap` — Rice codes of frequency ranks: a small rank→index
///   table (stored with the layer) maps the most frequent index to rank
///   0, which turns any skewed histogram into the decaying shape Rice
///   coding wants. The table's 8 bits/entry are charged against the mode
///   when choosing.
/// * `Ans` — tabled rANS over the raw index values (see
///   [`super::ans`]): fractional bits per symbol under the layer's own
///   normalized histogram, which is what closes the gap Rice leaves on
///   non-geometric or low-entropy streams. The normalized frequency
///   table ships with the layer and is charged against the mode when
///   choosing. Introduced in WPB version 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexCoding {
    /// Fixed-width indices at `width` bits each.
    Raw {
        /// Bits per index (0 when every index is 0).
        width: u8,
    },
    /// Rice codes of the raw index values.
    Rice {
        /// The Rice parameter (remainder width).
        k: u8,
    },
    /// Rice codes of frequency ranks via a rank→index side table.
    RiceRemap {
        /// The Rice parameter (remainder width).
        k: u8,
        /// `table[rank]` is the pool index with that frequency rank.
        table: Vec<u8>,
    },
    /// Tabled rANS under a per-layer normalized histogram.
    Ans {
        /// Normalized frequencies summing to [`ans::ANS_TOTAL`],
        /// truncated after the last occurring symbol.
        freqs: Vec<u16>,
    },
}

impl IndexCoding {
    /// Measures `indices` and picks the smallest representation among
    /// every coding (the [`IndexCodecPref::Auto`] rule).
    pub fn choose(indices: &[u8]) -> Self {
        Self::choose_with(indices, IndexCodecPref::Auto)
    }

    /// Measures `indices` and picks a representation under `pref`:
    /// [`Auto`](IndexCodecPref::Auto) takes the smallest in actual coded
    /// bits (side tables included), [`Rice`](IndexCodecPref::Rice)
    /// restricts the choice to the v1 codings, and
    /// [`Ans`](IndexCodecPref::Ans) forces ANS on every non-empty
    /// stream.
    pub fn choose_with(indices: &[u8], pref: IndexCodecPref) -> Self {
        if indices.is_empty() {
            return IndexCoding::Raw { width: 0 };
        }
        let hist = histogram(indices);
        if pref == IndexCodecPref::Ans {
            let freqs = ans::normalize_freqs(&hist).expect("non-empty stream");
            return IndexCoding::Ans { freqs };
        }
        let max = indices.iter().copied().max().expect("non-empty") as u32;
        let width = bits_for(max);
        let mut best = IndexCoding::Raw { width: width as u8 };
        let mut best_bits = indices.len() as u64 * u64::from(width);

        for k in 0..=MAX_RICE_K {
            let bits = rice_cost(&hist, u32::from(k));
            if bits < best_bits {
                best = IndexCoding::Rice { k };
                best_bits = bits;
            }
        }

        // Frequency-rank remap: most frequent symbol becomes rank 0.
        let mut by_freq: Vec<(u8, u64)> =
            hist.iter().enumerate().filter(|&(_, &c)| c > 0).map(|(v, &c)| (v as u8, c)).collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut rank_hist = [0u64; 256];
        for (rank, &(_, count)) in by_freq.iter().enumerate() {
            rank_hist[rank] = count;
        }
        let table: Vec<u8> = by_freq.iter().map(|&(v, _)| v).collect();
        let table_bits = 8 * table.len() as u64;
        for k in 0..=MAX_RICE_K {
            let bits = table_bits + rice_cost(&rank_hist, u32::from(k));
            if bits < best_bits {
                best = IndexCoding::RiceRemap { k, table: table.clone() };
                best_bits = bits;
            }
        }

        if pref == IndexCodecPref::Auto {
            // ANS enters the race on its *actual* coded size (header plus
            // real stream), not an estimate — renormalization is
            // byte-granular, and a near-tie decided on an estimate could
            // pick a coding that then expands past the raw fallback.
            let freqs = ans::normalize_freqs(&hist).expect("non-empty stream");
            let candidate = IndexCoding::Ans { freqs };
            if candidate.coded_bits(indices) < best_bits {
                best = candidate;
            }
        }
        best
    }

    /// Total coded bits `encode_stream` will produce for `indices` under
    /// this coding, side table included (used by the size accounting; the
    /// actual stream is byte-padded).
    pub fn coded_bits(&self, indices: &[u8]) -> u64 {
        let hist = histogram(indices);
        match self {
            IndexCoding::Raw { width } => indices.len() as u64 * u64::from(*width),
            IndexCoding::Rice { k } => rice_cost(&hist, u32::from(*k)),
            IndexCoding::RiceRemap { k, table } => {
                let mut rank_hist = [0u64; 256];
                for (rank, &v) in table.iter().enumerate() {
                    rank_hist[rank] = hist[v as usize];
                }
                8 * table.len() as u64 + rice_cost(&rank_hist, u32::from(*k))
            }
            IndexCoding::Ans { freqs } => {
                // Exact: the serialized frequency table plus the real
                // stream (state flush and renormalization included).
                let mut header = Vec::new();
                write_varint(&mut header, freqs.len() as u64);
                for &f in freqs {
                    write_varint(&mut header, u64::from(f));
                }
                8 * (header.len() as u64 + ans::encode(indices, freqs).len() as u64)
            }
        }
    }

    /// Short human-readable description (`raw[4b]`, `rice[k=1]`, ...).
    pub fn describe(&self) -> String {
        match self {
            IndexCoding::Raw { width } => format!("raw[{width}b]"),
            IndexCoding::Rice { k } => format!("rice[k={k}]"),
            IndexCoding::RiceRemap { k, table } => {
                format!("rice+remap[k={k},{} syms]", table.len())
            }
            IndexCoding::Ans { freqs } => {
                format!("ans[{} syms]", freqs.iter().filter(|&&f| f > 0).count())
            }
        }
    }

    /// The most indices a `stream_len`-byte stream could possibly encode
    /// under this coding — the decode-side amplification cap when no
    /// spec-derived expectation is available. Bit codings spend >= 1 bit
    /// per index; raw width 0 is implicit (capped by the section size);
    /// ANS spends at least `log2(total/max_freq)` bits per symbol.
    fn max_decodable(&self, stream_len: usize, section_len: usize) -> usize {
        match self {
            IndexCoding::Raw { width: 0 } => section_len.saturating_mul(8),
            IndexCoding::Ans { freqs } => {
                let max_f = freqs.iter().copied().max().unwrap_or(0);
                let min_bits =
                    (f64::from(ans::ANS_TOTAL) / f64::from(max_f.max(1))).log2().max(1e-4);
                let cap = ((stream_len as f64 * 8.0 + 64.0) / min_bits).min(usize::MAX as f64);
                cap as usize
            }
            _ => stream_len.saturating_mul(8),
        }
    }

    fn write_header(&self, out: &mut Vec<u8>) {
        match self {
            IndexCoding::Raw { width } => {
                out.push(0);
                out.push(*width);
            }
            IndexCoding::Rice { k } => {
                out.push(1);
                out.push(*k);
            }
            IndexCoding::RiceRemap { k, table } => {
                out.push(2);
                out.push(*k);
                write_varint(out, table.len() as u64);
                out.extend_from_slice(table);
            }
            IndexCoding::Ans { freqs } => {
                out.push(3);
                write_varint(out, freqs.len() as u64);
                for &f in freqs {
                    write_varint(out, u64::from(f));
                }
            }
        }
    }

    fn read_header(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.u8("index coding mode")? {
            0 => {
                let width = r.u8("raw index width")?;
                if width > 8 {
                    return Err(CodecError::Malformed(format!("raw index width {width} > 8")));
                }
                Ok(IndexCoding::Raw { width })
            }
            1 => {
                let k = r.u8("rice parameter")?;
                if k > MAX_RICE_K {
                    return Err(CodecError::Malformed(format!(
                        "rice parameter {k} > {MAX_RICE_K}"
                    )));
                }
                Ok(IndexCoding::Rice { k })
            }
            2 => {
                let k = r.u8("rice parameter")?;
                if k > MAX_RICE_K {
                    return Err(CodecError::Malformed(format!(
                        "rice parameter {k} > {MAX_RICE_K}"
                    )));
                }
                let len = r.varint("remap table length")? as usize;
                if len == 0 || len > 256 {
                    return Err(CodecError::Malformed(format!("remap table of {len} entries")));
                }
                let table = r.take(len, "remap table")?.to_vec();
                Ok(IndexCoding::RiceRemap { k, table })
            }
            3 => {
                let len = r.varint("ans frequency table length")? as usize;
                if len == 0 || len > 256 {
                    return Err(CodecError::Malformed(format!(
                        "ans frequency table of {len} entries"
                    )));
                }
                let mut freqs = Vec::with_capacity(len);
                for _ in 0..len {
                    let f = r.varint("ans frequency")?;
                    let f = u16::try_from(f).map_err(|_| {
                        CodecError::Malformed(format!("ans frequency {f} exceeds 16 bits"))
                    })?;
                    freqs.push(f);
                }
                ans::validate_freqs(&freqs)?;
                Ok(IndexCoding::Ans { freqs })
            }
            other => Err(CodecError::Malformed(format!("unknown index coding mode {other}"))),
        }
    }

    fn encode_stream(&self, indices: &[u8]) -> Vec<u8> {
        if let IndexCoding::Ans { freqs } = self {
            return ans::encode(indices, freqs);
        }
        let mut w = BitWriter::new();
        match self {
            IndexCoding::Ans { .. } => unreachable!("handled above"),
            IndexCoding::Raw { width } => {
                for &v in indices {
                    w.write_bits(u64::from(v), u32::from(*width));
                }
            }
            IndexCoding::Rice { k } => {
                for &v in indices {
                    w.write_rice(u32::from(v), u32::from(*k));
                }
            }
            IndexCoding::RiceRemap { k, table } => {
                let mut rank_of = [0u8; 256];
                for (rank, &v) in table.iter().enumerate() {
                    rank_of[v as usize] = rank as u8;
                }
                for &v in indices {
                    w.write_rice(u32::from(rank_of[v as usize]), u32::from(*k));
                }
            }
        }
        w.into_bytes()
    }

    fn decode_stream(&self, stream: &[u8], count: usize) -> Result<Vec<u8>, CodecError> {
        if let IndexCoding::Ans { freqs } = self {
            let mut out = Vec::with_capacity(count);
            ans::decode_into(stream, freqs, count, &mut out)?;
            return Ok(out);
        }
        let mut b = BitReader::new(stream);
        let mut out = Vec::with_capacity(count);
        match self {
            IndexCoding::Ans { .. } => unreachable!("handled above"),
            IndexCoding::Raw { width } => {
                for _ in 0..count {
                    out.push(b.read_bits(u32::from(*width), "raw index")? as u8);
                }
            }
            IndexCoding::Rice { k } => {
                for _ in 0..count {
                    let v = b.read_rice(u32::from(*k), "index")?;
                    let v = u8::try_from(v).map_err(|_| {
                        CodecError::Malformed(format!("rice-coded index {v} exceeds a byte"))
                    })?;
                    out.push(v);
                }
            }
            IndexCoding::RiceRemap { k, table } => {
                for _ in 0..count {
                    let rank = b.read_rice(u32::from(*k), "index rank")? as usize;
                    let v = *table.get(rank).ok_or_else(|| {
                        CodecError::Malformed(format!(
                            "index rank {rank} outside the {}-entry remap table",
                            table.len()
                        ))
                    })?;
                    out.push(v);
                }
            }
        }
        Ok(out)
    }
}

/// Sum of Rice-coded bit lengths over a value histogram.
fn rice_cost(hist: &[u64; 256], k: u32) -> u64 {
    hist.iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(v, &c)| c * ((v as u64 >> k) + 1 + u64::from(k)))
        .sum()
}

/// Bits needed to represent `max` (0 for 0).
fn bits_for(max: u32) -> u32 {
    32 - max.leading_zeros()
}

/// Sign-extends a `width`-bit two's-complement value.
fn sign_extend(raw: u32, width: u32) -> i32 {
    if width == 32 || raw & (1 << (width - 1)) == 0 {
        raw as i32
    } else {
        (raw | !((1u32 << width) - 1)) as i32
    }
}

// ---------------------------------------------------------------------------
// Per-layer statistics (wp_bundle inspect, bundle_size bench)
// ---------------------------------------------------------------------------

/// One pooled layer's index-stream coding report.
#[derive(Debug, Clone)]
pub struct IndexStreamStats {
    /// Position in [`DeployBundle::convs`].
    pub conv: usize,
    /// Indices in the stream.
    pub count: usize,
    /// Empirical entropy in bits per index ([`stream_entropy_bits`]).
    pub entropy_bits: f64,
    /// WPB coded size in bits per index (remap table amortized in).
    pub coded_bits: f64,
    /// The chosen coding, human readable.
    pub coding: String,
}

/// Per-pooled-layer coding statistics for `bundle` (direct convs carry no
/// index stream and are omitted).
pub fn index_stream_stats(bundle: &DeployBundle) -> Vec<IndexStreamStats> {
    bundle
        .convs
        .iter()
        .enumerate()
        .filter_map(|(conv, payload)| match payload {
            ConvPayload::Pooled { indices } => {
                let coding = IndexCoding::choose(indices);
                let coded = coding.coded_bits(indices);
                let per_index =
                    if indices.is_empty() { 0.0 } else { coded as f64 / indices.len() as f64 };
                Some(IndexStreamStats {
                    conv,
                    count: indices.len(),
                    entropy_bits: stream_entropy_bits(indices),
                    coded_bits: per_index,
                    coding: coding.describe(),
                })
            }
            ConvPayload::Direct { .. } => None,
        })
        .collect()
}

/// Empirical entropy of one index stream in bits per index.
///
/// An empty stream has zero entropy (not NaN): there is nothing to code.
pub fn stream_entropy_bits(indices: &[u8]) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    let total = indices.len() as f64;
    histogram(indices)
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// Byte-value histogram of one index stream.
fn histogram(indices: &[u8]) -> [u64; 256] {
    let mut hist = [0u64; 256];
    for &i in indices {
        hist[i as usize] += 1;
    }
    hist
}

// ---------------------------------------------------------------------------
// Primitives: varints, checksums, bitstreams
// ---------------------------------------------------------------------------

/// Appends a LEB128 varint.
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `tag`, varint length, `payload`, and the payload's CRC-32.
fn write_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    write_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// CRC-32 (IEEE 802.3, reflected) lookup table.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut j = 0;
        while j < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            j += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Initial CRC-32 state for [`crc32_update`] (finalize by XORing with
/// `0xFFFF_FFFF`).
pub(crate) const CRC_INIT: u32 = 0xFFFF_FFFF;

/// Folds `bytes` into a running CRC-32 (IEEE) state — how the streaming
/// reader checksums skipped sections chunk-by-chunk without buffering.
pub(crate) fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let mut c = state;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(CRC_INIT, bytes) ^ 0xFFFF_FFFF
}

/// A bounds-checked byte cursor; every overrun is a loud
/// [`CodecError::Truncated`] naming what was being read.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn is_empty(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn rest(&self) -> &'a [u8] {
        &self.bytes[self.pos..]
    }

    fn expect_empty(&self, section: &'static str) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::Malformed(format!(
                "{} trailing bytes in {section} section",
                self.bytes.len() - self.pos
            )))
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.bytes.len() - self.pos < n {
            return Err(CodecError::Truncated(what));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32le(&mut self, what: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4-byte slice")))
    }

    fn varint(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8(what)?;
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(CodecError::Malformed(format!("varint too long reading {what}")))
    }
}

/// LSB-first bit appender.
struct BitWriter {
    bytes: Vec<u8>,
    used: u8,
}

impl BitWriter {
    fn new() -> Self {
        Self { bytes: Vec::new(), used: 0 }
    }

    fn push_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            *self.bytes.last_mut().expect("pushed above") |= 1 << self.used;
        }
        self.used = (self.used + 1) & 7;
    }

    /// Writes the low `n` bits of `v`, LSB first.
    fn write_bits(&mut self, v: u64, n: u32) {
        for i in 0..n {
            self.push_bit((v >> i) & 1 == 1);
        }
    }

    /// Rice code: quotient `v >> k` in unary (ones, zero-terminated),
    /// then the low `k` remainder bits.
    fn write_rice(&mut self, v: u32, k: u32) {
        for _ in 0..(v >> k) {
            self.push_bit(true);
        }
        self.push_bit(false);
        self.write_bits(u64::from(v), k);
    }

    fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// LSB-first bit cursor over a byte slice.
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn read_bit(&mut self, what: &'static str) -> Result<bool, CodecError> {
        let byte = (self.pos / 8) as usize;
        if byte >= self.bytes.len() {
            return Err(CodecError::Truncated(what));
        }
        let bit = (self.bytes[byte] >> (self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    fn read_bits(&mut self, n: u32, what: &'static str) -> Result<u64, CodecError> {
        let mut v = 0u64;
        for i in 0..n {
            if self.read_bit(what)? {
                v |= 1 << i;
            }
        }
        Ok(v)
    }

    fn read_rice(&mut self, k: u32, what: &'static str) -> Result<u32, CodecError> {
        let mut q = 0u32;
        while self.read_bit(what)? {
            q += 1;
            if q > 4096 {
                return Err(CodecError::Malformed(format!("runaway rice quotient reading {what}")));
            }
        }
        let r = self.read_bits(k, what)? as u32;
        Ok((q << k) | r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netspec::{ConvSpec, LayerSpec};
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    /// A hand-built bundle exercising both payload kinds and a controllable
    /// index distribution (`skew` 0 = uniform, larger = more peaked).
    fn fabricated_bundle(seed: u64, pool_size: usize, order: LutOrder, skew: u32) -> DeployBundle {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let group = 8usize;
        let vectors: Vec<Vec<f32>> = (0..pool_size)
            .map(|_| (0..group).map(|_| rng.gen_range(-0.5f32..0.5)).collect())
            .collect();
        let pool = WeightPool::from_vectors(vectors);
        let lut = LookupTable::build(&pool, 8, order);
        let spec = NetSpec {
            name: format!("fab-{seed}"),
            input: (3, 6, 6),
            classes: 4,
            layers: vec![
                LayerSpec::Conv(ConvSpec {
                    in_ch: 3,
                    out_ch: 8,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    compressed: false,
                }),
                LayerSpec::Conv(ConvSpec {
                    in_ch: 8,
                    out_ch: 16,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    compressed: true,
                }),
                LayerSpec::GlobalAvgPool,
                LayerSpec::Dense { in_features: 16, out_features: 4, compressed: false },
            ],
        };
        let direct: Vec<i8> = (0..8 * 3 * 9).map(|_| rng.gen_range(-127i32..=127) as i8).collect();
        let indices: Vec<u8> = (0..16 * 9)
            .map(|_| {
                let mut v = rng.gen_range(0..pool_size);
                for _ in 0..skew {
                    v = v.min(rng.gen_range(0..pool_size));
                }
                v as u8
            })
            .collect();
        DeployBundle {
            spec,
            pool,
            lut,
            convs: vec![
                ConvPayload::Direct { weights: direct, scale: 0.0625 },
                ConvPayload::Pooled { indices },
            ],
            act_bits: 8,
        }
    }

    #[test]
    fn wpb_round_trips_both_orders_and_payload_kinds() {
        for order in [LutOrder::InputOriented, LutOrder::WeightOriented] {
            for skew in [0, 3] {
                let b = fabricated_bundle(7, 16, order, skew);
                let bytes = WpbCodec::default().encode(&b).unwrap();
                assert_eq!(Format::sniff(&bytes), Format::Wpb);
                let back = WpbCodec::default().decode(&bytes).unwrap();
                assert_eq!(b, back);
            }
        }
    }

    #[test]
    fn json_and_wpb_decode_to_the_same_bundle() {
        let b = fabricated_bundle(9, 8, LutOrder::InputOriented, 2);
        let json = JsonCodec.encode(&b).unwrap();
        let wpb = WpbCodec::default().encode(&b).unwrap();
        assert_eq!(JsonCodec.decode(&json).unwrap(), WpbCodec::default().decode(&wpb).unwrap());
        assert!(wpb.len() < json.len(), "wpb {} vs json {}", wpb.len(), json.len());
    }

    #[test]
    fn empty_index_stream_round_trips() {
        let mut b = fabricated_bundle(3, 4, LutOrder::InputOriented, 0);
        b.convs[1] = ConvPayload::Pooled { indices: Vec::new() };
        let bytes = WpbCodec::default().encode(&b).unwrap();
        assert_eq!(WpbCodec::default().decode(&bytes).unwrap(), b);
    }

    #[test]
    fn stream_entropy_of_empty_stream_is_zero() {
        assert_eq!(stream_entropy_bits(&[]), 0.0);
        // Single-symbol streams are also zero-entropy, not NaN.
        assert_eq!(stream_entropy_bits(&[5; 100]), 0.0);
    }

    #[test]
    fn uniform_streams_fall_back_to_raw_fixed_width() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let uniform: Vec<u8> = (0..4096).map(|_| rng.gen_range(0..16) as u8).collect();
        let coding = IndexCoding::choose(&uniform);
        assert_eq!(coding, IndexCoding::Raw { width: 4 }, "uniform: {}", coding.describe());
        assert_eq!(coding.coded_bits(&uniform), 4 * 4096);
    }

    #[test]
    fn skewed_streams_choose_rice_and_beat_fixed_width() {
        // Geometric-ish: symbol v with probability ~2^-v.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let skewed: Vec<u8> = (0..4096)
            .map(|_| {
                let mut v = 0u8;
                while v < 15 && rng.gen_range(0..2) == 0 {
                    v += 1;
                }
                v
            })
            .collect();
        let coding = IndexCoding::choose(&skewed);
        assert!(
            matches!(coding, IndexCoding::Rice { .. } | IndexCoding::RiceRemap { .. }),
            "skewed stream should entropy-code, chose {}",
            coding.describe()
        );
        let coded = coding.coded_bits(&skewed) as f64 / skewed.len() as f64;
        let fixed = 4.0;
        let entropy = stream_entropy_bits(&skewed);
        assert!(coded < fixed, "coded {coded:.3} must beat fixed {fixed}");
        assert!(coded <= entropy * 1.15 + 0.2, "coded {coded:.3} vs entropy {entropy:.3}");
    }

    #[test]
    fn remap_handles_skew_on_arbitrary_symbols() {
        // Heavy mass on a *high* index: plain Rice on raw values is poor,
        // the rank remap makes it geometric again.
        let mut stream = vec![200u8; 1000];
        stream.extend(std::iter::repeat_n(13u8, 100));
        stream.extend(std::iter::repeat_n(77u8, 10));
        let coding = IndexCoding::choose(&stream);
        assert!(
            matches!(coding, IndexCoding::RiceRemap { .. }),
            "expected remap, chose {}",
            coding.describe()
        );
        // Round trip through the actual bitstream.
        let stream_bytes = coding.encode_stream(&stream);
        let back = coding.decode_stream(&stream_bytes, stream.len()).unwrap();
        assert_eq!(back, stream);
    }

    #[test]
    fn truncated_files_fail_loudly() {
        let b = fabricated_bundle(5, 8, LutOrder::WeightOriented, 1);
        let bytes = WpbCodec::default().encode(&b).unwrap();
        // Every proper prefix must error, never yield a bundle.
        for cut in [3, 5, 7, bytes.len() / 4, bytes.len() / 2, bytes.len() - 5, bytes.len() - 1] {
            let err = WpbCodec::default().decode(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let b = fabricated_bundle(6, 8, LutOrder::InputOriented, 0);
        let mut bytes = WpbCodec::default().encode(&b).unwrap();
        // Flip a bit inside the convs payload (late in the buffer, past
        // every header byte).
        let at = bytes.len() - 40;
        bytes[at] ^= 0x10;
        match WpbCodec::default().decode(&bytes) {
            Err(CodecError::Checksum(_)) | Err(CodecError::Malformed(_)) => {}
            other => panic!("corruption must fail, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_header_fails_the_header_checksum() {
        // act_bits lives outside every section; a flipped bit there must
        // not decode into a quietly wrong bundle.
        let b = fabricated_bundle(6, 8, LutOrder::InputOriented, 0);
        let mut bytes = WpbCodec::default().encode(&b).unwrap();
        bytes[5] ^= 0x04; // act_bits
        assert!(matches!(WpbCodec::default().decode(&bytes), Err(CodecError::Checksum("header"))));
    }

    #[test]
    fn hostile_counts_are_errors_not_panics() {
        // Hand-build sections whose varint counts claim far more elements
        // than the payload holds; decode must return typed errors (never
        // a capacity-overflow panic or a giant allocation).
        let huge_pool = {
            let mut p = Vec::new();
            write_varint(&mut p, 1 << 62); // S
            write_varint(&mut p, 8); // G
            p
        };
        assert!(decode_pool(&huge_pool).is_err());

        let huge_lut = {
            let mut p = Vec::new();
            write_varint(&mut p, 12); // group
            write_varint(&mut p, 1 << 60); // pool_size
            p.push(8); // bits
            p.push(0); // order
            p.extend_from_slice(&1.0f32.to_bits().to_le_bytes());
            p
        };
        assert!(decode_lut(&huge_lut).is_err());

        let huge_convs = {
            let mut p = Vec::new();
            write_varint(&mut p, 1); // one conv
            p.push(0); // pooled
            write_varint(&mut p, 1 << 50); // indices "count"
            p.push(0); // raw mode
            p.push(0); // width 0 (zero stream bits per index)
            write_varint(&mut p, 0); // empty stream
            p
        };
        assert!(decode_convs(&huge_convs, None).is_err());

        let many_convs = {
            let mut p = Vec::new();
            write_varint(&mut p, 1 << 55);
            p
        };
        assert!(decode_convs(&many_convs, None).is_err());
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let b = fabricated_bundle(8, 4, LutOrder::InputOriented, 0);
        let bytes = WpbCodec::default().encode(&b).unwrap();
        assert!(matches!(WpbCodec::default().decode(b"JSON{}"), Err(CodecError::BadMagic)));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert!(matches!(
            WpbCodec::default().decode(&wrong_version),
            Err(CodecError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn format_sniffing_and_extensions() {
        assert_eq!(Format::sniff(b"WPB1...."), Format::Wpb);
        assert_eq!(Format::sniff(b"{\"spec\":..."), Format::Json);
        assert_eq!(Format::for_path(Path::new("m.wpb")), Format::Wpb);
        assert_eq!(Format::for_path(Path::new("m.WPB")), Format::Wpb);
        assert_eq!(Format::for_path(Path::new("m.json")), Format::Json);
        assert_eq!(Format::for_path(Path::new("m")), Format::Json);
        assert_eq!(Format::Wpb.codec().format(), Format::Wpb);
        assert_eq!(Format::Json.codec().format(), Format::Json);
    }

    #[test]
    fn stats_cover_pooled_layers_only() {
        let b = fabricated_bundle(11, 16, LutOrder::InputOriented, 2);
        let stats = index_stream_stats(&b);
        assert_eq!(stats.len(), 1, "one pooled conv");
        assert_eq!(stats[0].conv, 1);
        assert_eq!(stats[0].count, 16 * 9);
        assert!(stats[0].entropy_bits > 0.0);
        assert!(stats[0].coded_bits > 0.0);
    }

    #[test]
    fn rice_only_bundles_keep_wire_version_1() {
        // Old readers must keep working as long as no layer actually uses
        // the v2 ANS coding: the version byte is data-dependent.
        let b = fabricated_bundle(7, 16, LutOrder::InputOriented, 0);
        let rice = WpbCodec::with_pref(IndexCodecPref::Rice).encode(&b).unwrap();
        assert_eq!(rice[4], WPB_MIN_VERSION, "rice-only bundle must stay readable by v1");
        let ans = WpbCodec::with_pref(IndexCodecPref::Ans).encode(&b).unwrap();
        assert_eq!(ans[4], WPB_VERSION, "ans bundle needs the v2 reader");
        assert_eq!(WpbCodec::decode_from(ans.as_slice()).unwrap(), b);
    }

    #[test]
    fn truncated_and_corrupted_ans_bundles_fail_loudly() {
        // Mirror of the Rice corruption suite under the forced-ANS codec:
        // every truncation and byte flip is a typed error, never a panic
        // or a partial bundle.
        let b = fabricated_bundle(13, 16, LutOrder::WeightOriented, 3);
        let bytes = WpbCodec::with_pref(IndexCodecPref::Ans).encode(&b).unwrap();
        assert_eq!(WpbCodec::decode_from(bytes.as_slice()).unwrap(), b);
        for cut in [3, 5, 7, bytes.len() / 4, bytes.len() / 2, bytes.len() - 5, bytes.len() - 1] {
            assert!(
                WpbCodec::decode_from(&bytes[..cut]).is_err(),
                "ans prefix of {cut} bytes decoded successfully"
            );
        }
        for at in (10..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[at] ^= 0x20;
            match WpbCodec::decode_from(bad.as_slice()) {
                Ok(decoded) => assert_eq!(decoded, b, "accepted corruption must be harmless"),
                Err(
                    CodecError::Checksum(_)
                    | CodecError::Malformed(_)
                    | CodecError::Truncated(_)
                    | CodecError::UnsupportedVersion(_)
                    | CodecError::BadMagic,
                ) => {}
                Err(other) => panic!("untyped failure {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_sections_are_skipped_over_streams() {
        // Forward compatibility: a section tag this reader doesn't know is
        // CRC-checked and skipped without buffering — both through the
        // buffer path and the streaming path.
        let b = fabricated_bundle(17, 8, LutOrder::InputOriented, 1);
        let bytes = WpbCodec::default().encode(&b).unwrap();
        let mut with_extra = bytes[..10].to_vec(); // magic+version+act_bits+crc
        let payload = [1u8, 2, 3, 4, 5];
        with_extra.push(200); // tag from the unknown range
        write_varint(&mut with_extra, payload.len() as u64);
        with_extra.extend_from_slice(&payload);
        with_extra.extend_from_slice(&crc32(&payload).to_le_bytes());
        with_extra.extend_from_slice(&bytes[10..]);

        assert_eq!(WpbCodec::decode_from(with_extra.as_slice()).unwrap(), b);
        let (decoded, stats) = WpbCodec::decode_from_with_stats(with_extra.as_slice()).unwrap();
        assert_eq!(decoded, b);
        assert_eq!(stats.total_bytes as usize, with_extra.len());

        // Corrupting the unknown payload still fails its checksum.
        let mut bad = with_extra.clone();
        bad[12] ^= 0xFF;
        assert!(matches!(
            WpbCodec::decode_from(bad.as_slice()),
            Err(CodecError::Checksum("unknown"))
        ));
    }

    #[test]
    fn streaming_decode_matches_buffer_decode_with_bounded_scratch() {
        for pref in [IndexCodecPref::Auto, IndexCodecPref::Rice, IndexCodecPref::Ans] {
            let b = fabricated_bundle(23, 32, LutOrder::WeightOriented, 2);
            let bytes = WpbCodec::with_pref(pref).encode(&b).unwrap();
            let buffered = WpbCodec::default().decode(&bytes).unwrap();
            let (streamed, stats) = WpbCodec::decode_from_with_stats(bytes.as_slice()).unwrap();
            assert_eq!(buffered, streamed);
            assert_eq!(streamed, b);
            assert!(stats.peak_transient_bytes <= stats.largest_section_bytes);
            assert_eq!(stats.total_bytes as usize, bytes.len());
            assert_eq!(stats.sections, 4, "spec, pool, lut, convs");
        }
    }

    #[test]
    fn low_entropy_streams_choose_ans_below_rice_floor() {
        // Rice spends >= 1 bit per symbol; a heavily repeated stream has
        // sub-bit entropy, which only ANS can reach. The chooser must pick
        // it and actually land below 1 bit/symbol.
        let mut indices = vec![3u8; 6000];
        for i in 0..200 {
            indices[i * 30] = (i % 5) as u8;
        }
        let coding = IndexCoding::choose(&indices);
        assert!(
            matches!(coding, IndexCoding::Ans { .. }),
            "sub-bit stream should pick ans, chose {}",
            coding.describe()
        );
        let per_sym = coding.coded_bits(&indices) as f64 / indices.len() as f64;
        assert!(per_sym < 1.0, "ans must beat the 1 bit/sym rice floor, got {per_sym:.3}");
        let stream = coding.encode_stream(&indices);
        assert_eq!(coding.decode_stream(&stream, indices.len()).unwrap(), indices);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn bitstream_primitives_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_rice(37, 3);
        w.write_rice(0, 0);
        w.write_bits(0x5A5A, 16);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4, "t").unwrap(), 0b1011);
        assert_eq!(r.read_rice(3, "t").unwrap(), 37);
        assert_eq!(r.read_rice(0, "t").unwrap(), 0);
        assert_eq!(r.read_bits(16, "t").unwrap(), 0x5A5A);
        assert!(r.read_bits(64, "past the end").is_err());
    }

    #[test]
    fn sign_extension_is_exact() {
        assert_eq!(sign_extend(0b1111_1111, 8), -1);
        assert_eq!(sign_extend(0b0111_1111, 8), 127);
        assert_eq!(sign_extend(0b10, 2), -2);
        assert_eq!(sign_extend(5, 16), 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// WPB and JSON reconstruct the identical bundle for arbitrary
        /// pools, orders, skews and payload mixes.
        #[test]
        fn prop_wpb_round_trip_equals_json(
            seed in 0u64..1000,
            pool_size in 2usize..32,
            order_bit in 0u8..2,
            skew in 0u32..5,
        ) {
            let order = if order_bit == 0 {
                LutOrder::InputOriented
            } else {
                LutOrder::WeightOriented
            };
            let b = fabricated_bundle(seed, pool_size, order, skew);
            let wpb = WpbCodec::default().encode(&b).unwrap();
            let json = JsonCodec.encode(&b).unwrap();
            prop_assert_eq!(&WpbCodec::default().decode(&wpb).unwrap(), &b);
            prop_assert_eq!(&JsonCodec.decode(&json).unwrap(), &b);
        }

        /// Every index coding the chooser can emit decodes its own stream
        /// back bit-identically.
        #[test]
        fn prop_index_coding_round_trips(seed in 0u64..500, skew in 0u32..6, n in 0usize..600) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let indices: Vec<u8> = (0..n)
                .map(|_| {
                    let mut v = rng.gen_range(0..250u32);
                    for _ in 0..skew {
                        v = v.min(rng.gen_range(0..250));
                    }
                    v as u8
                })
                .collect();
            let coding = IndexCoding::choose(&indices);
            let stream = coding.encode_stream(&indices);
            let back = coding.decode_stream(&stream, indices.len()).unwrap();
            prop_assert_eq!(back, indices);
        }

        /// The chooser never does worse than the raw fixed-width fallback.
        #[test]
        fn prop_chosen_coding_never_expands(seed in 0u64..500, skew in 0u32..6) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let indices: Vec<u8> = (0..512)
                .map(|_| {
                    let mut v = rng.gen_range(0..64u32);
                    for _ in 0..skew {
                        v = v.min(rng.gen_range(0..64));
                    }
                    v as u8
                })
                .collect();
            let max = indices.iter().copied().max().unwrap_or(0);
            let raw_bits = indices.len() as u64 * u64::from(bits_for(u32::from(max)));
            let coding = IndexCoding::choose(&indices);
            prop_assert!(coding.coded_bits(&indices) <= raw_bits);
        }

        /// Forced-ANS and forced-Rice bundles reconstruct the identical
        /// bundle on fuzzed skewed and uniform index streams — codec
        /// choice is a size concern, never a fidelity one.
        #[test]
        fn prop_ans_and_rice_decode_identically(
            seed in 0u64..1000,
            pool_size in 2usize..32,
            skew in 0u32..6,
        ) {
            let b = fabricated_bundle(seed, pool_size, LutOrder::InputOriented, skew);
            let rice = WpbCodec::with_pref(IndexCodecPref::Rice).encode(&b).unwrap();
            let ans = WpbCodec::with_pref(IndexCodecPref::Ans).encode(&b).unwrap();
            prop_assert_eq!(&WpbCodec::decode_from(rice.as_slice()).unwrap(), &b);
            prop_assert_eq!(&WpbCodec::decode_from(ans.as_slice()).unwrap(), &b);
        }

        /// The streaming section pipeline reconstructs exactly what the
        /// buffer decode does, with transient scratch bounded by the
        /// largest section — for every codec preference.
        #[test]
        fn prop_streaming_equals_buffer_decode(
            seed in 0u64..1000,
            pool_size in 2usize..32,
            skew in 0u32..6,
            pref_bit in 0u8..3,
        ) {
            let pref = match pref_bit {
                0 => IndexCodecPref::Auto,
                1 => IndexCodecPref::Rice,
                _ => IndexCodecPref::Ans,
            };
            let b = fabricated_bundle(seed, pool_size, LutOrder::WeightOriented, skew);
            let bytes = WpbCodec::with_pref(pref).encode(&b).unwrap();
            let buffered = WpbCodec::default().decode(&bytes).unwrap();
            let (streamed, stats) = WpbCodec::decode_from_with_stats(bytes.as_slice()).unwrap();
            prop_assert_eq!(&buffered, &streamed);
            prop_assert!(stats.peak_transient_bytes <= stats.largest_section_bytes);
        }

        /// Truncating a forced-ANS bundle anywhere yields a typed error,
        /// never a panic or a partial bundle.
        #[test]
        fn prop_truncated_ans_bundles_error(seed in 0u64..300, frac in 0.0f64..1.0) {
            let b = fabricated_bundle(seed, 16, LutOrder::InputOriented, 4);
            let bytes = WpbCodec::with_pref(IndexCodecPref::Ans).encode(&b).unwrap();
            let cut = ((bytes.len() - 1) as f64 * frac) as usize;
            prop_assert!(WpbCodec::decode_from(&bytes[..cut]).is_err());
        }
    }
}
