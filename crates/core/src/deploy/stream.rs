//! Streaming, section-oriented WPB reading.
//!
//! [`SectionReader`] pulls a WPB byte stream from any [`std::io::Read`]
//! one section at a time: it owns a single scratch buffer that is reused
//! for every known section's payload (so peak transient memory while
//! decoding is bounded by the **largest section**, not the whole file),
//! verifies each section's CRC-32 before handing the payload out, and
//! skips unknown tags in fixed-size chunks without buffering them at
//! all — forward compatibility costs no memory. [`DecodeStats`] reports
//! what a decode actually allocated, which is how the registry's
//! streaming-reload test proves cold-starting a node never slurps whole
//! bundles.

use super::codec::{crc32_update, CodecError, CRC_INIT};
use std::io::Read;

/// Chunk size for skipping unknown sections and for filling the scratch
/// buffer: bounds the per-read transient even when a crafted length field
/// claims a section far larger than the stream behind it.
const READ_CHUNK: usize = 64 * 1024;

/// One section's wire header.
#[derive(Debug, Clone, Copy)]
pub struct SectionHeader {
    /// The section tag byte.
    pub tag: u8,
    /// Payload length in bytes (CRC excluded).
    pub len: usize,
}

/// What a streaming decode allocated and read — the observability hook
/// behind the "peak transient buffering stays <= largest section"
/// guarantee.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Sections encountered (known and skipped).
    pub sections: usize,
    /// Largest section payload in bytes.
    pub largest_section_bytes: usize,
    /// Peak size of the reusable payload scratch buffer — the decode's
    /// transient high-water mark, <= `largest_section_bytes` always
    /// (skipped sections never enter the scratch at all).
    pub peak_transient_bytes: usize,
    /// Total stream bytes consumed (headers, payloads, checksums).
    pub total_bytes: u64,
}

/// A bounds-checked, CRC-verifying section cursor over any [`Read`].
///
/// Every read error is a typed [`CodecError`]: unexpected end of stream
/// is [`CodecError::Truncated`] naming what was being read, other I/O
/// failures surface as [`CodecError::Io`].
pub struct SectionReader<R> {
    inner: R,
    scratch: Vec<u8>,
    stats: DecodeStats,
}

impl<R: Read> SectionReader<R> {
    /// Wraps a byte stream positioned **after** the 4 magic bytes (the
    /// caller sniffs those to pick a format).
    pub fn new(inner: R) -> Self {
        Self { inner, scratch: Vec::new(), stats: DecodeStats::default() }
    }

    /// Decode accounting so far.
    pub fn stats(&self) -> DecodeStats {
        self.stats
    }

    /// Reads the next section header, or `None` at a clean end of stream
    /// (end of stream mid-header is [`CodecError::Truncated`]).
    pub fn next_section(&mut self) -> Result<Option<SectionHeader>, CodecError> {
        let Some(tag) = self.read_u8_or_eof("section tag")? else {
            return Ok(None);
        };
        let len = self.read_varint("section length")?;
        let len = usize::try_from(len)
            .map_err(|_| CodecError::Malformed(format!("section of {len} bytes")))?;
        self.stats.sections += 1;
        self.stats.largest_section_bytes = self.stats.largest_section_bytes.max(len);
        Ok(Some(SectionHeader { tag, len }))
    }

    /// Reads a section's payload into the reusable scratch buffer,
    /// verifies its trailing CRC-32, and returns it. The returned slice
    /// is valid until the next call on the reader.
    pub fn payload(
        &mut self,
        header: &SectionHeader,
        name: &'static str,
    ) -> Result<&[u8], CodecError> {
        // Growing in capped steps (instead of resizing to the claimed
        // length up front) means a crafted length field on a short stream
        // costs at most one chunk of allocation past the actual data
        // before it fails loudly. Reads land directly in the scratch tail
        // — no bounce buffer, no second copy.
        let mut filled = 0usize;
        while filled < header.len {
            let want = (header.len - filled).min(READ_CHUNK);
            if self.scratch.len() < filled + want {
                self.scratch.resize(filled + want, 0);
            }
            let n = read_some(
                &mut self.inner,
                &mut self.stats,
                &mut self.scratch[filled..filled + want],
                "section payload",
            )?;
            filled += n;
        }
        self.scratch.truncate(filled);
        self.stats.peak_transient_bytes = self.stats.peak_transient_bytes.max(self.scratch.len());
        let crc = self.read_u32le("section checksum")?;
        if crc32_update(CRC_INIT, &self.scratch) ^ 0xFFFF_FFFF != crc {
            return Err(CodecError::Checksum(name));
        }
        Ok(&self.scratch)
    }

    /// Consumes and CRC-checks a section's payload without buffering it:
    /// how unknown tags skip over streams.
    pub fn skip_payload(&mut self, header: &SectionHeader) -> Result<(), CodecError> {
        let mut remaining = header.len;
        let mut chunk = [0u8; READ_CHUNK];
        let mut crc = CRC_INIT;
        while remaining > 0 {
            let want = remaining.min(READ_CHUNK);
            let n = self.read_some(&mut chunk[..want], "skipped section payload")?;
            crc = crc32_update(crc, &chunk[..n]);
            remaining -= n;
        }
        let stored = self.read_u32le("skipped section checksum")?;
        if crc ^ 0xFFFF_FFFF != stored {
            return Err(CodecError::Checksum("unknown"));
        }
        Ok(())
    }

    /// Reads exactly one byte, mapping a clean EOF to `None`.
    fn read_u8_or_eof(&mut self, what: &'static str) -> Result<Option<u8>, CodecError> {
        let mut byte = [0u8; 1];
        loop {
            match self.inner.read(&mut byte) {
                Ok(0) => return Ok(None),
                Ok(_) => {
                    self.stats.total_bytes += 1;
                    return Ok(Some(byte[0]));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(map_io(e, what)),
            }
        }
    }

    /// Reads exactly one byte; EOF is [`CodecError::Truncated`].
    pub fn read_u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        self.read_u8_or_eof(what)?.ok_or(CodecError::Truncated(what))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32le(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let mut buf = [0u8; 4];
        self.read_exact(&mut buf, what)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Reads a LEB128 varint (same wire shape as the buffer reader's).
    pub fn read_varint(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.read_u8(what)?;
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(CodecError::Malformed(format!("varint too long reading {what}")))
    }

    /// Fills `buf` exactly; EOF is [`CodecError::Truncated`].
    pub fn read_exact(&mut self, buf: &mut [u8], what: &'static str) -> Result<(), CodecError> {
        let mut filled = 0usize;
        while filled < buf.len() {
            filled += self.read_some(&mut buf[filled..], what)?;
        }
        Ok(())
    }

    /// One non-empty read into `buf` (retrying interrupts), with EOF and
    /// I/O failures mapped to typed errors.
    fn read_some(&mut self, buf: &mut [u8], what: &'static str) -> Result<usize, CodecError> {
        read_some(&mut self.inner, &mut self.stats, buf, what)
    }
}

/// One non-empty read into `buf` (retrying interrupts), with EOF and I/O
/// failures mapped to typed errors. A free function so `payload` can
/// read straight into the scratch buffer while `self` fields are split.
fn read_some<R: Read>(
    inner: &mut R,
    stats: &mut DecodeStats,
    buf: &mut [u8],
    what: &'static str,
) -> Result<usize, CodecError> {
    loop {
        match inner.read(buf) {
            Ok(0) => return Err(CodecError::Truncated(what)),
            Ok(n) => {
                stats.total_bytes += n as u64;
                return Ok(n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(map_io(e, what)),
        }
    }
}

fn map_io(e: std::io::Error, what: &'static str) -> CodecError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        CodecError::Truncated(what)
    } else {
        CodecError::Io(e)
    }
}
