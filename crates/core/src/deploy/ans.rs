//! Tabled rANS (range asymmetric numeral system) entropy coding for
//! pool-index streams.
//!
//! Rice coding (the WPB v1 coder) is optimal only for geometric
//! histograms and is quantized to whole bits per symbol; a tabled ANS
//! coder closes the remaining gap to the per-layer entropy bound for
//! any histogram shape, spending fractional bits per symbol. The codec
//! here is the classic byte-renormalized rANS:
//!
//! * Symbol frequencies are normalized so they sum to `1 << ANS_SCALE_BITS`
//!   (every occurring symbol keeps frequency >= 1), and the normalized
//!   table ships with the layer (it doubles as the decode table seed).
//! * The encoder runs over the symbols in reverse with a `u32` state
//!   seeded at [`ANS_LOWER_BOUND`], emitting renormalization bytes; the
//!   stream stores the final state first (4 bytes LE) followed by the
//!   renormalization bytes in decode order, so the decoder reads strictly
//!   forward — which is what lets truncation surface as a typed error the
//!   moment the stream runs dry.
//! * The decoder rebuilds a `slot -> symbol` table of `1 << ANS_SCALE_BITS`
//!   entries (4 KiB) per layer and checks that the state returns to
//!   [`ANS_LOWER_BOUND`] with no bytes left over after the last symbol, so
//!   a corrupted-but-CRC-colliding stream still fails loudly.

use super::codec::CodecError;

/// log2 of the frequency-table denominator (the "precision" of the
/// normalized histogram). 12 bits keeps the decode table at 4 KiB while
/// quantizing probabilities finely enough that the coded size stays
/// within a fraction of a percent of the entropy bound for the stream
/// lengths bundles carry.
pub const ANS_SCALE_BITS: u32 = 12;

/// The frequency-table denominator: normalized frequencies sum to this.
pub const ANS_TOTAL: u32 = 1 << ANS_SCALE_BITS;

/// Lower bound of the encoder/decoder state interval
/// `[ANS_LOWER_BOUND, ANS_LOWER_BOUND << 8)`.
pub const ANS_LOWER_BOUND: u32 = 1 << 23;

/// Normalizes a byte-symbol histogram into frequencies summing to
/// [`ANS_TOTAL`], truncated after the last occurring symbol. Every
/// occurring symbol keeps a frequency of at least 1 (so it stays
/// codable); zero-count symbols get 0. Returns `None` for an empty
/// histogram — there is nothing to code.
pub fn normalize_freqs(hist: &[u64; 256]) -> Option<Vec<u16>> {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return None;
    }
    let last = hist.iter().rposition(|&c| c > 0).expect("total > 0");
    let mut freqs: Vec<u32> = hist[..=last]
        .iter()
        .map(|&c| {
            if c == 0 {
                0
            } else {
                // Round to nearest, clamped to >= 1 so the symbol stays
                // representable even when its true probability rounds to 0.
                (((c as u128 * u128::from(ANS_TOTAL)) + u128::from(total) / 2) / u128::from(total))
                    .max(1) as u32
            }
        })
        .collect();
    // Rounding drift: nudge the sum back to exactly ANS_TOTAL, always
    // adjusting the most frequent symbols (they absorb the error with the
    // least relative distortion) and never pushing a frequency below 1.
    let mut sum: u32 = freqs.iter().sum();
    while sum != ANS_TOTAL {
        if sum < ANS_TOTAL {
            let max = freqs
                .iter()
                .enumerate()
                .max_by_key(|&(_, &f)| f)
                .map(|(i, _)| i)
                .expect("non-empty");
            freqs[max] += ANS_TOTAL - sum;
            sum = ANS_TOTAL;
        } else {
            let over = sum - ANS_TOTAL;
            let victim = freqs
                .iter()
                .enumerate()
                .filter(|&(_, &f)| f > 1)
                .max_by_key(|&(_, &f)| f)
                .map(|(i, _)| i)
                .expect("sum > ANS_TOTAL >= symbol count implies a freq > 1");
            let cut = over.min(freqs[victim] - 1);
            freqs[victim] -= cut;
            sum -= cut;
        }
    }
    Some(freqs.iter().map(|&f| f as u16).collect())
}

/// Validates a frequency table read off the wire: 1..=256 entries,
/// every entry <= [`ANS_TOTAL`], summing to exactly [`ANS_TOTAL`].
pub fn validate_freqs(freqs: &[u16]) -> Result<(), CodecError> {
    if freqs.is_empty() || freqs.len() > 256 {
        return Err(CodecError::Malformed(format!(
            "ans frequency table has {} entries",
            freqs.len()
        )));
    }
    let sum: u64 = freqs.iter().map(|&f| u64::from(f)).sum();
    if sum != u64::from(ANS_TOTAL) {
        return Err(CodecError::Malformed(format!(
            "ans frequency table sums to {sum}, expected {ANS_TOTAL}"
        )));
    }
    Ok(())
}

/// Exact coded cost in bits for a stream with histogram `hist` under the
/// normalized table `freqs`: `sum_v count_v * log2(ANS_TOTAL / f_v)` plus
/// the 32-bit state flush. Used by the per-layer codec chooser; the real
/// stream lands within a few bytes of this (renormalization is
/// byte-granular).
pub fn cost_bits(hist: &[u64; 256], freqs: &[u16]) -> f64 {
    let mut bits = 32.0; // state flush
    for (v, &c) in hist.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let f = freqs.get(v).copied().unwrap_or(0);
        debug_assert!(f > 0, "occurring symbol {v} has zero frequency");
        bits += c as f64 * (f64::from(ANS_TOTAL) / f64::from(f)).log2();
    }
    bits
}

/// Cumulative-frequency starts: `cum[s]` is the first state slot owned by
/// symbol `s`.
fn cumulative(freqs: &[u16]) -> Vec<u32> {
    let mut cum = Vec::with_capacity(freqs.len());
    let mut acc = 0u32;
    for &f in freqs {
        cum.push(acc);
        acc += u32::from(f);
    }
    cum
}

/// Encodes `symbols` under the normalized table `freqs`.
///
/// # Panics
///
/// Panics (debug) if a symbol falls outside the table or has zero
/// frequency; callers derive `freqs` from the same stream's histogram via
/// [`normalize_freqs`], which makes that impossible.
pub fn encode(symbols: &[u8], freqs: &[u16]) -> Vec<u8> {
    let cum = cumulative(freqs);
    let mut renorm = Vec::with_capacity(symbols.len() / 2 + 8);
    let mut x = ANS_LOWER_BOUND;
    for &s in symbols.iter().rev() {
        let f = u32::from(freqs[s as usize]);
        debug_assert!(f > 0, "symbol {s} has zero frequency");
        // Renormalize so the encode step keeps x inside the interval.
        let x_max = ((ANS_LOWER_BOUND >> ANS_SCALE_BITS) << 8) * f;
        while x >= x_max {
            renorm.push(x as u8);
            x >>= 8;
        }
        x = ((x / f) << ANS_SCALE_BITS) + (x % f) + cum[s as usize];
    }
    // Final state first (the decoder's seed), then the renormalization
    // bytes reversed into forward decode order.
    let mut out = Vec::with_capacity(4 + renorm.len());
    out.extend_from_slice(&x.to_le_bytes());
    out.extend(renorm.iter().rev());
    out
}

/// Decodes `count` symbols from `stream` under the table `freqs`,
/// appending them to `out` (which callers preallocate).
///
/// # Errors
///
/// [`CodecError::Truncated`] when the stream runs dry mid-symbol and
/// [`CodecError::Malformed`] when the final state or stream length is
/// wrong — a partial or corrupted stream never yields symbols silently.
pub fn decode_into(
    stream: &[u8],
    freqs: &[u16],
    count: usize,
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    let cum = cumulative(freqs);
    // slot -> symbol lookup: 4 KiB, rebuilt per layer (the "tabled" part).
    let mut slot_to_sym = vec![0u8; ANS_TOTAL as usize];
    for (s, &f) in freqs.iter().enumerate() {
        let start = cum[s] as usize;
        slot_to_sym[start..start + f as usize].fill(s as u8);
    }
    let state_bytes = stream
        .get(..4)
        .ok_or(CodecError::Truncated("ans state"))?
        .try_into()
        .expect("4-byte slice");
    let mut x = u32::from_le_bytes(state_bytes);
    if !(ANS_LOWER_BOUND..ANS_LOWER_BOUND << 8).contains(&x) {
        return Err(CodecError::Malformed(format!("ans state {x:#x} outside the coder interval")));
    }
    let mut pos = 4usize;
    for _ in 0..count {
        let slot = x & (ANS_TOTAL - 1);
        let s = slot_to_sym[slot as usize];
        x = u32::from(freqs[s as usize]) * (x >> ANS_SCALE_BITS) + slot - cum[s as usize];
        while x < ANS_LOWER_BOUND {
            let byte = *stream.get(pos).ok_or(CodecError::Truncated("ans stream"))?;
            x = (x << 8) | u32::from(byte);
            pos += 1;
        }
        out.push(s);
    }
    // The encoder seeded at ANS_LOWER_BOUND and the decoder must unwind
    // back to it exactly, with every byte consumed: anything else means
    // the stream was corrupted in a way the section CRC happened to miss
    // or the symbol count lied.
    if x != ANS_LOWER_BOUND {
        return Err(CodecError::Malformed(format!(
            "ans stream did not unwind to the seed state (ended at {x:#x})"
        )));
    }
    if pos != stream.len() {
        return Err(CodecError::Malformed(format!(
            "{} trailing bytes after the ans stream",
            stream.len() - pos
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn histogram(symbols: &[u8]) -> [u64; 256] {
        let mut hist = [0u64; 256];
        for &s in symbols {
            hist[s as usize] += 1;
        }
        hist
    }

    fn round_trip(symbols: &[u8]) -> Vec<u8> {
        let freqs = normalize_freqs(&histogram(symbols)).expect("non-empty");
        validate_freqs(&freqs).expect("normalized table is valid");
        let stream = encode(symbols, &freqs);
        let mut out = Vec::with_capacity(symbols.len());
        decode_into(&stream, &freqs, symbols.len(), &mut out).expect("decode");
        out
    }

    #[test]
    fn round_trips_skewed_uniform_and_degenerate_streams() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let uniform: Vec<u8> = (0..4096).map(|_| rng.gen_range(0..16) as u8).collect();
        assert_eq!(round_trip(&uniform), uniform);

        let skewed: Vec<u8> = (0..4096)
            .map(|_| {
                let mut v = rng.gen_range(0..16u32);
                for _ in 0..3 {
                    v = v.min(rng.gen_range(0..16));
                }
                v as u8
            })
            .collect();
        assert_eq!(round_trip(&skewed), skewed);

        // Single-symbol stream: the most extreme histogram the normalizer
        // can see (frequency table is one entry at full scale).
        let constant = vec![7u8; 10_000];
        let freqs = normalize_freqs(&histogram(&constant)).unwrap();
        assert_eq!(freqs, {
            let mut f = vec![0u16; 8];
            f[7] = ANS_TOTAL as u16;
            f
        });
        assert_eq!(round_trip(&constant), constant);

        // Sparse symbols at both ends of the byte range.
        let mut ends = vec![0u8; 500];
        ends.extend(std::iter::repeat_n(255u8, 500));
        ends.push(128);
        assert_eq!(round_trip(&ends), ends);
    }

    #[test]
    fn coded_size_tracks_the_entropy_bound() {
        // A clearly non-geometric histogram Rice cannot fit: two heavy
        // symbols plus a light one.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let symbols: Vec<u8> = (0..20_000)
            .map(|_| match rng.gen_range(0..20) {
                0..=8 => 0u8,
                9..=17 => 1,
                _ => 2,
            })
            .collect();
        let hist = histogram(&symbols);
        let freqs = normalize_freqs(&hist).unwrap();
        let stream = encode(&symbols, &freqs);
        let entropy: f64 = {
            let total = symbols.len() as f64;
            hist.iter()
                .filter(|&&c| c > 0)
                .map(|&c| {
                    let p = c as f64 / total;
                    -p * p.log2()
                })
                .sum()
        };
        let coded_per_sym = stream.len() as f64 * 8.0 / symbols.len() as f64;
        assert!(
            coded_per_sym <= entropy * 1.01 + 0.01,
            "coded {coded_per_sym:.4} b/sym vs entropy {entropy:.4}"
        );
        // And the analytic cost estimate matches the real stream closely.
        let est = cost_bits(&hist, &freqs) / 8.0;
        assert!(
            (est - stream.len() as f64).abs() <= 16.0,
            "estimated {est:.1} bytes vs actual {}",
            stream.len()
        );
    }

    #[test]
    fn truncation_and_corruption_are_typed_errors() {
        let symbols: Vec<u8> = (0..512).map(|i| (i % 5) as u8).collect();
        let freqs = normalize_freqs(&histogram(&symbols)).unwrap();
        let stream = encode(&symbols, &freqs);
        for cut in [0, 1, 3, stream.len() / 2, stream.len() - 1] {
            let mut out = Vec::new();
            let err = decode_into(&stream[..cut], &freqs, symbols.len(), &mut out);
            assert!(err.is_err(), "prefix of {cut} bytes decoded");
        }
        // Flipping a byte must never panic, and whatever slips past the
        // final-state check still yields exactly `count` symbols — silent
        // *content* corruption is the section CRC's job to catch, one
        // layer up (a decoder-internal check can't be exhaustive). The
        // state check should still reject the bulk of corruptions.
        let mut detected = 0usize;
        for at in 0..stream.len() {
            let mut bad = stream.clone();
            bad[at] ^= 0x41;
            let mut out = Vec::new();
            match decode_into(&bad, &freqs, symbols.len(), &mut out) {
                Ok(()) => assert_eq!(out.len(), symbols.len()),
                Err(_) => detected += 1,
            }
        }
        assert!(
            detected * 2 > stream.len(),
            "state check caught only {detected}/{} corruptions",
            stream.len()
        );
        // A count mismatch is caught by the state/trailing checks.
        let mut out = Vec::new();
        assert!(decode_into(&stream, &freqs, symbols.len() - 1, &mut out).is_err());
    }

    #[test]
    fn hostile_frequency_tables_are_rejected() {
        assert!(validate_freqs(&[]).is_err());
        assert!(validate_freqs(&vec![16u16; 257]).is_err());
        assert!(validate_freqs(&[100, 100]).is_err(), "sum far below the scale");
        let mut too_big = vec![0u16; 4];
        too_big[0] = ANS_TOTAL as u16;
        too_big[1] = 1;
        assert!(validate_freqs(&too_big).is_err(), "sum above the scale");
        let mut exact = vec![0u16; 4];
        exact[0] = (ANS_TOTAL - 5) as u16;
        exact[3] = 5;
        assert!(validate_freqs(&exact).is_ok());
    }

    #[test]
    fn normalization_keeps_every_occurring_symbol_codable() {
        // 255 rare symbols against one overwhelming one: naive rounding
        // would zero the rare ones out.
        let mut hist = [0u64; 256];
        hist[0] = 1_000_000;
        for h in hist.iter_mut().skip(1) {
            *h = 1;
        }
        let freqs = normalize_freqs(&hist).unwrap();
        assert_eq!(freqs.len(), 256);
        assert!(freqs.iter().all(|&f| f >= 1));
        assert_eq!(freqs.iter().map(|&f| u32::from(f)).sum::<u32>(), ANS_TOTAL);
    }
}
