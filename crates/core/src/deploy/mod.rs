//! The deployable network bundle.
//!
//! Everything a microcontroller needs to run a weight-pool network, in one
//! serializable artifact (the right-hand side of the paper's Figure 1):
//! per-layer pool-index maps, the shared lookup table, the layers kept at
//! int8 (first conv, depthwise, dense), pooling/residual structure, and
//! per-layer requantization parameters.
//!
//! This module also provides the index-stream statistics used by the
//! compression analysis: pool usage histograms and the empirical index
//! entropy (how much further an entropy coder could shrink the index
//! storage below the flat `log2 S` bits — a natural extension the paper
//! leaves open).

pub mod ans;
pub mod codec;
pub mod stream;

use crate::compress::{self, is_compressible};
use crate::netspec::{LayerSpec, NetSpec};
use crate::{LookupTable, PoolConfig, WeightPool};
use codec::{CodecError, EncodeOptions, Format, WpbCodec};
use serde::{Deserialize, Serialize};
use std::io::Read;
use std::path::Path;
pub use stream::DecodeStats;
use wp_nn::Sequential;
use wp_quant::QuantParams;

/// One convolution's deployment payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConvPayload {
    /// Pool-compressed: canonical-order byte indices into the shared pool.
    Pooled {
        /// Index map in `wp-core::grouping` canonical order.
        indices: Vec<u8>,
    },
    /// Kept at int8 (first layer / layers with non-groupable depth).
    Direct {
        /// `[K, C, R, S]` int8 weights.
        weights: Vec<i8>,
        /// The weight quantization scale.
        scale: f32,
    },
}

/// A deployable weight-pool network bundle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeployBundle {
    /// Network shape description (drives the runtime walk).
    pub spec: NetSpec,
    /// The shared weight pool (kept for re-deriving LUTs at other widths).
    pub pool: WeightPool,
    /// The lookup table shipped to flash.
    pub lut: LookupTable,
    /// Per-conv payloads, in `visit_convs` traversal order.
    pub convs: Vec<ConvPayload>,
    /// Activation bitwidth the bundle was calibrated for.
    pub act_bits: u8,
}

impl DeployBundle {
    /// Builds a bundle from a trained, **projected** model.
    ///
    /// The model must already be projected onto `pool` (index maps are read
    /// from its weights). Uncompressed convs are quantized to int8
    /// symmetric.
    ///
    /// # Panics
    ///
    /// Panics if `spec`'s conv count does not match the model's.
    pub fn from_model(
        model: &mut Sequential,
        spec: NetSpec,
        pool: &WeightPool,
        lut: LookupTable,
        cfg: &PoolConfig,
        act_bits: u8,
    ) -> Self {
        let maps = compress::index_maps(model, pool, cfg);
        let mut convs: Vec<ConvPayload> = Vec::with_capacity(maps.len());
        let mut pos = 0usize;
        compress::for_each_conv_indexed(model, |p, conv| {
            debug_assert_eq!(p, pos);
            if let Some(Some(indices)) = maps.get(p) {
                convs.push(ConvPayload::Pooled { indices: indices.clone() });
            } else {
                debug_assert!(!is_compressible(p, conv, cfg));
                let params = QuantParams::symmetric_from_values(conv.weight().data(), 8);
                let weights: Vec<i8> =
                    conv.weight().data().iter().map(|&w| params.quantize(w) as i8).collect();
                convs.push(ConvPayload::Direct { weights, scale: params.scale() });
            }
            pos += 1;
        });
        let conv_specs = spec.layers.iter().filter(|l| matches!(l, LayerSpec::Conv(_))).count();
        assert_eq!(
            conv_specs,
            convs.len(),
            "spec has {conv_specs} convs, model has {}",
            convs.len()
        );
        Self { spec, pool: pool.clone(), lut, convs, act_bits }
    }

    /// Total flash bytes of the bundle's payload (indices + int8 weights +
    /// LUT), excluding biases.
    pub fn flash_bytes(&self) -> usize {
        let mut bytes = self.lut.storage_bytes();
        for c in &self.convs {
            bytes += match c {
                ConvPayload::Pooled { indices } => indices.len(),
                ConvPayload::Direct { weights, .. } => weights.len(),
            };
        }
        for layer in &self.spec.layers {
            if let LayerSpec::Dense { in_features, out_features, .. } = layer {
                bytes += in_features * out_features;
            }
        }
        bytes
    }

    /// Histogram of pool-index usage across every pooled layer.
    pub fn index_histogram(&self) -> Vec<u64> {
        let mut hist = vec![0u64; self.pool.len()];
        for c in &self.convs {
            if let ConvPayload::Pooled { indices } = c {
                for &i in indices {
                    hist[i as usize] += 1;
                }
            }
        }
        hist
    }

    /// Empirical entropy of the index stream in bits per index.
    ///
    /// Flat coding costs `log2 S` (or 8 in byte-aligned deployments); the
    /// gap to the entropy is the headroom an entropy coder would buy.
    pub fn index_entropy_bits(&self) -> f64 {
        let hist = self.index_histogram();
        let total: u64 = hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mut h = 0.0f64;
        for &count in &hist {
            if count > 0 {
                let p = count as f64 / total as f64;
                h -= p * p.log2();
            }
        }
        h
    }

    /// Saves the bundle with the path's default encode options
    /// ([`EncodeOptions::for_path`]): `.wpb` writes the entropy-coded
    /// binary format ([`codec::WpbCodec`]) with automatic per-layer
    /// index-codec selection, anything else JSON.
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        self.save_with(path, &EncodeOptions::for_path(path))
    }

    /// Saves the bundle under explicit [`EncodeOptions`] — the same
    /// selection helper `save`, `to_bytes`, the CLI, and the registry
    /// all route through, so they can't disagree about codec choice.
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error.
    pub fn save_with(&self, path: impl AsRef<Path>, opts: &EncodeOptions) -> std::io::Result<()> {
        let bytes = self.to_bytes_with(opts).map_err(std::io::Error::other)?;
        std::fs::write(path, bytes)
    }

    /// Loads a bundle saved by [`DeployBundle::save`] in either format;
    /// the format is sniffed from the file's magic bytes, so JSON and
    /// `.wpb` files load interchangeably everywhere a bundle path is
    /// accepted (engine loader, server hot-swap, `wp_serve --model`).
    ///
    /// WPB files stream through [`DeployBundle::from_reader`]: peak
    /// transient memory is bounded by the largest section, not the file
    /// size.
    ///
    /// # Errors
    ///
    /// Returns any I/O or deserialization error (truncated or corrupted
    /// WPB files fail their section checksums loudly).
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        Self::from_reader(std::io::BufReader::new(file)).map_err(|e| match e {
            CodecError::Io(io) => io,
            other => std::io::Error::other(other),
        })
    }

    /// Serializes the bundle with the given format's codec (automatic
    /// index-codec selection; use [`DeployBundle::to_bytes_with`] to
    /// force one).
    ///
    /// # Errors
    ///
    /// Returns any [`CodecError`] from the codec.
    pub fn to_bytes(&self, format: Format) -> Result<Vec<u8>, CodecError> {
        self.to_bytes_with(&EncodeOptions::new(format))
    }

    /// Serializes the bundle under explicit [`EncodeOptions`].
    ///
    /// # Errors
    ///
    /// Returns any [`CodecError`] from the codec.
    pub fn to_bytes_with(&self, opts: &EncodeOptions) -> Result<Vec<u8>, CodecError> {
        opts.encode(self)
    }

    /// Reconstructs a bundle from serialized bytes in either format
    /// (sniffed via [`Format::sniff`]).
    ///
    /// # Errors
    ///
    /// Returns any [`CodecError`] from the sniffed codec.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        Format::sniff(bytes).codec().decode(bytes)
    }

    /// Reads a bundle from any [`Read`] stream, sniffing the format from
    /// the first bytes. WPB streams decode section-by-section through
    /// [`stream::SectionReader`] — no whole-file intermediate buffer is
    /// ever built, and peak transient allocation is bounded by the
    /// largest section. JSON streams (no fixed-size magic; the format is
    /// one document) still buffer fully.
    ///
    /// # Errors
    ///
    /// Returns any [`CodecError`]; stream-level I/O failures surface as
    /// [`CodecError::Io`], truncation as [`CodecError::Truncated`].
    pub fn from_reader<R: Read>(reader: R) -> Result<Self, CodecError> {
        Self::from_reader_with_stats(reader).map(|(bundle, _)| bundle)
    }

    /// [`DeployBundle::from_reader`], also returning [`DecodeStats`] —
    /// the allocation accounting the registry's streaming-reload test
    /// asserts on (`peak_transient_bytes <= largest_section_bytes`).
    ///
    /// # Errors
    ///
    /// Returns any [`CodecError`] from the stream or the codec.
    pub fn from_reader_with_stats<R: Read>(
        mut reader: R,
    ) -> Result<(Self, DecodeStats), CodecError> {
        // Sniff the format from the first 4 bytes without consuming them
        // from the logical stream: WPB gets the streaming section path,
        // anything else is JSON and buffers (serde_json needs the full
        // document anyway).
        let mut head = [0u8; 4];
        let mut got = 0usize;
        while got < head.len() {
            match reader.read(&mut head[got..]) {
                Ok(0) => break,
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(CodecError::Io(e)),
            }
        }
        let head = &head[..got];
        if Format::sniff(head) == Format::Wpb {
            WpbCodec::decode_from_with_stats(head.chain(reader))
        } else {
            let mut bytes = head.to_vec();
            reader.read_to_end(&mut bytes).map_err(CodecError::Io)?;
            let n = bytes.len();
            let bundle = Format::Json.codec().decode(&bytes)?;
            let stats = DecodeStats {
                sections: 1,
                largest_section_bytes: n,
                peak_transient_bytes: n,
                total_bytes: n as u64,
            };
            Ok((bundle, stats))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netspec::ConvSpec;
    use rand::SeedableRng;
    use wp_cluster::DistanceMetric;
    use wp_core_test_helpers::*;

    /// Local helpers (kept in a module so the test section reads clean).
    mod wp_core_test_helpers {
        pub use crate::LutOrder;
        pub use wp_nn::{Conv2d, Relu};
    }

    fn setup() -> (Sequential, NetSpec, WeightPool, PoolConfig) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut net = Sequential::new();
        net.push(Conv2d::new(3, 8, 3, 1, 1, &mut rng));
        net.push(Relu::new());
        net.push(Conv2d::new(8, 16, 3, 1, 1, &mut rng));
        let cfg = PoolConfig::new(8).metric(DistanceMetric::Euclidean);
        let pool = compress::build_pool(&mut net, &cfg, &mut rng).unwrap();
        compress::project(&mut net, &pool, &cfg);
        let spec = NetSpec {
            name: "toy".into(),
            input: (3, 8, 8),
            classes: 0,
            layers: vec![
                LayerSpec::Conv(ConvSpec {
                    in_ch: 3,
                    out_ch: 8,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    compressed: false,
                }),
                LayerSpec::Conv(ConvSpec {
                    in_ch: 8,
                    out_ch: 16,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    compressed: true,
                }),
            ],
        };
        (net, spec, pool, cfg)
    }

    fn bundle() -> DeployBundle {
        let (mut net, spec, pool, cfg) = setup();
        let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
        DeployBundle::from_model(&mut net, spec, &pool, lut, &cfg, 8)
    }

    #[test]
    fn payload_kinds_follow_compressibility() {
        let b = bundle();
        assert!(matches!(b.convs[0], ConvPayload::Direct { .. }));
        assert!(matches!(b.convs[1], ConvPayload::Pooled { .. }));
    }

    #[test]
    fn flash_accounting_counts_all_parts() {
        let b = bundle();
        // Direct conv: 8*3*9 int8 bytes; pooled: 16 filters x 1 group x 9
        // taps = 144 index bytes; LUT 2^8 * 8 entries = 2048 bytes.
        assert_eq!(b.flash_bytes(), 8 * 3 * 9 + 144 + 2048);
    }

    #[test]
    fn histogram_covers_all_indices() {
        let b = bundle();
        let hist = b.index_histogram();
        assert_eq!(hist.iter().sum::<u64>(), 144);
        assert_eq!(hist.len(), 8);
    }

    #[test]
    fn entropy_bounded_by_log2_pool() {
        let b = bundle();
        let h = b.index_entropy_bits();
        assert!(h >= 0.0);
        assert!(h <= (b.pool.len() as f64).log2() + 1e-9, "entropy {h}");
    }

    #[test]
    fn save_load_round_trip() {
        let b = bundle();
        let dir = std::env::temp_dir().join("wp_deploy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle.json");
        b.save(&path).unwrap();
        let back = DeployBundle::load(&path).unwrap();
        assert_eq!(b, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wpb_save_load_round_trip_by_extension() {
        let b = bundle();
        let dir = std::env::temp_dir().join("wp_deploy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle.wpb");
        b.save(&path).unwrap();
        let raw = std::fs::read(&path).unwrap();
        assert!(raw.starts_with(b"WPB1"), "extension .wpb must write the binary format");
        let back = DeployBundle::load(&path).unwrap();
        assert_eq!(b, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_index_stream_has_zero_entropy() {
        // A bundle whose every conv is direct has an empty index stream;
        // its entropy is 0.0, never NaN.
        let mut b = bundle();
        b.convs[1] = ConvPayload::Direct { weights: vec![0; 8 * 16 * 9], scale: 1.0 };
        assert_eq!(b.index_entropy_bits(), 0.0);
        assert!(!b.index_entropy_bits().is_nan());
        // Same for an empty pooled payload.
        b.convs[1] = ConvPayload::Pooled { indices: Vec::new() };
        assert_eq!(b.index_entropy_bits(), 0.0);
    }

    #[test]
    fn uniform_indices_have_full_entropy() {
        let mut b = bundle();
        // Force a uniform index stream.
        if let ConvPayload::Pooled { indices } = &mut b.convs[1] {
            for (i, v) in indices.iter_mut().enumerate() {
                *v = (i % 8) as u8;
            }
        }
        assert!((b.index_entropy_bits() - 3.0).abs() < 1e-9);
    }
}
