//! Architecture shape descriptions shared by storage accounting and the
//! runtime simulator.
//!
//! A [`NetSpec`] is a flat, parameter-free description of a network's layer
//! shapes. It deliberately carries no weights: compression ratios (Table 3)
//! depend only on shapes, and the MCU runtime simulation (Table 7) runs
//! kernels on synthetic data of the right shape.

use serde::{Deserialize, Serialize};

/// Shape of one standard convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels (filters).
    pub out_ch: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Spatial stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
    /// Whether this layer is weight-pool compressed.
    pub compressed: bool,
}

impl ConvSpec {
    /// Weight parameter count, `K·C·R·S`.
    pub fn weights(&self) -> u64 {
        (self.out_ch * self.in_ch * self.kernel * self.kernel) as u64
    }
}

/// One layer of a network, shapes only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Standard convolution (assumed followed by ReLU in runtime cost).
    Conv(ConvSpec),
    /// Depthwise convolution (one kernel per channel; never compressed).
    DwConv {
        /// Channels (input = output).
        channels: usize,
        /// Square kernel side.
        kernel: usize,
        /// Spatial stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Fully-connected layer.
    Dense {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
        /// Whether compressed with the pool (off by default, footnote 1).
        compressed: bool,
    },
    /// Non-overlapping max pooling.
    MaxPool {
        /// Window and stride.
        size: usize,
    },
    /// Non-overlapping average pooling.
    AvgPool {
        /// Window and stride.
        size: usize,
    },
    /// Global average pooling to 1×1.
    GlobalAvgPool,
    /// Elementwise residual add at the current activation shape
    /// (runtime cost only; no parameters).
    ResidualAdd,
}

/// A network description: input shape, classes and ordered layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetSpec {
    /// Human-readable network name.
    pub name: String,
    /// Input shape `(channels, height, width)`.
    pub input: (usize, usize, usize),
    /// Number of output classes.
    pub classes: usize,
    /// Layers in execution order.
    pub layers: Vec<LayerSpec>,
}

/// A layer with its activation shapes resolved by walking the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedLayer {
    /// The layer.
    pub spec: LayerSpec,
    /// Input channels at this point.
    pub in_ch: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

/// Weight-count summary of a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParamCounts {
    /// Standard-conv weights.
    pub conv: u64,
    /// Standard-conv weights in compressed layers.
    pub conv_compressed: u64,
    /// Depthwise-conv weights.
    pub depthwise: u64,
    /// Dense weights.
    pub dense: u64,
    /// Dense weights in compressed layers.
    pub dense_compressed: u64,
}

impl ParamCounts {
    /// All weights (conv + depthwise + dense), the storage baseline.
    pub fn total(&self) -> u64 {
        self.conv + self.depthwise + self.dense
    }

    /// Weights covered by the pool.
    pub fn compressed(&self) -> u64 {
        self.conv_compressed + self.dense_compressed
    }

    /// Weights stored directly at the baseline precision.
    pub fn uncompressed(&self) -> u64 {
        self.total() - self.compressed()
    }
}

impl NetSpec {
    /// Walks the network, resolving every layer's activation shapes.
    ///
    /// # Panics
    ///
    /// Panics if a dense layer's `in_features` does not match the flattened
    /// activation size, or a pool window exceeds the activation.
    pub fn resolve(&self) -> Vec<ResolvedLayer> {
        let (mut c, mut h, mut w) = self.input;
        let mut out = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (in_ch, in_h, in_w) = (c, h, w);
            match *layer {
                LayerSpec::Conv(cs) => {
                    assert_eq!(
                        cs.in_ch, c,
                        "{}: conv in_ch {} at activation depth {c}",
                        self.name, cs.in_ch
                    );
                    c = cs.out_ch;
                    h = (h + 2 * cs.pad - cs.kernel) / cs.stride + 1;
                    w = (w + 2 * cs.pad - cs.kernel) / cs.stride + 1;
                }
                LayerSpec::DwConv { channels, kernel, stride, pad } => {
                    assert_eq!(channels, c, "{}: depthwise channels mismatch", self.name);
                    h = (h + 2 * pad - kernel) / stride + 1;
                    w = (w + 2 * pad - kernel) / stride + 1;
                }
                LayerSpec::Dense { in_features, out_features, .. } => {
                    assert_eq!(
                        in_features,
                        c * h * w,
                        "{}: dense expects {in_features}, activation is {c}x{h}x{w}",
                        self.name
                    );
                    c = out_features;
                    h = 1;
                    w = 1;
                }
                LayerSpec::MaxPool { size } | LayerSpec::AvgPool { size } => {
                    assert!(h >= size && w >= size, "{}: pool window too large", self.name);
                    h /= size;
                    w /= size;
                }
                LayerSpec::GlobalAvgPool => {
                    h = 1;
                    w = 1;
                }
                LayerSpec::ResidualAdd => {}
            }
            out.push(ResolvedLayer {
                spec: *layer,
                in_ch,
                in_h,
                in_w,
                out_ch: c,
                out_h: h,
                out_w: w,
            });
        }
        out
    }

    /// Weight-count summary.
    pub fn params(&self) -> ParamCounts {
        let mut p = ParamCounts::default();
        for layer in &self.layers {
            match *layer {
                LayerSpec::Conv(cs) => {
                    p.conv += cs.weights();
                    if cs.compressed {
                        p.conv_compressed += cs.weights();
                    }
                }
                LayerSpec::DwConv { channels, kernel, .. } => {
                    p.depthwise += (channels * kernel * kernel) as u64;
                }
                LayerSpec::Dense { in_features, out_features, compressed } => {
                    let n = (in_features * out_features) as u64;
                    p.dense += n;
                    if compressed {
                        p.dense_compressed += n;
                    }
                }
                _ => {}
            }
        }
        p
    }

    /// Multiply-accumulate count of one inference (convs + dense).
    pub fn macs(&self) -> u64 {
        let mut macs = 0u64;
        for layer in self.resolve() {
            match layer.spec {
                LayerSpec::Conv(cs) => {
                    macs += cs.weights() * (layer.out_h * layer.out_w) as u64;
                }
                LayerSpec::DwConv { channels, kernel, .. } => {
                    macs += (channels * kernel * kernel * layer.out_h * layer.out_w) as u64;
                }
                LayerSpec::Dense { in_features, out_features, .. } => {
                    macs += (in_features * out_features) as u64;
                }
                _ => {}
            }
        }
        macs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_net() -> NetSpec {
        NetSpec {
            name: "toy".into(),
            input: (3, 8, 8),
            classes: 10,
            layers: vec![
                LayerSpec::Conv(ConvSpec {
                    in_ch: 3,
                    out_ch: 16,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    compressed: false,
                }),
                LayerSpec::MaxPool { size: 2 },
                LayerSpec::Conv(ConvSpec {
                    in_ch: 16,
                    out_ch: 32,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    compressed: true,
                }),
                LayerSpec::GlobalAvgPool,
                LayerSpec::Dense { in_features: 32, out_features: 10, compressed: false },
            ],
        }
    }

    #[test]
    fn resolve_tracks_shapes() {
        let r = toy_net().resolve();
        assert_eq!((r[0].out_ch, r[0].out_h, r[0].out_w), (16, 8, 8));
        assert_eq!((r[1].out_h, r[1].out_w), (4, 4));
        assert_eq!((r[2].out_ch, r[2].out_h), (32, 4));
        assert_eq!((r[3].out_h, r[3].out_w), (1, 1));
        assert_eq!(r[4].out_ch, 10);
    }

    #[test]
    fn params_split_compressed() {
        let p = toy_net().params();
        assert_eq!(p.conv, (16 * 3 * 9 + 32 * 16 * 9) as u64);
        assert_eq!(p.conv_compressed, (32 * 16 * 9) as u64);
        assert_eq!(p.dense, 320);
        assert_eq!(p.uncompressed(), (16 * 3 * 9) as u64 + 320);
    }

    #[test]
    fn macs_count() {
        let m = toy_net().macs();
        let expect = (16 * 3 * 9 * 64) + (32 * 16 * 9 * 16) + 320;
        assert_eq!(m, expect as u64);
    }

    #[test]
    #[should_panic(expected = "conv in_ch")]
    fn mismatched_channels_rejected() {
        let mut net = toy_net();
        net.layers[2] = LayerSpec::Conv(ConvSpec {
            in_ch: 99,
            out_ch: 32,
            kernel: 3,
            stride: 1,
            pad: 1,
            compressed: true,
        });
        net.resolve();
    }

    #[test]
    #[should_panic(expected = "dense expects")]
    fn mismatched_dense_rejected() {
        let mut net = toy_net();
        net.layers[4] = LayerSpec::Dense { in_features: 7, out_features: 10, compressed: false };
        net.resolve();
    }

    #[test]
    fn residual_add_keeps_shape() {
        let mut net = toy_net();
        net.layers.insert(1, LayerSpec::ResidualAdd);
        let r = net.resolve();
        assert_eq!((r[1].out_ch, r[1].out_h, r[1].out_w), (16, 8, 8));
    }
}
