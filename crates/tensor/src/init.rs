//! Random weight initialization helpers.

use crate::Tensor;
use rand::Rng;
use rand_distr_shim::sample_standard_normal;

/// Fills a tensor with Kaiming-normal initialized values,
/// `N(0, sqrt(2 / fan_in))`, the standard initialization for ReLU CNNs.
///
/// `fan_in` should be `in_channels * kernel_h * kernel_w` for convolutions
/// and the input feature count for dense layers.
///
/// # Panics
///
/// Panics if `fan_in` is zero.
pub fn fill_kaiming_normal(t: &mut Tensor<f32>, fan_in: usize, rng: &mut impl Rng) {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f32).sqrt();
    for v in t.data_mut() {
        *v = sample_standard_normal(rng) * std;
    }
}

/// Fills a tensor with values drawn uniformly from `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn fill_uniform(t: &mut Tensor<f32>, lo: f32, hi: f32, rng: &mut impl Rng) {
    assert!(lo < hi, "empty range [{lo}, {hi})");
    for v in t.data_mut() {
        *v = rng.gen_range(lo..hi);
    }
}

/// Box-Muller standard-normal sampling so we do not need the `rand_distr`
/// crate for a single distribution.
mod rand_distr_shim {
    use rand::Rng;

    pub fn sample_standard_normal(rng: &mut impl Rng) -> f32 {
        // Box-Muller transform; u1 in (0, 1] to keep ln finite.
        let u1: f32 = 1.0 - rng.gen::<f32>();
        let u2: f32 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kaiming_has_reasonable_spread() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut t = Tensor::<f32>::zeros(&[64, 8, 3, 3]);
        fill_kaiming_normal(&mut t, 8 * 3 * 3, &mut rng);
        let n = t.len() as f32;
        let mean: f32 = t.data().iter().sum::<f32>() / n;
        let var: f32 = t.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
        let expect_std = (2.0f32 / 72.0).sqrt();
        assert!(mean.abs() < 0.01, "mean {mean} too far from 0");
        assert!(
            (var.sqrt() - expect_std).abs() / expect_std < 0.1,
            "std {} vs expected {expect_std}",
            var.sqrt()
        );
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut t = Tensor::<f32>::zeros(&[1000]);
        fill_uniform(&mut t, -0.5, 0.25, &mut rng);
        assert!(t.data().iter().all(|&v| (-0.5..0.25).contains(&v)));
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = Tensor::<f32>::zeros(&[16]);
        let mut b = Tensor::<f32>::zeros(&[16]);
        let mut r1 = rand::rngs::StdRng::seed_from_u64(42);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(42);
        fill_kaiming_normal(&mut a, 4, &mut r1);
        fill_kaiming_normal(&mut b, 4, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "fan_in")]
    fn zero_fan_in_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut t = Tensor::<f32>::zeros(&[4]);
        fill_kaiming_normal(&mut t, 0, &mut rng);
    }
}
