//! The owned dense tensor type.

use crate::Shape;
use serde::{Deserialize, Serialize};

/// An owned, row-major, dense tensor.
///
/// Activations use `[N, C, H, W]` layout and convolution weights use
/// `[K, C, R, S]`. Elements are stored contiguously with the innermost
/// dimension varying fastest.
///
/// # Example
///
/// ```
/// use wp_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.data()[3], 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor<T> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor<T> {
    /// Creates a tensor of the given shape filled with `T::default()`.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![T::default(); shape.len()];
        Self { shape, data }
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(dims: &[usize], value: T) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.len()];
        Self { shape, data }
    }
}

impl<T: Copy> Tensor<T> {
    /// Wraps an existing buffer in a tensor.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `dims`.
    pub fn from_vec(data: Vec<T>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer in row-major order.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the backing buffer in row-major order.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn at(&self, index: &[usize]) -> T {
        self.data[self.shape.offset(index)]
    }

    /// Mutable reference to the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut T {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Fast-path getter for rank-4 tensors (`[N, C, H, W]` or `[K, C, R, S]`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the tensor is not rank 4 or the index is out
    /// of bounds.
    #[inline]
    pub fn get4(&self, n: usize, c: usize, h: usize, w: usize) -> T {
        debug_assert_eq!(self.shape.rank(), 4);
        let d = self.shape.dims();
        debug_assert!(n < d[0] && c < d[1] && h < d[2] && w < d[3]);
        self.data[((n * d[1] + c) * d[2] + h) * d[3] + w]
    }

    /// Fast-path setter for rank-4 tensors.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the tensor is not rank 4 or the index is out
    /// of bounds.
    #[inline]
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, value: T) {
        debug_assert_eq!(self.shape.rank(), 4);
        let d = self.shape.dims();
        debug_assert!(n < d[0] && c < d[1] && h < d[2] && w < d[3]);
        self.data[((n * d[1] + c) * d[2] + h) * d[3] + w] = value;
    }

    /// Returns a tensor with the same data reinterpreted under a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the new shape's element count differs.
    pub fn reshape(&self, dims: &[usize]) -> Tensor<T> {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.len(),
            self.data.len(),
            "cannot reshape {} elements into {shape}",
            self.data.len()
        );
        Tensor { shape, data: self.data.clone() }
    }

    /// Applies `f` elementwise, producing a new tensor of the same shape.
    pub fn map<U: Copy>(&self, f: impl FnMut(T) -> U) -> Tensor<U> {
        Tensor { shape: self.shape.clone(), data: self.data.iter().copied().map(f).collect() }
    }
}

impl Tensor<f32> {
    /// Sum of squared elements (used for weight-decay and norm diagnostics).
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Largest absolute element value, or 0.0 for an all-zero tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Elementwise `self + alpha * other`, in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor<f32>, alpha: f32) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_scaled");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_has_default_values() {
        let t = Tensor::<f32>::zeros(&[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn full_fills_value() {
        let t = Tensor::full(&[2, 2], 5i32);
        assert!(t.data().iter().all(|&v| v == 5));
    }

    #[test]
    fn from_vec_round_trips() {
        let t = Tensor::from_vec(vec![1u8, 2, 3, 4, 5, 6], &[2, 3]);
        assert_eq!(t.at(&[0, 2]), 3);
        assert_eq!(t.at(&[1, 0]), 4);
        assert_eq!(t.into_vec(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(vec![1u8, 2, 3], &[2, 2]);
    }

    #[test]
    fn get4_matches_at() {
        let data: Vec<f32> = (0..24).map(|v| v as f32).collect();
        let t = Tensor::from_vec(data, &[2, 3, 2, 2]);
        for n in 0..2 {
            for c in 0..3 {
                for h in 0..2 {
                    for w in 0..2 {
                        assert_eq!(t.get4(n, c, h, w), t.at(&[n, c, h, w]));
                    }
                }
            }
        }
    }

    #[test]
    fn set4_then_get4() {
        let mut t = Tensor::<i32>::zeros(&[1, 2, 2, 2]);
        t.set4(0, 1, 1, 0, 42);
        assert_eq!(t.get4(0, 1, 1, 0), 42);
        assert_eq!(t.at(&[0, 1, 1, 0]), 42);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1, 2, 3, 4, 5, 6], &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_rejects_wrong_len() {
        Tensor::from_vec(vec![1, 2, 3], &[3]).reshape(&[2, 2]);
    }

    #[test]
    fn map_changes_type() {
        let t = Tensor::from_vec(vec![1.5f32, -2.5], &[2]);
        let q = t.map(|v| v as i32);
        assert_eq!(q.data(), &[1, -2]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::from_vec(vec![1.0f32, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0f32, 20.0], &[2]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[6.0, 12.0]);
    }

    #[test]
    fn max_abs_handles_negatives() {
        let t = Tensor::from_vec(vec![-3.0f32, 2.0, 0.5], &[3]);
        assert_eq!(t.max_abs(), 3.0);
    }

    proptest! {
        #[test]
        fn prop_at_and_data_agree(dims in prop::collection::vec(1usize..5, 1..4)) {
            let len: usize = dims.iter().product();
            let data: Vec<i64> = (0..len as i64).collect();
            let t = Tensor::from_vec(data, &dims);
            // Walk every index and check `at` agrees with row-major order.
            let mut idx = vec![0usize; dims.len()];
            for lin in 0..len {
                prop_assert_eq!(t.at(&idx), lin as i64);
                // increment multi-index
                for d in (0..dims.len()).rev() {
                    idx[d] += 1;
                    if idx[d] < dims[d] {
                        break;
                    }
                    idx[d] = 0;
                }
            }
        }

        #[test]
        fn prop_reshape_round_trip(a in 1usize..6, b in 1usize..6) {
            let t = Tensor::from_vec((0..(a * b) as i32).collect(), &[a, b]);
            let back = t.reshape(&[b, a]).reshape(&[a, b]);
            prop_assert_eq!(back, t);
        }
    }
}
