//! Dense NCHW tensors and convolution shape math.
//!
//! This crate is the data-plane substrate for the bit-serial weight pools
//! reproduction: a small, owned, row-major tensor type plus the convolution
//! geometry helpers (padding/stride arithmetic, im2col patch extraction) that
//! the training stack (`wp-nn`), the compression pipeline (`wp-core`) and
//! the instrumented microcontroller kernels (`wp-kernels`) all share.
//!
//! The design goal is predictability, not peak throughput: every layout is
//! plain row-major `Vec<T>`, every index is checked in debug builds, and all
//! shapes are explicit.
//!
//! # Example
//!
//! ```
//! use wp_tensor::Tensor;
//!
//! let mut t = Tensor::<f32>::zeros(&[1, 2, 3, 3]);
//! t.set4(0, 1, 2, 2, 7.0);
//! assert_eq!(t.get4(0, 1, 2, 2), 7.0);
//! assert_eq!(t.len(), 18);
//! ```

mod conv;
mod init;
mod shape;
mod tensor;

pub use conv::{im2col, Conv2dGeometry};
pub use init::{fill_kaiming_normal, fill_uniform};
pub use shape::Shape;
pub use tensor::Tensor;
