//! Convolution geometry: output-size arithmetic and im2col patch extraction.

use crate::Tensor;
use serde::{Deserialize, Serialize};

/// Geometry of a 2D convolution: kernel size, stride and zero padding.
///
/// The same geometry object drives the float reference convolution in
/// `wp-nn`, the quantized CMSIS-style kernel and the bit-serial LUT kernel in
/// `wp-kernels`, guaranteeing all paths agree on which input pixels feed
/// which outputs.
///
/// # Example
///
/// ```
/// use wp_tensor::Conv2dGeometry;
///
/// // 3x3 stride-1 "same" convolution on a 16x16 input.
/// let g = Conv2dGeometry::new(16, 16, 3, 3, 1, 1);
/// assert_eq!(g.out_h(), 16);
/// assert_eq!(g.out_w(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dGeometry {
    in_h: usize,
    in_w: usize,
    kernel_h: usize,
    kernel_w: usize,
    stride: usize,
    pad: usize,
}

impl Conv2dGeometry {
    /// Creates a convolution geometry.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input or if `stride` is
    /// zero.
    pub fn new(
        in_h: usize,
        in_w: usize,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(
            in_h + 2 * pad >= kernel_h && in_w + 2 * pad >= kernel_w,
            "kernel {kernel_h}x{kernel_w} larger than padded input {}x{}",
            in_h + 2 * pad,
            in_w + 2 * pad
        );
        Self { in_h, in_w, kernel_h, kernel_w, stride, pad }
    }

    /// Input height.
    pub fn in_h(&self) -> usize {
        self.in_h
    }

    /// Input width.
    pub fn in_w(&self) -> usize {
        self.in_w
    }

    /// Kernel height.
    pub fn kernel_h(&self) -> usize {
        self.kernel_h
    }

    /// Kernel width.
    pub fn kernel_w(&self) -> usize {
        self.kernel_w
    }

    /// Stride (same in both spatial dimensions).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding (same on all four sides).
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.kernel_h) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.kernel_w) / self.stride + 1
    }

    /// Number of output pixels per channel.
    pub fn out_pixels(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Maps an output coordinate and kernel tap to the input row, or `None`
    /// if the tap lands in padding.
    #[inline]
    pub fn input_row(&self, out_y: usize, ky: usize) -> Option<usize> {
        let y = out_y * self.stride + ky;
        y.checked_sub(self.pad).filter(|&v| v < self.in_h)
    }

    /// Maps an output coordinate and kernel tap to the input column, or
    /// `None` if the tap lands in padding.
    #[inline]
    pub fn input_col(&self, out_x: usize, kx: usize) -> Option<usize> {
        let x = out_x * self.stride + kx;
        x.checked_sub(self.pad).filter(|&v| v < self.in_w)
    }
}

/// Extracts convolution patches into a `[C*KH*KW, OH*OW]` matrix (im2col).
///
/// Padding positions are filled with zero. The row ordering is channel-major
/// then kernel-row then kernel-column, matching the `[K, C, R, S]` weight
/// layout flattened per filter, so a convolution becomes a plain
/// matrix-vector product per filter.
///
/// # Panics
///
/// Panics if `input` is not rank 3 (`[C, H, W]`) or its spatial extents do
/// not match `geo`.
pub fn im2col(input: &Tensor<f32>, geo: &Conv2dGeometry) -> Tensor<f32> {
    let dims = input.dims();
    assert_eq!(dims.len(), 3, "im2col expects a [C, H, W] tensor");
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    assert_eq!(h, geo.in_h(), "input height mismatch");
    assert_eq!(w, geo.in_w(), "input width mismatch");

    let (oh, ow) = (geo.out_h(), geo.out_w());
    let rows = c * geo.kernel_h() * geo.kernel_w();
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    let in_data = input.data();

    for ch in 0..c {
        for ky in 0..geo.kernel_h() {
            for kx in 0..geo.kernel_w() {
                let row = (ch * geo.kernel_h() + ky) * geo.kernel_w() + kx;
                for oy in 0..oh {
                    let iy = match geo.input_row(oy, ky) {
                        Some(v) => v,
                        None => continue,
                    };
                    for ox in 0..ow {
                        let ix = match geo.input_col(ox, kx) {
                            Some(v) => v,
                            None => continue,
                        };
                        out[row * cols + oy * ow + ox] = in_data[(ch * h + iy) * w + ix];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_conv_geometry() {
        let g = Conv2dGeometry::new(32, 32, 3, 3, 1, 1);
        assert_eq!((g.out_h(), g.out_w()), (32, 32));
    }

    #[test]
    fn strided_conv_geometry() {
        let g = Conv2dGeometry::new(32, 32, 3, 3, 2, 1);
        assert_eq!((g.out_h(), g.out_w()), (16, 16));
    }

    #[test]
    fn valid_conv_geometry() {
        let g = Conv2dGeometry::new(28, 28, 5, 5, 1, 0);
        assert_eq!((g.out_h(), g.out_w()), (24, 24));
    }

    #[test]
    fn one_by_one_geometry() {
        let g = Conv2dGeometry::new(8, 8, 1, 1, 1, 0);
        assert_eq!((g.out_h(), g.out_w()), (8, 8));
    }

    #[test]
    fn input_row_handles_padding() {
        let g = Conv2dGeometry::new(4, 4, 3, 3, 1, 1);
        assert_eq!(g.input_row(0, 0), None); // top padding
        assert_eq!(g.input_row(0, 1), Some(0));
        assert_eq!(g.input_row(3, 2), None); // bottom padding
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        Conv2dGeometry::new(4, 4, 3, 3, 0, 1);
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn oversized_kernel_rejected() {
        Conv2dGeometry::new(2, 2, 5, 5, 1, 0);
    }

    #[test]
    fn im2col_identity_for_1x1() {
        // A 1x1 kernel im2col is just a [C, H*W] reshape.
        let input = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 2, 2]);
        let g = Conv2dGeometry::new(2, 2, 1, 1, 1, 0);
        let m = im2col(&input, &g);
        assert_eq!(m.dims(), &[3, 4]);
        assert_eq!(m.data(), input.data());
    }

    #[test]
    fn im2col_pads_with_zero() {
        let input = Tensor::from_vec(vec![1.0f32], &[1, 1, 1]);
        let g = Conv2dGeometry::new(1, 1, 3, 3, 1, 1);
        let m = im2col(&input, &g);
        assert_eq!(m.dims(), &[9, 1]);
        // Only the center tap sees the single input value.
        let expect: Vec<f32> = (0..9).map(|i| if i == 4 { 1.0 } else { 0.0 }).collect();
        assert_eq!(m.data(), expect.as_slice());
    }

    /// Direct (nested-loop) convolution used as the oracle for im2col.
    fn direct_conv(input: &Tensor<f32>, weight: &Tensor<f32>, geo: &Conv2dGeometry) -> Vec<f32> {
        let (k, c) = (weight.dims()[0], weight.dims()[1]);
        let (oh, ow) = (geo.out_h(), geo.out_w());
        let mut out = vec![0.0f32; k * oh * ow];
        for f in 0..k {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ch in 0..c {
                        for ky in 0..geo.kernel_h() {
                            for kx in 0..geo.kernel_w() {
                                if let (Some(iy), Some(ix)) =
                                    (geo.input_row(oy, ky), geo.input_col(ox, kx))
                                {
                                    acc += input.at(&[ch, iy, ix]) * weight.get4(f, ch, ky, kx);
                                }
                            }
                        }
                    }
                    out[(f * oh + oy) * ow + ox] = acc;
                }
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_im2col_matches_direct_conv(
            c in 1usize..4,
            k in 1usize..4,
            hw in 3usize..8,
            ks in 1usize..4,
            stride in 1usize..3,
            pad in 0usize..2,
            seed in 0u64..1000,
        ) {
            prop_assume!(hw + 2 * pad >= ks);
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let input = Tensor::from_vec(
                (0..c * hw * hw).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
                &[c, hw, hw],
            );
            let weight = Tensor::from_vec(
                (0..k * c * ks * ks).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
                &[k, c, ks, ks],
            );
            let geo = Conv2dGeometry::new(hw, hw, ks, ks, stride, pad);
            let patches = im2col(&input, &geo);
            let cols = geo.out_pixels();
            let rows = c * ks * ks;

            let direct = direct_conv(&input, &weight, &geo);
            // Matrix product: weight [K, rows] x patches [rows, cols].
            for f in 0..k {
                for col in 0..cols {
                    let mut acc = 0.0f32;
                    for r in 0..rows {
                        acc += weight.data()[f * rows + r] * patches.data()[r * cols + col];
                    }
                    prop_assert!((acc - direct[f * cols + col]).abs() < 1e-4);
                }
            }
        }
    }
}
