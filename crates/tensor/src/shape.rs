//! Shape and stride arithmetic for row-major tensors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The extents of a row-major tensor, outermost dimension first.
///
/// For activations the convention throughout the workspace is `[N, C, H, W]`;
/// for convolution weights it is `[K, C, R, S]` (filters, channels, kernel
/// height, kernel width).
///
/// # Example
///
/// ```
/// use wp_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4, 4]);
/// assert_eq!(s.len(), 96);
/// assert_eq!(s.strides(), vec![48, 16, 4, 1]);
/// assert_eq!(s.offset(&[1, 2, 3, 3]), 95);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or contains a zero extent.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "zero-sized dimensions are not supported: {dims:?}");
        Self { dims: dims.to_vec() }
    }

    /// The dimension extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape holds zero elements. Always false by construction,
    /// provided for API completeness alongside [`Shape::len`].
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Row-major strides (innermost stride is 1).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut off = 0usize;
        let mut stride = 1usize;
        for i in (0..self.dims.len()).rev() {
            assert!(
                index[i] < self.dims[i],
                "index {index:?} out of bounds for shape {:?}",
                self.dims
            );
            off += index[i] * stride;
            stride *= self.dims[i];
        }
        off
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).len(), 24);
        assert_eq!(Shape::new(&[7]).len(), 7);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        let strides = s.strides();
        for n in 0..2 {
            for c in 0..3 {
                for h in 0..4 {
                    assert_eq!(
                        s.offset(&[n, c, h]),
                        n * strides[0] + c * strides[1] + h * strides[2]
                    );
                }
            }
        }
    }

    #[test]
    fn offsets_cover_range_exactly_once() {
        let s = Shape::new(&[3, 2, 2]);
        let mut seen = vec![false; s.len()];
        for a in 0..3 {
            for b in 0..2 {
                for c in 0..2 {
                    let off = s.offset(&[a, b, c]);
                    assert!(!seen[off]);
                    seen[off] = true;
                }
            }
        }
        assert!(seen.into_iter().all(|v| v));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_panics_out_of_bounds() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn offset_panics_wrong_rank() {
        Shape::new(&[2, 2]).offset(&[0]);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_dim_rejected() {
        Shape::new(&[2, 0]);
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[1, 8, 3, 3]).to_string(), "[1x8x3x3]");
    }
}
