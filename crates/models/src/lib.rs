//! The evaluation model zoo.
//!
//! Two families:
//!
//! * [`specs`] — full-size [`NetSpec`](wp_core::netspec::NetSpec) shape
//!   descriptions of the paper's five evaluation networks (TinyConv,
//!   ResNet-s, ResNet-10, ResNet-14, MobileNet-v2). These drive the
//!   storage accounting (Table 3) and MCU runtime simulation (Table 7).
//!   The three ResNets' conv-weight totals match the paper's "Total param"
//!   column **exactly** (2,729,664 / 665,280 / 170,928), which pins down
//!   the architectures: CIFAR-style ResNet-18 truncations with option-A
//!   (parameter-free) shortcuts. TinyConv and MobileNet-v2 are
//!   reconstructed from their cited sources and land within a few percent.
//! * [`micro`] — width/size-scaled **trainable** versions of the same
//!   architectures built on `wp-nn`, used by the accuracy experiments
//!   (Tables 1/4/5/6, Figure 4) on the synthetic datasets. Every micro
//!   model attaches activation fake-quant sites and returns their handles.

pub mod micro;
pub mod specs;

pub use micro::BuiltModel;
