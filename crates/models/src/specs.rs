//! Full-size network shape descriptions (paper §5.1).

use wp_core::netspec::{ConvSpec, LayerSpec, NetSpec};

fn conv(in_ch: usize, out_ch: usize, kernel: usize, stride: usize, pad: usize) -> LayerSpec {
    // Compressed iff the channel depth is z-groupable at the paper's group
    // size of 8; the first layer of each network is marked uncompressed by
    // the builders below.
    LayerSpec::Conv(ConvSpec {
        in_ch,
        out_ch,
        kernel,
        stride,
        pad,
        compressed: in_ch.is_multiple_of(8),
    })
}

fn uncompressed_conv(
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
) -> LayerSpec {
    LayerSpec::Conv(ConvSpec { in_ch, out_ch, kernel, stride, pad, compressed: false })
}

/// Appends one option-A basic block (two 3×3 convs + residual add).
fn push_basic_block(layers: &mut Vec<LayerSpec>, in_ch: usize, out_ch: usize, stride: usize) {
    layers.push(conv(in_ch, out_ch, 3, stride, 1));
    layers.push(conv(out_ch, out_ch, 3, 1, 1));
    layers.push(LayerSpec::ResidualAdd);
}

/// CIFAR-style truncated ResNet shared scaffold: 3×3 stem, basic-block
/// stages, global pool, classifier.
fn resnet(
    name: &str,
    stem_ch: usize,
    stem_stride: usize,
    stages: &[(usize, usize, usize)], // (channels, blocks, first stride)
    classes: usize,
) -> NetSpec {
    let mut layers = vec![uncompressed_conv(3, stem_ch, 3, stem_stride, 1)];
    let mut ch = stem_ch;
    for &(out_ch, blocks, first_stride) in stages {
        for b in 0..blocks {
            let stride = if b == 0 { first_stride } else { 1 };
            push_basic_block(&mut layers, ch, out_ch, stride);
            ch = out_ch;
        }
    }
    layers.push(LayerSpec::GlobalAvgPool);
    layers.push(LayerSpec::Dense { in_features: ch, out_features: classes, compressed: false });
    NetSpec { name: name.to_string(), input: (3, 32, 32), classes, layers }
}

/// ResNet-s: the scaled-down ResNet-18 used by MLPerf Tiny
/// (Banbury et al., 2021) — 16-channel stem, stages 16/32/64 with two
/// blocks each. Conv weights: 170,928 (paper Table 3 exactly).
pub fn resnet_s() -> NetSpec {
    resnet("ResNet-s", 16, 1, &[(16, 2, 2), (32, 2, 2), (64, 2, 2)], 10)
}

/// ResNet-10: ResNet-18 with the last two blocks truncated — 64-channel
/// stem (stride 2 on 32×32 input), stages 64/128. Conv weights: 665,280
/// (paper Table 3 exactly).
pub fn resnet_10() -> NetSpec {
    resnet("ResNet-10", 64, 2, &[(64, 2, 1), (128, 2, 2)], 10)
}

/// ResNet-14: ResNet-18 with the last block truncated — stages 64/128/256.
/// Conv weights: 2,729,664 (paper Table 3 exactly).
pub fn resnet_14() -> NetSpec {
    resnet("ResNet-14", 64, 2, &[(64, 2, 1), (128, 2, 2), (256, 2, 2)], 10)
}

/// TinyConv: the CMSIS-NN-style convnet (Lai et al., 2018) adapted to
/// Quickdraw-100's 28×28 grayscale input: three 5×5 conv/pool stages and a
/// classifier. Conv weights: 77,600 (paper reports 81,600; the exact
/// classifier head of their variant is not specified — see DESIGN.md).
pub fn tinyconv() -> NetSpec {
    NetSpec {
        name: "TinyConv".to_string(),
        input: (1, 28, 28),
        classes: 100,
        layers: vec![
            uncompressed_conv(1, 32, 5, 1, 2),
            LayerSpec::MaxPool { size: 2 },
            conv(32, 32, 5, 1, 2),
            LayerSpec::MaxPool { size: 2 },
            conv(32, 64, 5, 1, 2),
            LayerSpec::MaxPool { size: 2 },
            LayerSpec::GlobalAvgPool,
            LayerSpec::Dense { in_features: 64, out_features: 100, compressed: false },
        ],
    }
}

/// MobileNet-v2 (width 1.0) adapted to Quickdraw-100's 28×28 input with
/// CIFAR-style strides. Only 1×1 pointwise convolutions are compressed
/// (paper §5.1); depthwise layers and the 3×3 stem stay direct. Conv
/// weights ≈ 2.29 M (paper reports 2,249,792).
pub fn mobilenet_v2() -> NetSpec {
    // (expansion t, out channels c, repeats n, first stride s)
    let cfg: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 1),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut layers = vec![uncompressed_conv(1, 32, 3, 1, 1)];
    let mut ch = 32usize;
    for &(t, c, n, s) in &cfg {
        for rep in 0..n {
            let stride = if rep == 0 { s } else { 1 };
            let hidden = ch * t;
            if t != 1 {
                layers.push(conv(ch, hidden, 1, 1, 0)); // expand (pointwise)
            }
            layers.push(LayerSpec::DwConv { channels: hidden, kernel: 3, stride, pad: 1 });
            layers.push(conv(hidden, c, 1, 1, 0)); // project (pointwise)
            if stride == 1 && ch == c {
                layers.push(LayerSpec::ResidualAdd);
            }
            ch = c;
        }
    }
    layers.push(conv(ch, 1280, 1, 1, 0)); // head (pointwise)
    layers.push(LayerSpec::GlobalAvgPool);
    layers.push(LayerSpec::Dense { in_features: 1280, out_features: 100, compressed: false });
    NetSpec { name: "MobileNet-v2".to_string(), input: (1, 28, 28), classes: 100, layers }
}

/// All five evaluation networks in the paper's Table 3 order.
pub fn all_networks() -> Vec<NetSpec> {
    vec![tinyconv(), resnet_s(), resnet_10(), resnet_14(), mobilenet_v2()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_param_counts_match_paper_exactly() {
        // Paper Table 3, "Total param" column (conv weights only).
        assert_eq!(resnet_s().params().conv, 170_928);
        assert_eq!(resnet_10().params().conv, 665_280);
        assert_eq!(resnet_14().params().conv, 2_729_664);
    }

    #[test]
    fn tinyconv_params_close_to_paper() {
        let p = tinyconv().params().conv;
        let paper = 81_600f64;
        let rel = (p as f64 - paper).abs() / paper;
        assert!(rel < 0.06, "TinyConv conv weights {p} vs paper 81,600");
    }

    #[test]
    fn mobilenet_params_close_to_paper() {
        let p = mobilenet_v2().params();
        let total_conv = p.conv + p.depthwise;
        let paper = 2_249_792f64;
        let rel = (total_conv as f64 - paper).abs() / paper;
        assert!(rel < 0.06, "MobileNet-v2 conv weights {total_conv} vs paper 2,249,792");
    }

    #[test]
    fn all_specs_resolve() {
        for net in all_networks() {
            let resolved = net.resolve();
            assert!(!resolved.is_empty(), "{} resolves", net.name);
            // Last layer must produce the class count.
            assert_eq!(resolved.last().unwrap().out_ch, net.classes, "{}", net.name);
        }
    }

    #[test]
    fn first_conv_is_uncompressed_everywhere() {
        for net in all_networks() {
            let first_conv = net
                .layers
                .iter()
                .find_map(|l| match l {
                    wp_core::netspec::LayerSpec::Conv(c) => Some(c),
                    _ => None,
                })
                .unwrap();
            assert!(!first_conv.compressed, "{}", net.name);
        }
    }

    #[test]
    fn compressed_layers_are_groupable() {
        for net in all_networks() {
            for layer in &net.layers {
                if let wp_core::netspec::LayerSpec::Conv(c) = layer {
                    if c.compressed {
                        assert_eq!(c.in_ch % 8, 0, "{}: {c:?}", net.name);
                    }
                }
            }
        }
    }

    #[test]
    fn mobilenet_depthwise_fraction_small() {
        // Paper §5.1: depthwise layers are 2.93% of storage.
        let p = mobilenet_v2().params();
        let frac = p.depthwise as f64 / (p.conv + p.depthwise + p.dense) as f64;
        assert!(frac < 0.05, "depthwise fraction {frac}");
    }

    #[test]
    fn compressed_fraction_dominates_on_resnet14() {
        let p = resnet_14().params();
        assert!(p.conv_compressed as f64 / p.conv as f64 > 0.99);
    }

    #[test]
    fn macs_are_mcu_scale() {
        // Sanity: the paper runs these on 120 MHz cores in seconds, so MAC
        // counts must be tens of millions, not billions.
        for net in all_networks() {
            let macs = net.macs();
            assert!((1_000_000..300_000_000).contains(&macs), "{}: {macs} MACs", net.name);
        }
    }
}
