//! Trainable width/size-scaled model variants for the accuracy experiments.
//!
//! Full-scale CIFAR training is out of reach for a scalar CPU training
//! stack, so the accuracy tables run on these micro models: the same
//! architecture families (conv/pool stem networks, option-A residual
//! ResNets, inverted-residual MobileNet) at reduced width and input size,
//! trained on the synthetic datasets from `wp-data`. Channel widths are
//! kept multiples of 8 so the z-dimension pooling applies exactly as in
//! the full networks.

use rand::Rng;
use wp_nn::{
    ActQuantHandle, BasicBlock, Conv2d, Dense, GlobalAvgPool, InvertedResidual, MaxPool2d, Relu,
    Sequential,
};

/// A constructed trainable model plus its activation-quantization handles.
pub struct BuiltModel {
    /// The trainable network.
    pub net: Sequential,
    /// Handles of every activation fake-quant site, in network order.
    pub act_handles: Vec<ActQuantHandle>,
    /// Model family name.
    pub name: &'static str,
    /// Expected input shape `(channels, height, width)`.
    pub input: (usize, usize, usize),
}

impl std::fmt::Debug for BuiltModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltModel")
            .field("name", &self.name)
            .field("input", &self.input)
            .field("act_sites", &self.act_handles.len())
            .finish()
    }
}

/// Micro TinyConv: 5×5 conv/pool stages on 14×14 single-channel input
/// (the scale-2 Quickdraw-like shape).
pub fn tinyconv(classes: usize, rng: &mut impl Rng) -> BuiltModel {
    let mut net = Sequential::new();
    let mut handles = Vec::new();
    net.push(Conv2d::new(1, 16, 5, 1, 2, rng));
    net.push(Relu::new());
    push_act_quant(&mut net, &mut handles);
    net.push(MaxPool2d::new(2));
    net.push(Conv2d::new(16, 16, 5, 1, 2, rng));
    net.push(Relu::new());
    push_act_quant(&mut net, &mut handles);
    net.push(MaxPool2d::new(2));
    net.push(Conv2d::new(16, 32, 3, 1, 1, rng));
    net.push(Relu::new());
    push_act_quant(&mut net, &mut handles);
    net.push(GlobalAvgPool::new());
    net.push(Dense::new(32, classes, rng));
    BuiltModel { net, act_handles: handles, name: "TinyConv-u", input: (1, 14, 14) }
}

fn push_act_quant(net: &mut Sequential, handles: &mut Vec<ActQuantHandle>) {
    let handle = ActQuantHandle::new();
    net.push(wp_nn::ActQuant::new(handle.clone()));
    handles.push(handle);
}

fn push_block(
    net: &mut Sequential,
    handles: &mut Vec<ActQuantHandle>,
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    rng: &mut impl Rng,
) {
    let mut block = BasicBlock::new(in_ch, out_ch, stride, rng);
    let (h1, h2) = block.attach_act_quant();
    handles.push(h1);
    handles.push(h2);
    net.push(block);
}

/// Shared micro-ResNet scaffold on 16×16 RGB input.
fn micro_resnet(
    name: &'static str,
    stem: usize,
    stages: &[(usize, usize)], // (channels, stride)
    classes: usize,
    rng: &mut impl Rng,
) -> BuiltModel {
    let mut net = Sequential::new();
    let mut handles = Vec::new();
    net.push(Conv2d::new(3, stem, 3, 1, 1, rng));
    net.push(Relu::new());
    push_act_quant(&mut net, &mut handles);
    let mut ch = stem;
    for &(out_ch, stride) in stages {
        push_block(&mut net, &mut handles, ch, out_ch, stride, rng);
        ch = out_ch;
    }
    net.push(GlobalAvgPool::new());
    net.push(Dense::new(ch, classes, rng));
    BuiltModel { net, act_handles: handles, name, input: (3, 16, 16) }
}

/// Micro ResNet-s: 8-channel stem, stages 8/16/32.
pub fn resnet_s(classes: usize, rng: &mut impl Rng) -> BuiltModel {
    micro_resnet("ResNet-s-u", 8, &[(8, 1), (16, 2), (32, 2)], classes, rng)
}

/// Micro ResNet-10: 16-channel stem, stages 16/32.
pub fn resnet_10(classes: usize, rng: &mut impl Rng) -> BuiltModel {
    micro_resnet("ResNet-10-u", 16, &[(16, 1), (32, 2)], classes, rng)
}

/// Micro ResNet-14: 16-channel stem, stages 16/32/64 (used for the group
/// size and pool-dimension studies, Tables 1 and Figure 4).
pub fn resnet_14(classes: usize, rng: &mut impl Rng) -> BuiltModel {
    micro_resnet("ResNet-14-u", 16, &[(16, 1), (32, 2), (64, 2)], classes, rng)
}

/// Micro MobileNet-v2: inverted residual blocks with expansion 4 on 14×14
/// single-channel input.
pub fn mobilenet_v2(classes: usize, rng: &mut impl Rng) -> BuiltModel {
    let mut net = Sequential::new();
    let mut handles = Vec::new();
    net.push(Conv2d::new(1, 16, 3, 1, 1, rng));
    net.push(Relu::new());
    push_act_quant(&mut net, &mut handles);
    for &(in_ch, out_ch, stride, t) in
        &[(16usize, 16usize, 1usize, 1usize), (16, 32, 2, 4), (32, 32, 1, 4), (32, 64, 2, 4)]
    {
        let mut block = InvertedResidual::new(in_ch, out_ch, stride, t, rng);
        handles.extend(block.attach_act_quant());
        net.push(block);
    }
    net.push(Conv2d::new(64, 128, 1, 1, 0, rng));
    net.push(Relu::new());
    push_act_quant(&mut net, &mut handles);
    net.push(GlobalAvgPool::new());
    net.push(Dense::new(128, classes, rng));
    BuiltModel { net, act_handles: handles, name: "MobileNet-v2-u", input: (1, 14, 14) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wp_tensor::Tensor;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0)
    }

    fn check_forward(mut m: BuiltModel, classes: usize) {
        let (c, h, w) = m.input;
        let x = Tensor::<f32>::full(&[2, c, h, w], 0.3);
        let y = m.net.forward(&x, true);
        assert_eq!(y.dims(), &[2, classes], "{}", m.name);
        assert!(!m.act_handles.is_empty());
    }

    #[test]
    fn tinyconv_builds_and_runs() {
        check_forward(tinyconv(10, &mut rng()), 10);
    }

    #[test]
    fn resnets_build_and_run() {
        check_forward(resnet_s(10, &mut rng()), 10);
        check_forward(resnet_10(10, &mut rng()), 10);
        check_forward(resnet_14(10, &mut rng()), 10);
    }

    #[test]
    fn mobilenet_builds_and_runs() {
        check_forward(mobilenet_v2(20, &mut rng()), 20);
    }

    #[test]
    fn compressible_convs_have_groupable_depth() {
        // Every conv except the stem must have in_ch % 8 == 0 so the
        // micro models pool exactly like the full ones.
        for build in [
            tinyconv(10, &mut rng()),
            resnet_s(10, &mut rng()),
            resnet_10(10, &mut rng()),
            resnet_14(10, &mut rng()),
            mobilenet_v2(10, &mut rng()),
        ] {
            let mut net = build.net;
            let mut pos = 0;
            net.visit_convs(&mut |conv| {
                if pos > 0 {
                    assert_eq!(
                        conv.in_channels() % 8,
                        0,
                        "{}: conv {pos} depth {}",
                        build.name,
                        conv.in_channels()
                    );
                }
                pos += 1;
            });
            assert!(pos >= 3, "{} has too few convs", build.name);
        }
    }

    #[test]
    fn micro_models_are_trainable_size() {
        // Keep the accuracy experiments fast: every micro model under 150k
        // parameters.
        for build in [
            tinyconv(100, &mut rng()),
            resnet_s(10, &mut rng()),
            resnet_10(10, &mut rng()),
            resnet_14(10, &mut rng()),
            mobilenet_v2(100, &mut rng()),
        ] {
            let mut net = build.net;
            let n = net.num_params();
            assert!(n < 150_000, "{}: {n} params", build.name);
        }
    }
}
