//! A Cortex-M3-style cycle-cost and memory-placement simulator.
//!
//! The paper measures runtime on two STM32 Nucleo boards with the ARM
//! compiler's cycle counter (Table 2). This crate is the substitution for
//! that hardware: kernels in `wp-kernels` execute their real computation
//! while charging every memory access, arithmetic op and branch to an
//! [`Mcu`], which accumulates cycles according to a per-device
//! [`CycleCosts`] profile. Relative results (speedups, scaling with filter
//! count or activation bitwidth) depend on these op counts, which are exact;
//! absolute seconds follow from the device clock.
//!
//! Capacity accounting is also modeled: flash placement of weights/LUTs
//! (Table 7 marks networks that do not fit with "/") and an SRAM watermark
//! for activations and scratch buffers.
//!
//! # Example
//!
//! ```
//! use wp_mcu::{Mcu, McuSpec};
//!
//! let mut mcu = Mcu::new(McuSpec::mc_large());
//! mcu.load_flash(); // e.g. a weight byte
//! mcu.load_sram();  // an activation byte
//! mcu.mac();
//! assert!(mcu.cycles() > 0);
//! ```

mod machine;
mod profile;

pub use machine::{CapacityError, Mcu, OpCounts};
pub use profile::{CycleCosts, McuSpec};
