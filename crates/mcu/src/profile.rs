//! Device profiles: cycle costs and memory capacities.

use serde::{Deserialize, Serialize};

/// Per-operation cycle costs for a Cortex-M3-class core.
///
/// Defaults follow the ARM Cortex-M3 technical reference manual plus STM32
/// flash wait-state documentation:
///
/// * single-cycle ALU (including shift-and-accumulate via barrel shifter);
/// * 1-cycle `MUL`, 2-cycle `MLA`-style multiply-accumulate;
/// * 2-cycle loads/stores against zero-wait-state SRAM;
/// * flash data reads pay wait states (3–5 at the boards' clocks; the ART
///   prefetcher accelerates instruction fetch, not data reads);
/// * ~3 cycles per not-taken-friendly loop iteration (compare + branch with
///   pipeline refill, partially amortized by unrolling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleCosts {
    /// Plain ALU op (add/sub/shift/logic, including flexible second operand).
    pub alu: u64,
    /// 32×32 multiply.
    pub mul: u64,
    /// Multiply-accumulate (`MLA`, 2 cycles on Cortex-M3).
    pub mac: u64,
    /// Load from SRAM.
    pub load_sram: u64,
    /// Store to SRAM.
    pub store_sram: u64,
    /// Data load from flash (includes wait states).
    pub load_flash: u64,
    /// Word (32-bit) load from flash: sequential burst reads amortize wait
    /// states, so this is cheaper than four byte loads.
    pub load_flash_word: u64,
    /// Word (32-bit) load from SRAM.
    pub load_sram_word: u64,
    /// Word (32-bit) store to SRAM.
    pub store_sram_word: u64,
    /// Taken branch (pipeline refill).
    pub branch: u64,
    /// Per-iteration loop overhead (increment + compare + branch), partially
    /// amortized assuming modest unrolling by the compiler.
    pub loop_iter: u64,
    /// Function call + return overhead.
    pub call: u64,
}

impl CycleCosts {
    /// Cortex-M3 with `wait_states` flash wait states on data reads.
    pub fn cortex_m3(wait_states: u64) -> Self {
        Self {
            alu: 1,
            mul: 1,
            mac: 2,
            load_sram: 2,
            store_sram: 2,
            load_flash: 2 + wait_states,
            load_flash_word: 2 + wait_states,
            load_sram_word: 2,
            store_sram_word: 2,
            branch: 3,
            loop_iter: 3,
            call: 6,
        }
    }

    /// Cortex-M4 with the DSP extension: single-cycle MAC (`MLA`/`SMLAD`),
    /// otherwise M3-like timing. Used by the baseline-strength ablation —
    /// the paper targets DSP-less M0/M3 cores where its comparison is most
    /// favorable.
    pub fn cortex_m4_dsp(wait_states: u64) -> Self {
        Self { mac: 1, ..Self::cortex_m3(wait_states) }
    }
}

/// A microcontroller device profile: clock, memories and cycle costs.
///
/// The two built-in profiles mirror the paper's Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McuSpec {
    /// Human-readable device name.
    pub name: String,
    /// Core clock in Hz.
    pub clock_hz: u64,
    /// SRAM capacity in bytes.
    pub sram_bytes: usize,
    /// Flash capacity in bytes.
    pub flash_bytes: usize,
    /// Per-op cycle costs.
    pub costs: CycleCosts,
}

impl McuSpec {
    /// "MC-large": STM32 Nucleo F207ZG — 128 kB SRAM, 1 MB flash, Cortex-M3
    /// at 120 MHz (3 flash wait states at this clock).
    pub fn mc_large() -> Self {
        Self {
            name: "MC-large (F207ZG)".to_string(),
            clock_hz: 120_000_000,
            sram_bytes: 128 * 1024,
            flash_bytes: 1024 * 1024,
            costs: CycleCosts::cortex_m3(3),
        }
    }

    /// "MC-small": STM32 Nucleo F103RB — 20 kB SRAM, 128 kB flash, Cortex-M3
    /// at 72 MHz (2 flash wait states at this clock).
    pub fn mc_small() -> Self {
        Self {
            name: "MC-small (F103RB)".to_string(),
            clock_hz: 72_000_000,
            sram_bytes: 20 * 1024,
            flash_bytes: 128 * 1024,
            costs: CycleCosts::cortex_m3(2),
        }
    }

    /// A hypothetical MC-large with a Cortex-M4F (DSP extension) at the
    /// same clock and memories — the baseline-strength ablation target.
    pub fn mc_large_m4() -> Self {
        Self {
            name: "MC-large-M4 (hypothetical)".to_string(),
            clock_hz: 120_000_000,
            sram_bytes: 128 * 1024,
            flash_bytes: 1024 * 1024,
            costs: CycleCosts::cortex_m4_dsp(3),
        }
    }

    /// Converts a cycle count to seconds on this device.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_table2() {
        let large = McuSpec::mc_large();
        assert_eq!(large.sram_bytes, 131_072);
        assert_eq!(large.flash_bytes, 1_048_576);
        assert_eq!(large.clock_hz, 120_000_000);

        let small = McuSpec::mc_small();
        assert_eq!(small.sram_bytes, 20_480);
        assert_eq!(small.flash_bytes, 131_072);
        assert_eq!(small.clock_hz, 72_000_000);
    }

    #[test]
    fn flash_slower_than_sram() {
        let c = CycleCosts::cortex_m3(3);
        assert!(c.load_flash > c.load_sram);
    }

    #[test]
    fn seconds_conversion() {
        let large = McuSpec::mc_large();
        assert!((large.seconds(120_000_000) - 1.0).abs() < 1e-12);
        assert!((large.seconds(60_000_000) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn m4_mac_is_single_cycle() {
        assert_eq!(CycleCosts::cortex_m4_dsp(3).mac, 1);
        assert_eq!(CycleCosts::cortex_m3(3).mac, 2);
    }

    #[test]
    fn more_wait_states_cost_more() {
        assert!(CycleCosts::cortex_m3(5).load_flash > CycleCosts::cortex_m3(2).load_flash);
    }
}
