//! The instrumented machine: cycle accumulation and memory accounting.

use crate::{CycleCosts, McuSpec};
use std::error::Error;
use std::fmt;

/// Counts of each operation category charged to the machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Plain ALU operations.
    pub alu: u64,
    /// Multiplies.
    pub mul: u64,
    /// Multiply-accumulates.
    pub mac: u64,
    /// SRAM loads (byte or word).
    pub loads_sram: u64,
    /// SRAM stores (byte or word).
    pub stores_sram: u64,
    /// Flash loads (byte or word).
    pub loads_flash: u64,
    /// Branches.
    pub branches: u64,
    /// Loop iterations.
    pub loop_iters: u64,
    /// Function calls.
    pub calls: u64,
}

/// Error returned when a placement exceeds device memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityError {
    /// "SRAM" or "flash".
    pub region: &'static str,
    /// Bytes requested beyond current usage.
    pub requested: usize,
    /// Bytes already in use.
    pub in_use: usize,
    /// Region capacity.
    pub capacity: usize,
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} overflow: {} bytes requested with {}/{} in use",
            self.region, self.requested, self.in_use, self.capacity
        )
    }
}

impl Error for CapacityError {}

/// An instrumented microcontroller: kernels charge cycles and memory to it
/// as they execute.
///
/// Cycle charging methods are `#[inline]` single-field additions so the
/// instrumented kernels stay fast enough to simulate full networks.
#[derive(Debug, Clone)]
pub struct Mcu {
    spec: McuSpec,
    cycles: u64,
    counts: OpCounts,
    sram_in_use: usize,
    sram_peak: usize,
    flash_in_use: usize,
}

impl Mcu {
    /// Creates a machine from a device profile.
    pub fn new(spec: McuSpec) -> Self {
        Self {
            spec,
            cycles: 0,
            counts: OpCounts::default(),
            sram_in_use: 0,
            sram_peak: 0,
            flash_in_use: 0,
        }
    }

    /// The device profile.
    pub fn spec(&self) -> &McuSpec {
        &self.spec
    }

    #[inline]
    fn costs(&self) -> &CycleCosts {
        &self.spec.costs
    }

    /// Total cycles charged so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Elapsed simulated time in seconds.
    pub fn seconds(&self) -> f64 {
        self.spec.seconds(self.cycles)
    }

    /// Operation counts charged so far.
    pub fn counts(&self) -> OpCounts {
        self.counts
    }

    /// Resets cycles and op counts (memory accounting is preserved).
    pub fn reset_cycles(&mut self) {
        self.cycles = 0;
        self.counts = OpCounts::default();
    }

    // ---- cycle charging -------------------------------------------------

    /// Charges one plain ALU op (add/sub/shift/logic).
    #[inline]
    pub fn alu(&mut self) {
        self.cycles += self.costs().alu;
        self.counts.alu += 1;
    }

    /// Charges `n` plain ALU ops.
    #[inline]
    pub fn alu_n(&mut self, n: u64) {
        self.cycles += self.costs().alu * n;
        self.counts.alu += n;
    }

    /// Charges one multiply.
    #[inline]
    pub fn mul(&mut self) {
        self.cycles += self.costs().mul;
        self.counts.mul += 1;
    }

    /// Charges one multiply-accumulate.
    #[inline]
    pub fn mac(&mut self) {
        self.cycles += self.costs().mac;
        self.counts.mac += 1;
    }

    /// Charges one byte/halfword load from SRAM.
    #[inline]
    pub fn load_sram(&mut self) {
        self.cycles += self.costs().load_sram;
        self.counts.loads_sram += 1;
    }

    /// Charges one word load from SRAM.
    #[inline]
    pub fn load_sram_word(&mut self) {
        self.cycles += self.costs().load_sram_word;
        self.counts.loads_sram += 1;
    }

    /// Charges one byte/halfword store to SRAM.
    #[inline]
    pub fn store_sram(&mut self) {
        self.cycles += self.costs().store_sram;
        self.counts.stores_sram += 1;
    }

    /// Charges one word store to SRAM.
    #[inline]
    pub fn store_sram_word(&mut self) {
        self.cycles += self.costs().store_sram_word;
        self.counts.stores_sram += 1;
    }

    /// Charges one byte/halfword data load from flash.
    #[inline]
    pub fn load_flash(&mut self) {
        self.cycles += self.costs().load_flash;
        self.counts.loads_flash += 1;
    }

    /// Charges one word data load from flash.
    #[inline]
    pub fn load_flash_word(&mut self) {
        self.cycles += self.costs().load_flash_word;
        self.counts.loads_flash += 1;
    }

    /// Charges a sequential burst of `words` word loads from flash: the
    /// first access pays wait states, subsequent words stream from the
    /// 128-bit flash line / prefetch buffer at one cycle each (STM32 flash
    /// read interface).
    #[inline]
    pub fn load_flash_burst(&mut self, words: u64) {
        if words == 0 {
            return;
        }
        self.cycles += self.costs().load_flash_word + (words - 1);
        self.counts.loads_flash += words;
    }

    /// Charges a sequential burst of `words` word stores to SRAM (STM-style
    /// multiple store: address setup once, then one cycle per word).
    #[inline]
    pub fn store_sram_burst(&mut self, words: u64) {
        if words == 0 {
            return;
        }
        self.cycles += self.costs().store_sram_word + (words - 1);
        self.counts.stores_sram += words;
    }

    /// Charges one taken branch.
    #[inline]
    pub fn branch(&mut self) {
        self.cycles += self.costs().branch;
        self.counts.branches += 1;
    }

    /// Charges one loop iteration's bookkeeping.
    #[inline]
    pub fn loop_iter(&mut self) {
        self.cycles += self.costs().loop_iter;
        self.counts.loop_iters += 1;
    }

    /// Charges `n` loop iterations' bookkeeping.
    #[inline]
    pub fn loop_iters(&mut self, n: u64) {
        self.cycles += self.costs().loop_iter * n;
        self.counts.loop_iters += n;
    }

    /// Charges a function call + return.
    #[inline]
    pub fn call(&mut self) {
        self.cycles += self.costs().call;
        self.counts.calls += 1;
    }

    // ---- memory accounting ----------------------------------------------

    /// Reserves `bytes` of SRAM (activations, scratch, cached LUT).
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the reservation exceeds SRAM capacity.
    pub fn alloc_sram(&mut self, bytes: usize) -> Result<(), CapacityError> {
        if self.sram_in_use + bytes > self.spec.sram_bytes {
            return Err(CapacityError {
                region: "SRAM",
                requested: bytes,
                in_use: self.sram_in_use,
                capacity: self.spec.sram_bytes,
            });
        }
        self.sram_in_use += bytes;
        self.sram_peak = self.sram_peak.max(self.sram_in_use);
        Ok(())
    }

    /// Releases `bytes` of SRAM.
    ///
    /// # Panics
    ///
    /// Panics if releasing more than is in use (an accounting bug).
    pub fn free_sram(&mut self, bytes: usize) {
        assert!(
            bytes <= self.sram_in_use,
            "freeing {bytes} bytes with {} in use",
            self.sram_in_use
        );
        self.sram_in_use -= bytes;
    }

    /// Places `bytes` in flash (weights, indices, lookup tables, code data).
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if flash capacity is exceeded.
    pub fn place_flash(&mut self, bytes: usize) -> Result<(), CapacityError> {
        if self.flash_in_use + bytes > self.spec.flash_bytes {
            return Err(CapacityError {
                region: "flash",
                requested: bytes,
                in_use: self.flash_in_use,
                capacity: self.spec.flash_bytes,
            });
        }
        self.flash_in_use += bytes;
        Ok(())
    }

    /// Current SRAM usage in bytes.
    pub fn sram_in_use(&self) -> usize {
        self.sram_in_use
    }

    /// High-water mark of SRAM usage.
    pub fn sram_peak(&self) -> usize {
        self.sram_peak
    }

    /// Flash bytes placed.
    pub fn flash_in_use(&self) -> usize {
        self.flash_in_use
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mcu() -> Mcu {
        Mcu::new(McuSpec::mc_large())
    }

    #[test]
    fn cycles_accumulate_per_costs() {
        let mut m = mcu();
        let c = m.spec().costs;
        m.alu();
        m.mul();
        m.mac();
        m.load_sram();
        m.load_flash();
        assert_eq!(m.cycles(), c.alu + c.mul + c.mac + c.load_sram + c.load_flash);
    }

    #[test]
    fn op_counts_track_categories() {
        let mut m = mcu();
        m.alu_n(5);
        m.load_flash();
        m.load_flash_word();
        m.loop_iters(3);
        let counts = m.counts();
        assert_eq!(counts.alu, 5);
        assert_eq!(counts.loads_flash, 2);
        assert_eq!(counts.loop_iters, 3);
    }

    #[test]
    fn reset_clears_cycles_not_memory() {
        let mut m = mcu();
        m.alloc_sram(100).unwrap();
        m.alu();
        m.reset_cycles();
        assert_eq!(m.cycles(), 0);
        assert_eq!(m.sram_in_use(), 100);
    }

    #[test]
    fn sram_peak_tracks_watermark() {
        let mut m = mcu();
        m.alloc_sram(1000).unwrap();
        m.alloc_sram(500).unwrap();
        m.free_sram(1200);
        m.alloc_sram(100).unwrap();
        assert_eq!(m.sram_peak(), 1500);
        assert_eq!(m.sram_in_use(), 400);
    }

    #[test]
    fn sram_overflow_is_error() {
        let mut m = Mcu::new(McuSpec::mc_small());
        assert!(m.alloc_sram(20 * 1024).is_ok());
        let err = m.alloc_sram(1).unwrap_err();
        assert_eq!(err.region, "SRAM");
        assert_eq!(err.capacity, 20 * 1024);
    }

    #[test]
    fn flash_overflow_is_error() {
        let mut m = Mcu::new(McuSpec::mc_small());
        assert!(m.place_flash(128 * 1024).is_ok());
        assert!(m.place_flash(1).is_err());
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn over_free_panics() {
        let mut m = mcu();
        m.free_sram(1);
    }

    #[test]
    fn burst_loads_amortize_wait_states() {
        let mut m = mcu();
        m.load_flash_burst(8);
        let burst = m.cycles();
        let mut m2 = mcu();
        for _ in 0..8 {
            m2.load_flash_word();
        }
        assert!(burst < m2.cycles(), "burst {burst} vs serial {}", m2.cycles());
        assert_eq!(m.counts().loads_flash, 8);
    }

    #[test]
    fn zero_length_burst_is_free() {
        let mut m = mcu();
        m.load_flash_burst(0);
        m.store_sram_burst(0);
        assert_eq!(m.cycles(), 0);
    }

    #[test]
    fn store_burst_counts_words() {
        let mut m = mcu();
        m.store_sram_burst(5);
        assert_eq!(m.counts().stores_sram, 5);
        // First word pays setup, rest stream at 1 cycle.
        assert_eq!(m.cycles(), m.spec().costs.store_sram_word + 4);
    }

    #[test]
    fn seconds_reflect_clock() {
        let mut large = Mcu::new(McuSpec::mc_large());
        let mut small = Mcu::new(McuSpec::mc_small());
        for _ in 0..1000 {
            large.alu();
            small.alu();
        }
        // Same cycles, slower clock => more seconds.
        assert!(small.seconds() > large.seconds());
    }
}
