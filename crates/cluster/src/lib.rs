//! K-means clustering used to generate weight pools.
//!
//! The paper clusters 1×8 weight vectors with K-means using a **cosine
//! distance metric** "to avoid scaling dependence" (§3). This crate provides
//! both plain Euclidean K-means and a spherical variant realizing the
//! paper's choice:
//!
//! * assignment by cosine similarity (direction only),
//! * centroid direction = renormalized mean of member directions,
//! * centroid magnitude = mean member norm (so pool entries remain *actual
//!   weight values*, which the LUT generation step then consumes).
//!
//! # Example
//!
//! ```
//! use wp_cluster::{KMeans, DistanceMetric};
//! use rand::SeedableRng;
//!
//! let points = vec![
//!     vec![1.0, 0.0], vec![0.9, 0.1],   // cluster A
//!     vec![0.0, 1.0], vec![0.1, 0.9],   // cluster B
//! ];
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let result = KMeans::new(2, DistanceMetric::Euclidean)
//!     .max_iters(50)
//!     .fit(&points, &mut rng)?;
//! assert_eq!(result.assignments[0], result.assignments[1]);
//! assert_ne!(result.assignments[0], result.assignments[2]);
//! # Ok::<(), wp_cluster::ClusterError>(())
//! ```

use rand::Rng;
use std::error::Error;
use std::fmt;

/// How point-to-centroid distance is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistanceMetric {
    /// Squared Euclidean distance; standard Lloyd's algorithm.
    Euclidean,
    /// Cosine distance `1 - cos(a, b)`; spherical K-means. Zero vectors are
    /// treated as distance 1 from everything.
    Cosine,
}

/// Error produced by [`KMeans::fit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Fewer points than requested clusters.
    TooFewPoints { points: usize, k: usize },
    /// Points have inconsistent or zero dimensionality.
    BadDimensions,
    /// A zero-norm point under [`DistanceMetric::Cosine`]: such a point
    /// has no direction, so cosine distance to it is undefined (the old
    /// behavior silently treated it as equidistant from everything, which
    /// let degenerate weight groups poison centroid directions).
    ZeroNormPoint {
        /// Index of the offending point in the input slice.
        index: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::TooFewPoints { points, k } => {
                write!(f, "cannot form {k} clusters from {points} points")
            }
            ClusterError::BadDimensions => {
                write!(f, "points must be non-empty and share one dimensionality")
            }
            ClusterError::ZeroNormPoint { index } => {
                write!(
                    f,
                    "point {index} has zero norm; cosine distance is undefined for it \
                     (filter zero vectors out or use the Euclidean metric)"
                )
            }
        }
    }
}

impl Error for ClusterError {}

/// Result of a K-means fit.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster centers, `k` rows of the input dimensionality.
    pub centroids: Vec<Vec<f32>>,
    /// Index of the nearest centroid for each input point.
    pub assignments: Vec<usize>,
    /// Final sum of point-to-assigned-centroid distances.
    pub inertia: f64,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

/// K-means clusterer with k-means++ initialization and empty-cluster repair.
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    metric: DistanceMetric,
    max_iters: usize,
    tol: f64,
}

impl KMeans {
    /// Creates a clusterer for `k` clusters under the given metric.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize, metric: DistanceMetric) -> Self {
        assert!(k > 0, "k must be positive");
        Self { k, metric, max_iters: 100, tol: 1e-6 }
    }

    /// Sets the maximum number of Lloyd iterations (default 100).
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Sets the relative inertia-improvement convergence tolerance
    /// (default `1e-6`).
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Runs K-means on `points`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::TooFewPoints`] if `points.len() < k`,
    /// [`ClusterError::BadDimensions`] if points are empty or ragged, and
    /// [`ClusterError::ZeroNormPoint`] if the metric is
    /// [`DistanceMetric::Cosine`] and any point has zero norm.
    pub fn fit(
        &self,
        points: &[Vec<f32>],
        rng: &mut impl Rng,
    ) -> Result<KMeansResult, ClusterError> {
        if points.len() < self.k {
            return Err(ClusterError::TooFewPoints { points: points.len(), k: self.k });
        }
        let dim = points.first().map(|p| p.len()).unwrap_or(0);
        if dim == 0 || points.iter().any(|p| p.len() != dim) {
            return Err(ClusterError::BadDimensions);
        }
        if self.metric == DistanceMetric::Cosine {
            if let Some(index) = points.iter().position(|p| norm(p) == 0.0) {
                return Err(ClusterError::ZeroNormPoint { index });
            }
        }

        let mut centroids = self.init_plus_plus(points, rng);
        let mut assignments = vec![0usize; points.len()];
        let mut last_inertia = f64::INFINITY;
        let mut iterations = 0;

        for iter in 0..self.max_iters {
            iterations = iter + 1;
            // Assignment step.
            let mut inertia = 0.0f64;
            for (i, p) in points.iter().enumerate() {
                let (best, d) = nearest(p, &centroids, self.metric);
                assignments[i] = best;
                inertia += d as f64;
            }
            // Update step.
            centroids = self.recompute_centroids(points, &assignments, rng);

            if last_inertia.is_finite() {
                let improvement = (last_inertia - inertia).abs() / last_inertia.max(1e-12);
                if improvement < self.tol {
                    break;
                }
            }
            last_inertia = inertia;
        }

        // Final assignment against the final centroids.
        let mut inertia = 0.0f64;
        for (i, p) in points.iter().enumerate() {
            let (best, d) = nearest(p, &centroids, self.metric);
            assignments[i] = best;
            inertia += d as f64;
        }

        Ok(KMeansResult { centroids, assignments, inertia, iterations })
    }

    /// k-means++ seeding: first centroid uniform, later ones proportional to
    /// distance-to-nearest-chosen.
    fn init_plus_plus(&self, points: &[Vec<f32>], rng: &mut impl Rng) -> Vec<Vec<f32>> {
        let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(self.k);
        centroids.push(points[rng.gen_range(0..points.len())].clone());
        let mut dists: Vec<f32> =
            points.iter().map(|p| distance(p, &centroids[0], self.metric)).collect();

        while centroids.len() < self.k {
            let total: f64 = dists.iter().map(|&d| d as f64).sum();
            let chosen = if total <= 0.0 {
                // All points coincide with existing centroids; pick uniformly.
                rng.gen_range(0..points.len())
            } else {
                let mut target = rng.gen::<f64>() * total;
                let mut idx = points.len() - 1;
                for (i, &d) in dists.iter().enumerate() {
                    target -= d as f64;
                    if target <= 0.0 {
                        idx = i;
                        break;
                    }
                }
                idx
            };
            centroids.push(points[chosen].clone());
            for (i, p) in points.iter().enumerate() {
                let d = distance(p, centroids.last().unwrap(), self.metric);
                if d < dists[i] {
                    dists[i] = d;
                }
            }
        }
        centroids
    }

    fn recompute_centroids(
        &self,
        points: &[Vec<f32>],
        assignments: &[usize],
        rng: &mut impl Rng,
    ) -> Vec<Vec<f32>> {
        let dim = points[0].len();
        let mut sums = vec![vec![0.0f64; dim]; self.k];
        let mut norm_sums = vec![0.0f64; self.k];
        let mut counts = vec![0usize; self.k];

        for (p, &a) in points.iter().zip(assignments) {
            counts[a] += 1;
            match self.metric {
                DistanceMetric::Euclidean => {
                    for (s, &v) in sums[a].iter_mut().zip(p) {
                        *s += v as f64;
                    }
                }
                DistanceMetric::Cosine => {
                    let n = norm(p);
                    norm_sums[a] += n as f64;
                    if n > 0.0 {
                        for (s, &v) in sums[a].iter_mut().zip(p) {
                            *s += (v / n) as f64;
                        }
                    }
                }
            }
        }

        let mut centroids = Vec::with_capacity(self.k);
        for c in 0..self.k {
            if counts[c] == 0 {
                // Empty-cluster repair: reseed on a random point.
                centroids.push(points[rng.gen_range(0..points.len())].clone());
                continue;
            }
            let inv = 1.0 / counts[c] as f64;
            match self.metric {
                DistanceMetric::Euclidean => {
                    centroids.push(sums[c].iter().map(|&s| (s * inv) as f32).collect());
                }
                DistanceMetric::Cosine => {
                    // Direction: renormalized mean direction.
                    // Magnitude: mean member norm, keeping pool entries at
                    // realistic weight scale.
                    let mean_dir: Vec<f32> = sums[c].iter().map(|&s| (s * inv) as f32).collect();
                    let dir_norm = norm(&mean_dir);
                    let mag = (norm_sums[c] * inv) as f32;
                    if dir_norm > 0.0 {
                        centroids.push(mean_dir.iter().map(|&v| v / dir_norm * mag).collect());
                    } else {
                        centroids.push(points[rng.gen_range(0..points.len())].clone());
                    }
                }
            }
        }
        centroids
    }
}

/// Euclidean norm of a vector.
fn norm(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Distance between two vectors under `metric`.
///
/// Euclidean returns the *squared* distance (the K-means objective);
/// cosine returns `1 - cos(a, b)` in `[0, 2]`.
pub fn distance(a: &[f32], b: &[f32], metric: DistanceMetric) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match metric {
        DistanceMetric::Euclidean => a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum(),
        DistanceMetric::Cosine => {
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na = norm(a);
            let nb = norm(b);
            if na == 0.0 || nb == 0.0 {
                1.0
            } else {
                1.0 - dot / (na * nb)
            }
        }
    }
}

/// Index and distance of the nearest centroid to `p`.
pub fn nearest(p: &[f32], centroids: &[Vec<f32>], metric: DistanceMetric) -> (usize, f32) {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = distance(p, c, metric);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    (best, best_d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn separable_clusters_recovered_euclidean() {
        let mut points = Vec::new();
        let mut r = rng(1);
        for _ in 0..50 {
            points.push(vec![10.0 + r.gen::<f32>(), 10.0 + r.gen::<f32>()]);
            points.push(vec![-10.0 + r.gen::<f32>(), -10.0 + r.gen::<f32>()]);
        }
        let res = KMeans::new(2, DistanceMetric::Euclidean).fit(&points, &mut r).unwrap();
        // Even-indexed points are one cluster, odd-indexed the other.
        let a = res.assignments[0];
        assert!(res.assignments.iter().step_by(2).all(|&x| x == a));
        assert!(res.assignments.iter().skip(1).step_by(2).all(|&x| x != a));
    }

    #[test]
    fn cosine_ignores_scale() {
        // Same direction at very different magnitudes must co-cluster.
        let points = vec![vec![1.0, 0.0], vec![100.0, 0.0], vec![0.0, 1.0], vec![0.0, 55.0]];
        let mut r = rng(2);
        let res = KMeans::new(2, DistanceMetric::Cosine).fit(&points, &mut r).unwrap();
        assert_eq!(res.assignments[0], res.assignments[1]);
        assert_eq!(res.assignments[2], res.assignments[3]);
        assert_ne!(res.assignments[0], res.assignments[2]);
    }

    #[test]
    fn cosine_centroid_magnitude_is_mean_norm() {
        let points = vec![vec![2.0, 0.0], vec![4.0, 0.0]];
        let mut r = rng(3);
        let res = KMeans::new(1, DistanceMetric::Cosine).fit(&points, &mut r).unwrap();
        let c = &res.centroids[0];
        assert!((norm(c) - 3.0).abs() < 1e-5, "centroid {c:?}");
        assert!(c[0] > 0.0 && c[1].abs() < 1e-6);
    }

    #[test]
    fn k_equal_n_gives_zero_inertia() {
        let points = vec![vec![0.0, 0.0], vec![5.0, 5.0], vec![-3.0, 9.0]];
        let mut r = rng(4);
        let res = KMeans::new(3, DistanceMetric::Euclidean).fit(&points, &mut r).unwrap();
        assert!(res.inertia < 1e-9, "inertia {}", res.inertia);
    }

    #[test]
    fn too_few_points_is_error() {
        let points = vec![vec![1.0]];
        let mut r = rng(5);
        let err = KMeans::new(2, DistanceMetric::Euclidean).fit(&points, &mut r);
        assert_eq!(err, Err(ClusterError::TooFewPoints { points: 1, k: 2 }));
    }

    #[test]
    fn ragged_points_is_error() {
        let points = vec![vec![1.0, 2.0], vec![3.0]];
        let mut r = rng(6);
        let err = KMeans::new(1, DistanceMetric::Euclidean).fit(&points, &mut r);
        assert_eq!(err, Err(ClusterError::BadDimensions));
    }

    #[test]
    fn duplicate_points_do_not_crash() {
        let points = vec![vec![1.0, 1.0]; 20];
        let mut r = rng(7);
        let res = KMeans::new(4, DistanceMetric::Euclidean).fit(&points, &mut r).unwrap();
        assert!(res.inertia < 1e-9);
        assert_eq!(res.assignments.len(), 20);
    }

    #[test]
    fn zero_vectors_under_cosine_are_a_typed_error() {
        let points = vec![vec![1.0, 0.0], vec![0.0, 0.0], vec![0.0, 1.0]];
        let mut r = rng(8);
        let err = KMeans::new(2, DistanceMetric::Cosine).fit(&points, &mut r);
        assert_eq!(err, Err(ClusterError::ZeroNormPoint { index: 1 }));
    }

    #[test]
    fn zero_vectors_under_euclidean_are_fine() {
        // The zero vector is a perfectly good Euclidean point.
        let points = vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![5.0, 5.0]];
        let mut r = rng(12);
        let res = KMeans::new(2, DistanceMetric::Euclidean).fit(&points, &mut r).unwrap();
        assert_eq!(res.assignments[0], res.assignments[1]);
        assert_ne!(res.assignments[0], res.assignments[2]);
    }

    #[test]
    fn k_boundaries_under_both_metrics() {
        let points = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![-1.0, 0.5]];
        for metric in [DistanceMetric::Euclidean, DistanceMetric::Cosine] {
            let mut r = rng(13);
            // k == n is the boundary: every point its own cluster.
            let res = KMeans::new(3, metric).fit(&points, &mut r).unwrap();
            let mut seen: Vec<usize> = res.assignments.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), 3, "{metric:?}: all clusters used at k == n");
            // k == n + 1 must be the typed error, not duplicate centroids.
            let err = KMeans::new(4, metric).fit(&points, &mut r);
            assert_eq!(err, Err(ClusterError::TooFewPoints { points: 3, k: 4 }), "{metric:?}");
        }
    }

    #[test]
    fn distance_euclidean_is_squared() {
        assert_eq!(distance(&[0.0, 0.0], &[3.0, 4.0], DistanceMetric::Euclidean), 25.0);
    }

    #[test]
    fn distance_cosine_bounds() {
        assert!(distance(&[1.0, 0.0], &[1.0, 0.0], DistanceMetric::Cosine).abs() < 1e-6);
        assert!((distance(&[1.0, 0.0], &[-1.0, 0.0], DistanceMetric::Cosine) - 2.0).abs() < 1e-6);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Every point must be assigned to its true nearest centroid.
        #[test]
        fn prop_assignments_are_nearest(
            seed in 0u64..500,
            n in 8usize..40,
            k in 1usize..6,
            dim in 1usize..6,
        ) {
            prop_assume!(n >= k);
            let mut r = rng(seed);
            let points: Vec<Vec<f32>> = (0..n)
                .map(|_| (0..dim).map(|_| r.gen_range(-5.0f32..5.0)).collect())
                .collect();
            let res = KMeans::new(k, DistanceMetric::Euclidean).fit(&points, &mut r).unwrap();
            for (p, &a) in points.iter().zip(&res.assignments) {
                let (best, _) = nearest(p, &res.centroids, DistanceMetric::Euclidean);
                let da = distance(p, &res.centroids[a], DistanceMetric::Euclidean);
                let db = distance(p, &res.centroids[best], DistanceMetric::Euclidean);
                prop_assert!(da <= db + 1e-5);
            }
        }

        /// Inertia with k clusters is no worse than the 1-cluster mean.
        #[test]
        fn prop_more_clusters_never_hurt_much(
            seed in 0u64..200,
            n in 10usize..30,
        ) {
            let mut r = rng(seed);
            let points: Vec<Vec<f32>> = (0..n)
                .map(|_| vec![r.gen_range(-1.0f32..1.0), r.gen_range(-1.0f32..1.0)])
                .collect();
            let res1 = KMeans::new(1, DistanceMetric::Euclidean).fit(&points, &mut r).unwrap();
            let res4 = KMeans::new(4, DistanceMetric::Euclidean).fit(&points, &mut r).unwrap();
            // k-means++ with repair should practically never be worse than
            // the single-mean solution; allow tiny numerical slack.
            prop_assert!(res4.inertia <= res1.inertia * 1.001 + 1e-6);
        }
    }
}
