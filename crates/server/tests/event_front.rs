//! The event front's own end-to-end suite: deadline behavior (slowloris
//! 408, dead-peer write timeout), overload 503 + `Retry-After`, hostile
//! framing (trickled heads, pipelining, mid-body disconnects), and
//! bit-identity of chunked responses against the threaded front.
//!
//! Everything here drives a real server over real loopback sockets.

#![cfg(target_os = "linux")]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wp_server::batcher::BatcherConfig;
use wp_server::demo::{demo_deployment, DemoSize};
use wp_server::metrics::Metrics;
use wp_server::protocol::{InferRequest, InferResponse};
use wp_server::registry::ModelRegistry;
use wp_server::server::{serve, FrontKind, ServerConfig, ServerHandle};
use wp_server::MetricsSnapshot;

fn demo_registry(batcher: BatcherConfig) -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new(batcher, Arc::new(Metrics::new())));
    let (bundle, opts) = demo_deployment(DemoSize::Tiny, 3);
    registry.insert_bundle("demo", &bundle, opts);
    registry
}

fn quick_batcher() -> BatcherConfig {
    BatcherConfig { max_batch: 8, max_wait: Duration::from_millis(2), ..BatcherConfig::default() }
}

fn start(config: ServerConfig, batcher: BatcherConfig) -> ServerHandle {
    serve(config, demo_registry(batcher)).expect("bind")
}

/// A pipelining-safe response reader: bytes past one response stay
/// buffered for the next call instead of being dropped.
struct RespReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl RespReader {
    fn connect(handle: &ServerHandle) -> Self {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        Self { stream, buf: Vec::new() }
    }

    fn fill(&mut self) {
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk).expect("read response");
        assert!(
            n > 0,
            "EOF mid-response; buffered: {:?}",
            String::from_utf8_lossy(&self.buf[..self.buf.len().min(200)])
        );
        self.buf.extend_from_slice(&chunk[..n]);
    }

    /// Reads one full response, decoding `Content-Length` or chunked
    /// framing. Returns `(status, headers, body, was_chunked)`.
    fn read_response(&mut self) -> (u16, Vec<(String, String)>, Vec<u8>, bool) {
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            self.fill();
        };
        let head = String::from_utf8(self.buf[..head_end].to_vec()).expect("utf-8 head");
        self.buf.drain(..head_end);
        let mut lines = head.lines();
        let status: u16 = lines
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line in {head:?}"));
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            .collect();
        let header = |name: &str| {
            headers.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
        };

        if header("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
            let mut body = Vec::new();
            loop {
                let line_end = loop {
                    if let Some(i) = self.buf.windows(2).position(|w| w == b"\r\n") {
                        break i;
                    }
                    self.fill();
                };
                let size = usize::from_str_radix(
                    std::str::from_utf8(&self.buf[..line_end]).expect("chunk size utf-8").trim(),
                    16,
                )
                .expect("chunk size hex");
                self.buf.drain(..line_end + 2);
                if size == 0 {
                    while self.buf.len() < 2 {
                        self.fill();
                    }
                    assert_eq!(&self.buf[..2], b"\r\n", "chunked epilogue");
                    self.buf.drain(..2);
                    return (status, headers, body, true);
                }
                while self.buf.len() < size + 2 {
                    self.fill();
                }
                body.extend_from_slice(&self.buf[..size]);
                assert_eq!(&self.buf[size..size + 2], b"\r\n", "chunk terminator");
                self.buf.drain(..size + 2);
            }
        }

        let len: usize = header("content-length").expect("framing header").parse().unwrap();
        while self.buf.len() < len {
            self.fill();
        }
        let body = self.buf[..len].to_vec();
        self.buf.drain(..len);
        (status, headers, body, false)
    }
}

fn post_infer(stream: &mut TcpStream, req: &InferRequest) {
    let body = serde_json::to_string(req).unwrap();
    write!(
        stream,
        "POST /v1/infer HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
}

fn infer_roundtrip(
    handle: &ServerHandle,
    req: &InferRequest,
) -> (u16, Vec<(String, String)>, Vec<u8>, bool) {
    let mut client = RespReader::connect(handle);
    post_infer(&mut client.stream, req);
    client.read_response()
}

fn metrics_snapshot(handle: &ServerHandle) -> MetricsSnapshot {
    let mut client = RespReader::connect(handle);
    write!(client.stream, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let (status, _, body, _) = client.read_response();
    assert_eq!(status, 200);
    serde_json::from_str(&String::from_utf8(body).unwrap()).expect("metrics json")
}

/// Reads to EOF (bounded by the socket read timeout), returning all bytes.
fn drain_to_eof(stream: &mut TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return out,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                panic!("server hung: connection neither answered nor closed")
            }
            // A reset still proves the server closed.
            Err(_) => return out,
        }
    }
}

/// Slowloris: a client trickling a request one byte at a time keeps the
/// parser "making progress" forever; the anchored read deadline must
/// still fire, answer `408 Request Timeout`, and close the connection.
#[test]
fn slowloris_trickler_gets_408_and_closed() {
    let mut handle = start(
        ServerConfig { read_timeout: Duration::from_millis(600), ..ServerConfig::default() },
        quick_batcher(),
    );
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(15))).unwrap();

    // Trickle bytes more often than the read deadline, for longer than
    // the read deadline: a refresh-per-byte bug would never fire.
    let head = b"GET /healthz HTTP/1.1\r\nHost: slow\r\nX-Pad: aaaaaaaaaaaaaaaa\r\n";
    let started = Instant::now();
    for byte in head.iter() {
        if stream.write_all(std::slice::from_ref(byte)).is_err() {
            break; // server already closed on us — expected eventually
        }
        std::thread::sleep(Duration::from_millis(40));
        if started.elapsed() > Duration::from_secs(3) {
            break;
        }
    }

    let response = drain_to_eof(&mut stream);
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.starts_with("HTTP/1.1 408 Request Timeout"),
        "expected 408 then close, got: {text:?}"
    );
    assert!(text.contains("Connection: close"), "{text}");

    let snap = metrics_snapshot(&handle);
    assert!(snap.connections_timed_out >= 1, "timeout counted: {snap:?}");
    handle.shutdown();
}

/// A peer that stops draining its responses: pipeline more requests
/// (without ever reading) than the kernel's socket buffers can absorb;
/// the write deadline must close the connection instead of parking the
/// response bytes forever.
#[test]
fn dead_peer_write_timeout_closes() {
    let mut handle = start(
        ServerConfig {
            write_timeout: Duration::from_millis(500),
            // Generous other deadlines so the *write* phase is what fires.
            read_timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        },
        quick_batcher(),
    );
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(15))).unwrap();

    // 20k pipelined requests => ~14MB of responses, far beyond what the
    // kernel will buffer (tcp_wmem caps sndbuf at a few MB), so the
    // server's write queue jams and the write deadline governs.
    let one = b"GET /v1/models HTTP/1.1\r\nHost: dead\r\n\r\n";
    let batch: Vec<u8> = one.iter().copied().cycle().take(one.len() * 20_000).collect();
    // The server may close mid-write once the deadline fires; that's the
    // scenario, not an error.
    let _ = stream.write_all(&batch);

    // Never read a byte. The close must be counted within a few deadline
    // periods.
    let started = Instant::now();
    loop {
        let snap = metrics_snapshot(&handle);
        if snap.connections_timed_out >= 1 {
            break;
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "write deadline never fired: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // And the socket really is closed: draining ends in EOF/reset, not
    // 20k responses' worth of bytes.
    let drained = drain_to_eof(&mut stream);
    assert!(
        drained.len() < 8 * 1024 * 1024,
        "far more than kernel-buffered bytes arrived ({}); was the connection kept?",
        drained.len()
    );
    handle.shutdown();
}

/// Queue saturation answers `503` with a `Retry-After` header instead of
/// wedging the request — on both fronts.
#[test]
fn overload_gets_503_with_retry_after_on_both_fronts() {
    for front in [FrontKind::Event, FrontKind::Threaded] {
        // max_queue 2 with a single 4-plane request: planes 3 and 4 are
        // rejected at submit, deterministically.
        let batcher = BatcherConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(50),
            max_queue: 2,
            ..BatcherConfig::default()
        };
        let mut handle = start(ServerConfig { front, ..ServerConfig::default() }, batcher);
        let net = handle.registry().get("demo").unwrap().net();
        let inputs = net.fabricate_inputs(4, 7);

        let (status, headers, body, _) =
            infer_roundtrip(&handle, &InferRequest { model: None, inputs });
        assert_eq!(status, 503, "{front:?}: {}", String::from_utf8_lossy(&body));
        let retry = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("retry-after"))
            .map(|(_, v)| v.as_str());
        assert_eq!(retry, Some("1"), "{front:?}: Retry-After missing: {headers:?}");
        assert!(String::from_utf8_lossy(&body).contains("queue full"), "{front:?}");

        // The server recovers once the stranded planes flush (≤ max_wait
        // later): a sane request must succeed again.
        let ok_input = handle.registry().get("demo").unwrap().net().fabricate_inputs(1, 8);
        let recovered = Instant::now();
        loop {
            let (status, _, _, _) =
                infer_roundtrip(&handle, &InferRequest { model: None, inputs: ok_input.clone() });
            if status == 200 {
                break;
            }
            assert_eq!(status, 503, "{front:?}: unexpected status {status}");
            assert!(
                recovered.elapsed() < Duration::from_secs(5),
                "{front:?} did not recover after overload"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        handle.shutdown();
    }
}

/// A request head split across dozens of tiny writes parses to exactly
/// the same answer as a single-write request.
#[test]
fn partial_heads_across_many_writes_parse_correctly() {
    let mut handle = start(ServerConfig::default(), quick_batcher());
    let net = handle.registry().get("demo").unwrap().net();
    let input = net.fabricate_inputs(1, 5).pop().unwrap();
    let expected = net.run_one(&input);

    let body = serde_json::to_string(&InferRequest { model: None, inputs: vec![input] }).unwrap();
    let request = format!(
        "POST /v1/infer HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );

    let mut client = RespReader::connect(&handle);
    // 7-byte fragments, flushed individually — the head terminator and
    // the body boundary both land mid-fragment somewhere.
    for fragment in request.as_bytes().chunks(7) {
        client.stream.write_all(fragment).unwrap();
        client.stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let (status, _, resp_body, _) = client.read_response();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp_body));
    let resp: InferResponse = serde_json::from_str(&String::from_utf8(resp_body).unwrap()).unwrap();
    assert_eq!(resp.outputs, vec![expected]);
    handle.shutdown();
}

/// Three pipelined requests in one write — a sync route, an inference,
/// another sync route — come back in order on one connection.
#[test]
fn interleaved_pipelined_requests_answer_in_order() {
    let mut handle = start(ServerConfig::default(), quick_batcher());
    let net = handle.registry().get("demo").unwrap().net();
    let input = net.fabricate_inputs(1, 11).pop().unwrap();
    let expected = net.run_one(&input);

    let infer_body =
        serde_json::to_string(&InferRequest { model: None, inputs: vec![input] }).unwrap();
    let pipelined = format!(
        "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
         POST /v1/infer HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{infer_body}\
         GET /v1/models HTTP/1.1\r\nHost: t\r\n\r\n",
        infer_body.len()
    );
    let mut client = RespReader::connect(&handle);
    client.stream.write_all(pipelined.as_bytes()).unwrap();

    let (s1, _, b1, _) = client.read_response();
    assert_eq!(s1, 200);
    assert!(String::from_utf8_lossy(&b1).contains("\"ok\""), "healthz first");
    let (s2, _, b2, _) = client.read_response();
    assert_eq!(s2, 200);
    let resp: InferResponse = serde_json::from_str(&String::from_utf8(b2).unwrap()).unwrap();
    assert_eq!(resp.outputs, vec![expected], "infer second, bit-identical");
    let (s3, _, b3, _) = client.read_response();
    assert_eq!(s3, 200);
    assert!(String::from_utf8_lossy(&b3).contains("\"input_len\""), "models last");
    handle.shutdown();
}

/// A client that dies mid-body: the server must drop the connection
/// without a response and stay healthy — no stuck event-thread slot.
#[test]
fn mid_body_disconnect_is_reaped_cleanly() {
    let mut handle = start(ServerConfig::default(), quick_batcher());

    for _ in 0..8 {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream
            .write_all(b"POST /v1/infer HTTP/1.1\r\nHost: t\r\nContent-Length: 1000\r\n\r\n{\"par")
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        // EOF mid-body: silent close (there is no request to answer).
        let leftovers = drain_to_eof(&mut stream);
        assert!(leftovers.is_empty(), "unexpected response to a dead request: {leftovers:?}");
    }

    // All eight slots were reclaimed and the server still serves.
    let snap = metrics_snapshot(&handle);
    assert_eq!(snap.connections_open, 1, "only the metrics probe itself open: {snap:?}");
    assert!(snap.connections_accepted >= 9, "{snap:?}");
    handle.shutdown();
}

/// Responses that cross the chunked-encoding threshold on the event
/// front must decode to exactly the bytes the threaded front sends with
/// `Content-Length` framing — and small responses must stay identically
/// framed on both fronts.
#[test]
fn chunked_responses_are_bit_identical_to_threaded_front() {
    let serve_front = |front: FrontKind| {
        serve(
            ServerConfig { front, ..ServerConfig::default() },
            demo_registry(BatcherConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(2),
                ..BatcherConfig::default()
            }),
        )
        .expect("bind")
    };
    let mut event = serve_front(FrontKind::Event);
    let mut threaded = serve_front(FrontKind::Threaded);

    let net = event.registry().get("demo").unwrap().net();
    // Enough planes that the response JSON crosses CHUNK_THRESHOLD.
    let big = InferRequest { model: None, inputs: net.fabricate_inputs(4000, 21) };
    let small = InferRequest { model: None, inputs: net.fabricate_inputs(1, 22) };

    let fetch = |handle: &ServerHandle, req: &InferRequest| {
        let (status, _, body, chunked) = infer_roundtrip(handle, req);
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body[..body.len().min(300)]));
        (body, chunked)
    };

    let (event_big, event_big_chunked) = fetch(&event, &big);
    let (threaded_big, threaded_big_chunked) = fetch(&threaded, &big);
    assert!(event_big.len() > 32 * 1024, "test must cross the chunk threshold");
    assert!(event_big_chunked, "large event-front response must use chunked framing");
    assert!(!threaded_big_chunked, "threaded front keeps Content-Length framing");
    assert_eq!(event_big, threaded_big, "chunked body must be bit-identical to buffered body");

    let (event_small, event_small_chunked) = fetch(&event, &small);
    let (threaded_small, _) = fetch(&threaded, &small);
    assert!(!event_small_chunked, "small responses keep Content-Length on the event front");
    assert_eq!(event_small, threaded_small);

    event.shutdown();
    threaded.shutdown();
}

/// The event front surfaces its own observability: connection counters
/// and per-event-thread loop histograms, in JSON and Prometheus, with
/// the per-model rows untouched.
#[test]
fn event_front_metrics_are_exposed() {
    let mut handle =
        start(ServerConfig { event_threads: 2, ..ServerConfig::default() }, quick_batcher());
    let net = handle.registry().get("demo").unwrap().net();
    let input = net.fabricate_inputs(1, 3).pop().unwrap();

    let mut client = RespReader::connect(&handle);
    post_infer(&mut client.stream, &InferRequest { model: None, inputs: vec![input] });
    let (status, _, _, _) = client.read_response();
    assert_eq!(status, 200);

    let snap = metrics_snapshot(&handle);
    assert!(snap.connections_accepted >= 2, "{snap:?}");
    assert!(snap.connections_open >= 1, "{snap:?}");
    assert_eq!(snap.event_loops.len(), 2, "one histogram per event thread: {snap:?}");
    assert!(snap.event_loops.iter().any(|h| h.count > 0), "loop iterations recorded: {snap:?}");
    assert_eq!(snap.models.len(), 1, "per-model rows untouched");
    assert_eq!(snap.models[0].inferences, 1);

    let mut client = RespReader::connect(&handle);
    write!(client.stream, "GET /metrics?format=prometheus HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let (status, _, body, _) = client.read_response();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("wp_connections_accepted_total"), "{text}");
    assert!(text.contains("wp_open_connections"), "{text}");
    assert!(text.contains("wp_connections_timed_out_total"), "{text}");
    assert!(text.contains("wp_event_loop_iteration_seconds_bucket{thread=\"0\""), "{text}");
    assert!(text.contains("wp_event_loop_iteration_seconds_bucket{thread=\"1\""), "{text}");
    assert!(text.contains("wp_model_inferences_total{model=\"demo\"} 1"), "{text}");
    handle.shutdown();
}
