//! End-to-end tests: a real server on a real loopback socket, driven by a
//! hand-rolled HTTP client, checked bit-for-bit against direct engine
//! execution.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use wp_server::batcher::BatcherConfig;
use wp_server::demo::{demo_deployment, DemoSize};
use wp_server::metrics::Metrics;
use wp_server::protocol::{InferRequest, InferResponse};
use wp_server::registry::ModelRegistry;
use wp_server::server::{serve, ServerConfig, ServerHandle};
use wp_server::MetricsSnapshot;

/// A minimal blocking HTTP client for the tests.
struct Client {
    stream: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Self {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        Self { stream: BufReader::new(stream) }
    }

    /// Sends one request, returns `(status, body)`.
    fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
        let (status, _, body) = self.request_full(method, path, &[], body);
        (status, body)
    }

    /// Sends one request with extra headers, returns
    /// `(status, response headers, body)`.
    fn request_full(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> (u16, Vec<(String, String)>, String) {
        let body = body.unwrap_or("");
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: test\r\n");
        for (k, v) in extra_headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        write!(self.stream.get_mut(), "{head}{body}").expect("write request");
        self.stream.get_mut().flush().unwrap();

        let mut line = String::new();
        self.stream.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {line:?}"));
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.stream.read_line(&mut header).expect("header line");
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((k, v)) = header.split_once(':') {
                if k.eq_ignore_ascii_case("content-length") {
                    content_length = v.trim().parse().expect("content-length");
                }
                headers.push((k.trim().to_string(), v.trim().to_string()));
            }
        }
        let mut body = vec![0u8; content_length];
        self.stream.read_exact(&mut body).expect("body");
        (status, headers, String::from_utf8(body).expect("utf-8 body"))
    }
}

fn start_server(max_batch: usize) -> ServerHandle {
    let batcher =
        BatcherConfig { max_batch, max_wait: Duration::from_millis(2), ..BatcherConfig::default() };
    let registry = Arc::new(ModelRegistry::new(batcher, Arc::new(Metrics::new())));
    let (bundle, opts) = demo_deployment(DemoSize::Tiny, 3);
    registry.insert_bundle("demo", &bundle, opts);
    serve(ServerConfig { allow_remote_shutdown: true, ..ServerConfig::default() }, registry)
        .expect("bind")
}

#[test]
fn healthz_models_and_metrics_respond() {
    let mut handle = start_server(8);
    let mut client = Client::connect(&handle);

    let (status, body) = client.request("GET", "/healthz", None);
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\"") && body.contains("demo"), "{body}");

    let (status, body) = client.request("GET", "/v1/models", None);
    assert_eq!(status, 200);
    assert!(body.contains("\"demo\"") && body.contains("\"input_len\":288"), "{body}");

    let (status, body) = client.request("GET", "/metrics", None);
    assert_eq!(status, 200);
    let snap: MetricsSnapshot = serde_json::from_str(&body).expect("metrics json");
    assert!(snap.http_requests >= 2, "own requests counted: {snap:?}");

    handle.shutdown();
}

#[test]
fn infer_is_bit_identical_to_direct_execution_under_concurrency() {
    let mut handle = start_server(8);
    let net = handle.registry().get("demo").unwrap().net();
    let inputs = net.fabricate_inputs(32, 1234);
    let expected: Vec<Vec<i32>> = inputs.iter().map(|x| net.run_one(x)).collect();

    // 16 concurrent keep-alive connections, two requests each.
    let outputs: Vec<Vec<i32>> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .chunks(2)
            .map(|pair| {
                let handle = &handle;
                scope.spawn(move || {
                    let mut client = Client::connect(handle);
                    let mut outs = Vec::new();
                    for input in pair {
                        let req = InferRequest {
                            model: Some("demo".into()),
                            inputs: vec![input.clone()],
                        };
                        let (status, body) = client.request(
                            "POST",
                            "/v1/infer",
                            Some(&serde_json::to_string(&req).unwrap()),
                        );
                        assert_eq!(status, 200, "{body}");
                        let resp: InferResponse = serde_json::from_str(&body).unwrap();
                        assert_eq!(resp.model, "demo");
                        outs.extend(resp.outputs);
                    }
                    outs
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(outputs, expected, "served responses must equal direct engine outputs");

    // The micro-batcher must actually have coalesced something: with 16
    // concurrent connections and max_batch 8, fewer batches than planes.
    let snap = handle.registry().metrics_snapshot();
    assert_eq!(snap.inferences, 32);
    assert!(snap.batches <= snap.inferences, "{snap:?}");
    // The totals are assembled from the per-model rows.
    assert_eq!(snap.models.len(), 1);
    assert_eq!(snap.models[0].name, "demo");
    assert_eq!(snap.models[0].inferences, 32);
    assert_eq!(snap.models[0].request_latency.count, 32, "per-model request latency recorded");
    handle.shutdown();
}

/// The stem-heavy demo (direct convs + depthwise + dense, no pooled
/// convs) served over real sockets: coalesced responses must be
/// bit-identical to direct execution — this is the end-to-end pin on the
/// weight-stationary batched direct/depthwise/dense kernels.
#[test]
fn stem_heavy_model_serves_bit_identically_under_concurrency() {
    let batcher = BatcherConfig {
        max_batch: 8,
        max_wait: Duration::from_millis(2),
        ..BatcherConfig::default()
    };
    let registry = Arc::new(ModelRegistry::new(batcher, Arc::new(Metrics::new())));
    let (bundle, opts) = demo_deployment(DemoSize::Stem, 3);
    registry.insert_bundle("demo-stem", &bundle, opts);
    let mut handle =
        serve(ServerConfig { allow_remote_shutdown: true, ..ServerConfig::default() }, registry)
            .expect("bind");

    let net = handle.registry().get("demo-stem").unwrap().net();
    let inputs = net.fabricate_inputs(12, 555);
    let expected: Vec<Vec<i32>> = inputs.iter().map(|x| net.run_one(x)).collect();

    let outputs: Vec<Vec<i32>> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .chunks(2)
            .map(|pair| {
                let handle = &handle;
                scope.spawn(move || {
                    let mut client = Client::connect(handle);
                    let mut outs = Vec::new();
                    for input in pair {
                        let req = InferRequest {
                            model: Some("demo-stem".into()),
                            inputs: vec![input.clone()],
                        };
                        let (status, body) = client.request(
                            "POST",
                            "/v1/infer",
                            Some(&serde_json::to_string(&req).unwrap()),
                        );
                        assert_eq!(status, 200, "{body}");
                        let resp: InferResponse = serde_json::from_str(&body).unwrap();
                        assert_eq!(resp.model, "demo-stem");
                        outs.extend(resp.outputs);
                    }
                    outs
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(outputs, expected, "stem-heavy batched serving must equal direct execution");
    handle.shutdown();
}

#[test]
fn multi_plane_requests_and_default_model() {
    let mut handle = start_server(4);
    let net = handle.registry().get("demo").unwrap().net();
    let inputs = net.fabricate_inputs(3, 9);
    let expected: Vec<Vec<i32>> = inputs.iter().map(|x| net.run_one(x)).collect();

    // No model name: the lone registered model serves it. Three planes in
    // one request come back in order.
    let req = InferRequest { model: None, inputs: inputs.clone() };
    let mut client = Client::connect(&handle);
    let (status, body) =
        client.request("POST", "/v1/infer", Some(&serde_json::to_string(&req).unwrap()));
    assert_eq!(status, 200, "{body}");
    let resp: InferResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(resp.outputs, expected);
    handle.shutdown();
}

#[test]
fn error_paths_speak_json() {
    let mut handle = start_server(4);
    let mut client = Client::connect(&handle);

    let (status, body) = client.request("GET", "/nope", None);
    assert_eq!(status, 404);
    assert!(body.contains("error"), "{body}");

    let (status, body) = client.request("POST", "/v1/infer", Some("{ not json"));
    assert_eq!(status, 400);
    assert!(body.contains("error"), "{body}");

    let (status, body) = client.request("POST", "/v1/infer", Some("{\"inputs\":[]}"));
    assert_eq!(status, 400);
    assert!(body.contains("empty"), "{body}");

    let (status, body) =
        client.request("POST", "/v1/infer", Some("{\"model\":\"ghost\",\"inputs\":[[1,2,3]]}"));
    assert_eq!(status, 404);
    assert!(body.contains("ghost"), "{body}");

    let (status, body) = client.request("POST", "/v1/infer", Some("{\"inputs\":[[1,2,3]]}"));
    assert_eq!(status, 400, "wrong input size: {body}");
    assert!(body.contains("288"), "mentions expected size: {body}");

    let (status, _) = client.request("POST", "/v1/models/ghost/reload", None);
    assert_eq!(status, 404);

    let (status, _) = client.request("POST", "/v1/models/demo/reload", None);
    assert_eq!(status, 409, "in-memory model is not file-backed");

    handle.shutdown();
}

#[test]
fn file_backed_reload_over_http() {
    let dir = std::env::temp_dir().join("wp_e2e_reload");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    let (bundle, opts) = demo_deployment(DemoSize::Tiny, 21);
    bundle.save(&path).unwrap();

    let registry = Arc::new(ModelRegistry::new(
        BatcherConfig { max_batch: 4, ..BatcherConfig::default() },
        Arc::new(Metrics::new()),
    ));
    registry.insert_file("m", &path, opts).unwrap();
    let mut handle = serve(ServerConfig::default(), Arc::clone(&registry)).expect("bind");

    let net = registry.get("m").unwrap().net();
    let input = net.fabricate_inputs(1, 2).pop().unwrap();
    let req =
        serde_json::to_string(&InferRequest { model: None, inputs: vec![input.clone()] }).unwrap();

    let mut client = Client::connect(&handle);
    let (status, before) = client.request("POST", "/v1/infer", Some(&req));
    assert_eq!(status, 200);

    // File-backed models surface their bundle decode accounting.
    let (status, body) = client.request("GET", "/v1/models", None);
    assert_eq!(status, 200);
    assert!(body.contains("\"decode\":{\"sections\":"), "decode stats missing: {body}");

    // Swap the file, reload over HTTP, observe different outputs.
    demo_deployment(DemoSize::Tiny, 22).0.save(&path).unwrap();
    let (status, body) = client.request("POST", "/v1/models/m/reload", None);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"reloads\":1"), "{body}");
    assert!(body.contains("\"total_bytes\":"), "reload refreshes decode stats: {body}");
    let (status, after) = client.request("POST", "/v1/infer", Some(&req));
    assert_eq!(status, 200);
    assert_ne!(before, after, "hot swap must change responses");

    std::fs::remove_file(&path).ok();
    handle.shutdown();
}

#[test]
fn file_backed_reload_over_http_accepts_wpb() {
    // Same hot-swap flow as the JSON test, but the bundle on disk is the
    // entropy-coded binary format.
    let dir = std::env::temp_dir().join("wp_e2e_reload_wpb");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.wpb");
    let (bundle, opts) = demo_deployment(DemoSize::Tiny, 31);
    bundle.save(&path).unwrap();
    assert!(std::fs::read(&path).unwrap().starts_with(b"WPB1"), "must be binary on disk");

    let registry = Arc::new(ModelRegistry::new(
        BatcherConfig { max_batch: 4, ..BatcherConfig::default() },
        Arc::new(Metrics::new()),
    ));
    registry.insert_file("m", &path, opts).unwrap();
    let mut handle = serve(ServerConfig::default(), Arc::clone(&registry)).expect("bind");

    let net = registry.get("m").unwrap().net();
    let input = net.fabricate_inputs(1, 6).pop().unwrap();
    let req =
        serde_json::to_string(&InferRequest { model: None, inputs: vec![input.clone()] }).unwrap();

    let mut client = Client::connect(&handle);
    let (status, before) = client.request("POST", "/v1/infer", Some(&req));
    assert_eq!(status, 200);

    demo_deployment(DemoSize::Tiny, 32).0.save(&path).unwrap();
    let (status, body) = client.request("POST", "/v1/models/m/reload", None);
    assert_eq!(status, 200, "{body}");
    let (status, after) = client.request("POST", "/v1/infer", Some(&req));
    assert_eq!(status, 200);
    assert_ne!(before, after, "wpb hot swap must change responses");

    std::fs::remove_file(&path).ok();
    handle.shutdown();
}

/// Sends raw (possibly broken) bytes, optionally half-closing the write
/// side, and returns the response status line — or `None` if the server
/// closed (or reset) the connection without one. A read timeout bounds
/// the wait, so a hanging server fails the test instead of wedging it.
fn raw_request(handle: &ServerHandle, bytes: &[u8], shutdown_write: bool) -> Option<String> {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // The server may reject and close mid-write (e.g. an oversized head);
    // a failed tail write is part of the scenario, not a test error.
    let _ = stream.write_all(bytes);
    let _ = stream.flush();
    if shutdown_write {
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => response.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                panic!("server hung: no response within the client timeout")
            }
            // A reset after the server closed with our bytes still
            // unread; keep whatever arrived before it.
            Err(_) => break,
        }
    }
    if response.is_empty() {
        return None;
    }
    let text = String::from_utf8_lossy(&response);
    Some(text.lines().next().unwrap_or_default().to_string())
}

#[test]
fn malformed_requests_get_4xx_not_hangs() {
    let mut handle = start_server(4);

    // Oversized Content-Length: rejected up front with 413, body unread.
    let status = raw_request(
        &handle,
        format!("POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1_usize << 40).as_bytes(),
        false,
    );
    assert_eq!(status.as_deref(), Some("HTTP/1.1 413 Payload Too Large"));

    // Bad Content-Length value: 400.
    let status =
        raw_request(&handle, b"POST /v1/infer HTTP/1.1\r\nContent-Length: banana\r\n\r\n", false);
    assert_eq!(status.as_deref(), Some("HTTP/1.1 400 Bad Request"));

    // Missing header terminator: the head just stops mid-headers and the
    // peer half-closes. The server must answer 400, not block on more
    // bytes that never come.
    let status = raw_request(&handle, b"POST /v1/infer HTTP/1.1\r\nHost: x", true);
    assert_eq!(status.as_deref(), Some("HTTP/1.1 400 Bad Request"));

    // Garbage method: parses as an unknown method and routes to 404.
    let status =
        raw_request(&handle, b"%%GARBAGE%% /v1/infer HTTP/1.1\r\nConnection: close\r\n\r\n", false);
    assert_eq!(status.as_deref(), Some("HTTP/1.1 404 Not Found"));

    // Non-UTF-8 binary noise in the request line: 400. (Half-close after
    // the line so no unread bytes linger to race the response with RST.)
    let status = raw_request(&handle, b"\xFF\xFE\x00\x01 / HTTP/1.1\r\n", true);
    assert_eq!(status.as_deref(), Some("HTTP/1.1 400 Bad Request"));

    // Unsupported HTTP version: 400.
    let status = raw_request(&handle, b"GET / HTTP/2\r\n", true);
    assert_eq!(status.as_deref(), Some("HTTP/1.1 400 Bad Request"));

    // An oversized head (endless header line) is cut off at the limit
    // and answered 413 — though the answer can be lost to a TCP reset
    // when the server closes with our surplus bytes unread, so a silent
    // close is also acceptable. Either way: no hang.
    let mut huge = Vec::from(&b"GET / HTTP/1.1\r\nX-Pad: "[..]);
    huge.extend(std::iter::repeat_n(b'a', 64 * 1024));
    huge.extend_from_slice(b"\r\n\r\n");
    let status = raw_request(&handle, &huge, false);
    assert!(
        status.is_none() || status.as_deref() == Some("HTTP/1.1 413 Payload Too Large"),
        "unexpected response to oversized head: {status:?}"
    );

    // The server is still healthy afterwards.
    let mut client = Client::connect(&handle);
    let (status, _) = client.request("GET", "/healthz", None);
    assert_eq!(status, 200);
    handle.shutdown();
}

/// The whole observability surface over real sockets: request-id echo,
/// Prometheus and JSON metrics views, per-layer profile + reset, and the
/// Chrome trace export carrying this request's span id.
#[test]
fn observability_endpoints_end_to_end() {
    use wp_server::protocol::ModelProfileResponse;

    let batcher = BatcherConfig {
        max_batch: 4,
        max_wait: Duration::from_millis(2),
        ..BatcherConfig::default()
    };
    let registry =
        Arc::new(ModelRegistry::new(batcher, Arc::new(Metrics::new())).with_trace_capacity(4096));
    let (bundle, opts) = demo_deployment(DemoSize::Tiny, 3);
    registry.insert_bundle("demo", &bundle, opts);
    let mut handle = serve(ServerConfig::default(), registry).expect("bind");
    let net = handle.registry().get("demo").unwrap().net();
    let inputs = net.fabricate_inputs(6, 77);
    let mut client = Client::connect(&handle);

    // Infer with a caller-chosen request id: it must be echoed back.
    let req = serde_json::to_string(&InferRequest { model: None, inputs: inputs.clone() }).unwrap();
    let (status, headers, _) =
        client.request_full("POST", "/v1/infer", &[("X-Request-Id", "trace-me-42")], Some(&req));
    assert_eq!(status, 200);
    let echoed = headers.iter().find(|(k, _)| k.eq_ignore_ascii_case("x-request-id"));
    assert_eq!(echoed.map(|(_, v)| v.as_str()), Some("trace-me-42"));

    // Without a caller id the server generates one and still echoes it.
    let (_, headers, _) = client.request_full("GET", "/healthz", &[], None);
    let generated = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("x-request-id"))
        .map(|(_, v)| v.clone())
        .expect("generated request id");
    assert!(generated.starts_with("req-"), "{generated}");

    // JSON metrics: per-model rows carry the inference counts.
    let (status, body) = client.request("GET", "/metrics", None);
    assert_eq!(status, 200);
    let snap: MetricsSnapshot = serde_json::from_str(&body).expect("metrics json");
    assert_eq!(snap.models.len(), 1);
    assert_eq!(snap.models[0].inferences, 6);
    assert_eq!(snap.inferences, 6, "global total is the per-model sum");

    // Prometheus via query param and via Accept header.
    let (status, headers, text) =
        client.request_full("GET", "/metrics?format=prometheus", &[], None);
    assert_eq!(status, 200);
    let ct = headers.iter().find(|(k, _)| k.eq_ignore_ascii_case("content-type")).unwrap();
    assert!(ct.1.starts_with("text/plain"), "{ct:?}");
    assert!(text.contains("wp_model_inferences_total{model=\"demo\"} 6\n"), "{text}");
    assert!(text.contains("wp_model_queue_seconds_bucket{model=\"demo\",le=\"+Inf\"} 6"), "{text}");
    let (_, _, via_accept) =
        client.request_full("GET", "/metrics", &[("Accept", "text/plain")], None);
    assert!(via_accept.contains("wp_http_requests_total"), "{via_accept}");

    // Per-layer profile: layers record once per engine run (a batch
    // chunk is one run), so every layer's count equals the run count.
    let (status, body) = client.request("GET", "/v1/models/demo/profile", None);
    assert_eq!(status, 200, "{body}");
    let prof: ModelProfileResponse = serde_json::from_str(&body).expect("profile json");
    assert_eq!(prof.model, "demo");
    assert!(!prof.profile.layers.is_empty());
    assert!(prof.profile.runs > 0, "{body}");
    for layer in &prof.profile.layers {
        assert_eq!(layer.latency.count, prof.profile.runs, "layer {} miscounted", layer.index);
    }
    let share_sum: f64 = prof.profile.layers.iter().map(|l| l.share).sum();
    assert!(share_sum > 0.4 && share_sum <= 1.0 + 1e-9, "share sum {share_sum}");

    // Chrome trace export: valid JSON, has layer spans, and the queue
    // wait span carries our request id's hash.
    let (status, body) = client.request("GET", "/v1/models/demo/trace", None);
    assert_eq!(status, 200, "{body}");
    let trace = serde_json::value_from_str(&body).expect("trace json");
    fn field<'a>(v: &'a serde::Value, key: &str) -> Option<&'a serde::Value> {
        v.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
    let events = match field(&trace, "traceEvents") {
        Some(serde::Value::Array(events)) => events,
        other => panic!("traceEvents array missing: {other:?}"),
    };
    let name_of = |e: &serde::Value| field(e, "name").and_then(|n| n.as_str()).map(str::to_string);
    assert!(
        events.iter().any(|e| name_of(e).is_some_and(|n| n.starts_with("L0 "))),
        "per-layer span missing:\n{body}"
    );
    let expected_span = wp_engine::trace::span_id_from("trace-me-42");
    let hex = format!("{expected_span:016x}");
    assert!(
        events.iter().any(|e| {
            name_of(e).as_deref() == Some("queue-wait")
                && field(e, "args").and_then(|a| field(a, "span_id")).and_then(|s| s.as_str())
                    == Some(hex.as_str())
        }),
        "queue-wait span with id {hex} missing:\n{body}"
    );

    // Reset zeroes the profile.
    let (status, body) = client.request("POST", "/v1/models/demo/profile/reset", None);
    assert_eq!(status, 200, "{body}");
    let prof: ModelProfileResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(prof.profile.runs, 0);
    assert!(prof.profile.layers.iter().all(|l| l.latency.count == 0));

    // Errors carry the request id in the body.
    let (status, _, body) =
        client.request_full("GET", "/v1/models/ghost/profile", &[("X-Request-Id", "oops-1")], None);
    assert_eq!(status, 404);
    assert!(body.contains("\"request_id\":\"oops-1\""), "{body}");

    handle.shutdown();
}

/// With tracing off (the default), the trace endpoint refuses with 409
/// while the always-on profile keeps working.
#[test]
fn trace_endpoint_requires_tracing_enabled() {
    let mut handle = start_server(4);
    let mut client = Client::connect(&handle);
    let (status, body) = client.request("GET", "/v1/models/demo/trace", None);
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("tracing"), "{body}");
    let (status, _) = client.request("GET", "/v1/models/demo/profile", None);
    assert_eq!(status, 200, "profile is always on");
    handle.shutdown();
}

#[test]
fn remote_shutdown_drains_cleanly() {
    let mut handle = start_server(4);
    let mut client = Client::connect(&handle);
    let (status, body) = client.request("POST", "/v1/shutdown", None);
    assert_eq!(status, 200, "{body}");
    assert!(handle.is_shutting_down());
    handle.shutdown();

    // And a server without the opt-in refuses.
    let registry = Arc::new(ModelRegistry::new(BatcherConfig::default(), Arc::new(Metrics::new())));
    let (bundle, opts) = demo_deployment(DemoSize::Tiny, 1);
    registry.insert_bundle("demo", &bundle, opts);
    let mut handle = serve(ServerConfig::default(), registry).expect("bind");
    let mut client = Client::connect(&handle);
    let (status, _) = client.request("POST", "/v1/shutdown", None);
    assert_eq!(status, 403, "disabled endpoint is forbidden, not method-not-allowed");
    handle.shutdown();
}
