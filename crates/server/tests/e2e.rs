//! End-to-end tests: a real server on a real loopback socket, driven by a
//! hand-rolled HTTP client, checked bit-for-bit against direct engine
//! execution.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use wp_server::batcher::BatcherConfig;
use wp_server::demo::{demo_deployment, DemoSize};
use wp_server::metrics::Metrics;
use wp_server::protocol::{InferRequest, InferResponse};
use wp_server::registry::ModelRegistry;
use wp_server::server::{serve, ServerConfig, ServerHandle};
use wp_server::MetricsSnapshot;

/// A minimal blocking HTTP client for the tests.
struct Client {
    stream: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Self {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        Self { stream: BufReader::new(stream) }
    }

    /// Sends one request, returns `(status, body)`.
    fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
        let body = body.unwrap_or("");
        write!(
            self.stream.get_mut(),
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("write request");
        self.stream.get_mut().flush().unwrap();

        let mut line = String::new();
        self.stream.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.stream.read_line(&mut header).expect("header line");
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((k, v)) = header.split_once(':') {
                if k.eq_ignore_ascii_case("content-length") {
                    content_length = v.trim().parse().expect("content-length");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.stream.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).expect("utf-8 body"))
    }
}

fn start_server(max_batch: usize) -> ServerHandle {
    let batcher =
        BatcherConfig { max_batch, max_wait: Duration::from_millis(2), ..BatcherConfig::default() };
    let registry = Arc::new(ModelRegistry::new(batcher, Arc::new(Metrics::new())));
    let (bundle, opts) = demo_deployment(DemoSize::Tiny, 3);
    registry.insert_bundle("demo", &bundle, opts);
    serve(ServerConfig { allow_remote_shutdown: true, ..ServerConfig::default() }, registry)
        .expect("bind")
}

#[test]
fn healthz_models_and_metrics_respond() {
    let mut handle = start_server(8);
    let mut client = Client::connect(&handle);

    let (status, body) = client.request("GET", "/healthz", None);
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\"") && body.contains("demo"), "{body}");

    let (status, body) = client.request("GET", "/v1/models", None);
    assert_eq!(status, 200);
    assert!(body.contains("\"demo\"") && body.contains("\"input_len\":288"), "{body}");

    let (status, body) = client.request("GET", "/metrics", None);
    assert_eq!(status, 200);
    let snap: MetricsSnapshot = serde_json::from_str(&body).expect("metrics json");
    assert!(snap.http_requests >= 2, "own requests counted: {snap:?}");

    handle.shutdown();
}

#[test]
fn infer_is_bit_identical_to_direct_execution_under_concurrency() {
    let mut handle = start_server(8);
    let net = handle.registry().get("demo").unwrap().net();
    let inputs = net.fabricate_inputs(32, 1234);
    let expected: Vec<Vec<i32>> = inputs.iter().map(|x| net.run_one(x)).collect();

    // 16 concurrent keep-alive connections, two requests each.
    let outputs: Vec<Vec<i32>> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .chunks(2)
            .map(|pair| {
                let handle = &handle;
                scope.spawn(move || {
                    let mut client = Client::connect(handle);
                    let mut outs = Vec::new();
                    for input in pair {
                        let req = InferRequest {
                            model: Some("demo".into()),
                            inputs: vec![input.clone()],
                        };
                        let (status, body) = client.request(
                            "POST",
                            "/v1/infer",
                            Some(&serde_json::to_string(&req).unwrap()),
                        );
                        assert_eq!(status, 200, "{body}");
                        let resp: InferResponse = serde_json::from_str(&body).unwrap();
                        assert_eq!(resp.model, "demo");
                        outs.extend(resp.outputs);
                    }
                    outs
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(outputs, expected, "served responses must equal direct engine outputs");

    // The micro-batcher must actually have coalesced something: with 16
    // concurrent connections and max_batch 8, fewer batches than planes.
    let snap = handle.registry().metrics().snapshot();
    assert_eq!(snap.inferences, 32);
    assert!(snap.batches <= snap.inferences, "{snap:?}");
    handle.shutdown();
}

/// The stem-heavy demo (direct convs + depthwise + dense, no pooled
/// convs) served over real sockets: coalesced responses must be
/// bit-identical to direct execution — this is the end-to-end pin on the
/// weight-stationary batched direct/depthwise/dense kernels.
#[test]
fn stem_heavy_model_serves_bit_identically_under_concurrency() {
    let batcher = BatcherConfig {
        max_batch: 8,
        max_wait: Duration::from_millis(2),
        ..BatcherConfig::default()
    };
    let registry = Arc::new(ModelRegistry::new(batcher, Arc::new(Metrics::new())));
    let (bundle, opts) = demo_deployment(DemoSize::Stem, 3);
    registry.insert_bundle("demo-stem", &bundle, opts);
    let mut handle =
        serve(ServerConfig { allow_remote_shutdown: true, ..ServerConfig::default() }, registry)
            .expect("bind");

    let net = handle.registry().get("demo-stem").unwrap().net();
    let inputs = net.fabricate_inputs(12, 555);
    let expected: Vec<Vec<i32>> = inputs.iter().map(|x| net.run_one(x)).collect();

    let outputs: Vec<Vec<i32>> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .chunks(2)
            .map(|pair| {
                let handle = &handle;
                scope.spawn(move || {
                    let mut client = Client::connect(handle);
                    let mut outs = Vec::new();
                    for input in pair {
                        let req = InferRequest {
                            model: Some("demo-stem".into()),
                            inputs: vec![input.clone()],
                        };
                        let (status, body) = client.request(
                            "POST",
                            "/v1/infer",
                            Some(&serde_json::to_string(&req).unwrap()),
                        );
                        assert_eq!(status, 200, "{body}");
                        let resp: InferResponse = serde_json::from_str(&body).unwrap();
                        assert_eq!(resp.model, "demo-stem");
                        outs.extend(resp.outputs);
                    }
                    outs
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(outputs, expected, "stem-heavy batched serving must equal direct execution");
    handle.shutdown();
}

#[test]
fn multi_plane_requests_and_default_model() {
    let mut handle = start_server(4);
    let net = handle.registry().get("demo").unwrap().net();
    let inputs = net.fabricate_inputs(3, 9);
    let expected: Vec<Vec<i32>> = inputs.iter().map(|x| net.run_one(x)).collect();

    // No model name: the lone registered model serves it. Three planes in
    // one request come back in order.
    let req = InferRequest { model: None, inputs: inputs.clone() };
    let mut client = Client::connect(&handle);
    let (status, body) =
        client.request("POST", "/v1/infer", Some(&serde_json::to_string(&req).unwrap()));
    assert_eq!(status, 200, "{body}");
    let resp: InferResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(resp.outputs, expected);
    handle.shutdown();
}

#[test]
fn error_paths_speak_json() {
    let mut handle = start_server(4);
    let mut client = Client::connect(&handle);

    let (status, body) = client.request("GET", "/nope", None);
    assert_eq!(status, 404);
    assert!(body.contains("error"), "{body}");

    let (status, body) = client.request("POST", "/v1/infer", Some("{ not json"));
    assert_eq!(status, 400);
    assert!(body.contains("error"), "{body}");

    let (status, body) = client.request("POST", "/v1/infer", Some("{\"inputs\":[]}"));
    assert_eq!(status, 400);
    assert!(body.contains("empty"), "{body}");

    let (status, body) =
        client.request("POST", "/v1/infer", Some("{\"model\":\"ghost\",\"inputs\":[[1,2,3]]}"));
    assert_eq!(status, 404);
    assert!(body.contains("ghost"), "{body}");

    let (status, body) = client.request("POST", "/v1/infer", Some("{\"inputs\":[[1,2,3]]}"));
    assert_eq!(status, 400, "wrong input size: {body}");
    assert!(body.contains("288"), "mentions expected size: {body}");

    let (status, _) = client.request("POST", "/v1/models/ghost/reload", None);
    assert_eq!(status, 404);

    let (status, _) = client.request("POST", "/v1/models/demo/reload", None);
    assert_eq!(status, 409, "in-memory model is not file-backed");

    handle.shutdown();
}

#[test]
fn file_backed_reload_over_http() {
    let dir = std::env::temp_dir().join("wp_e2e_reload");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    let (bundle, opts) = demo_deployment(DemoSize::Tiny, 21);
    bundle.save(&path).unwrap();

    let registry = Arc::new(ModelRegistry::new(
        BatcherConfig { max_batch: 4, ..BatcherConfig::default() },
        Arc::new(Metrics::new()),
    ));
    registry.insert_file("m", &path, opts).unwrap();
    let mut handle = serve(ServerConfig::default(), Arc::clone(&registry)).expect("bind");

    let net = registry.get("m").unwrap().net();
    let input = net.fabricate_inputs(1, 2).pop().unwrap();
    let req =
        serde_json::to_string(&InferRequest { model: None, inputs: vec![input.clone()] }).unwrap();

    let mut client = Client::connect(&handle);
    let (status, before) = client.request("POST", "/v1/infer", Some(&req));
    assert_eq!(status, 200);

    // Swap the file, reload over HTTP, observe different outputs.
    demo_deployment(DemoSize::Tiny, 22).0.save(&path).unwrap();
    let (status, body) = client.request("POST", "/v1/models/m/reload", None);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"reloads\":1"), "{body}");
    let (status, after) = client.request("POST", "/v1/infer", Some(&req));
    assert_eq!(status, 200);
    assert_ne!(before, after, "hot swap must change responses");

    std::fs::remove_file(&path).ok();
    handle.shutdown();
}

#[test]
fn file_backed_reload_over_http_accepts_wpb() {
    // Same hot-swap flow as the JSON test, but the bundle on disk is the
    // entropy-coded binary format.
    let dir = std::env::temp_dir().join("wp_e2e_reload_wpb");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.wpb");
    let (bundle, opts) = demo_deployment(DemoSize::Tiny, 31);
    bundle.save(&path).unwrap();
    assert!(std::fs::read(&path).unwrap().starts_with(b"WPB1"), "must be binary on disk");

    let registry = Arc::new(ModelRegistry::new(
        BatcherConfig { max_batch: 4, ..BatcherConfig::default() },
        Arc::new(Metrics::new()),
    ));
    registry.insert_file("m", &path, opts).unwrap();
    let mut handle = serve(ServerConfig::default(), Arc::clone(&registry)).expect("bind");

    let net = registry.get("m").unwrap().net();
    let input = net.fabricate_inputs(1, 6).pop().unwrap();
    let req =
        serde_json::to_string(&InferRequest { model: None, inputs: vec![input.clone()] }).unwrap();

    let mut client = Client::connect(&handle);
    let (status, before) = client.request("POST", "/v1/infer", Some(&req));
    assert_eq!(status, 200);

    demo_deployment(DemoSize::Tiny, 32).0.save(&path).unwrap();
    let (status, body) = client.request("POST", "/v1/models/m/reload", None);
    assert_eq!(status, 200, "{body}");
    let (status, after) = client.request("POST", "/v1/infer", Some(&req));
    assert_eq!(status, 200);
    assert_ne!(before, after, "wpb hot swap must change responses");

    std::fs::remove_file(&path).ok();
    handle.shutdown();
}

/// Sends raw (possibly broken) bytes, optionally half-closing the write
/// side, and returns the response status line — or `None` if the server
/// closed (or reset) the connection without one. A read timeout bounds
/// the wait, so a hanging server fails the test instead of wedging it.
fn raw_request(handle: &ServerHandle, bytes: &[u8], shutdown_write: bool) -> Option<String> {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // The server may reject and close mid-write (e.g. an oversized head);
    // a failed tail write is part of the scenario, not a test error.
    let _ = stream.write_all(bytes);
    let _ = stream.flush();
    if shutdown_write {
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => response.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                panic!("server hung: no response within the client timeout")
            }
            // A reset after the server closed with our bytes still
            // unread; keep whatever arrived before it.
            Err(_) => break,
        }
    }
    if response.is_empty() {
        return None;
    }
    let text = String::from_utf8_lossy(&response);
    Some(text.lines().next().unwrap_or_default().to_string())
}

#[test]
fn malformed_requests_get_4xx_not_hangs() {
    let mut handle = start_server(4);

    // Oversized Content-Length: rejected up front with 413, body unread.
    let status = raw_request(
        &handle,
        format!("POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1_usize << 40).as_bytes(),
        false,
    );
    assert_eq!(status.as_deref(), Some("HTTP/1.1 413 Payload Too Large"));

    // Bad Content-Length value: 400.
    let status =
        raw_request(&handle, b"POST /v1/infer HTTP/1.1\r\nContent-Length: banana\r\n\r\n", false);
    assert_eq!(status.as_deref(), Some("HTTP/1.1 400 Bad Request"));

    // Missing header terminator: the head just stops mid-headers and the
    // peer half-closes. The server must answer 400, not block on more
    // bytes that never come.
    let status = raw_request(&handle, b"POST /v1/infer HTTP/1.1\r\nHost: x", true);
    assert_eq!(status.as_deref(), Some("HTTP/1.1 400 Bad Request"));

    // Garbage method: parses as an unknown method and routes to 404.
    let status =
        raw_request(&handle, b"%%GARBAGE%% /v1/infer HTTP/1.1\r\nConnection: close\r\n\r\n", false);
    assert_eq!(status.as_deref(), Some("HTTP/1.1 404 Not Found"));

    // Non-UTF-8 binary noise in the request line: 400. (Half-close after
    // the line so no unread bytes linger to race the response with RST.)
    let status = raw_request(&handle, b"\xFF\xFE\x00\x01 / HTTP/1.1\r\n", true);
    assert_eq!(status.as_deref(), Some("HTTP/1.1 400 Bad Request"));

    // Unsupported HTTP version: 400.
    let status = raw_request(&handle, b"GET / HTTP/2\r\n", true);
    assert_eq!(status.as_deref(), Some("HTTP/1.1 400 Bad Request"));

    // An oversized head (endless header line) is cut off at the limit
    // and answered 413 — though the answer can be lost to a TCP reset
    // when the server closes with our surplus bytes unread, so a silent
    // close is also acceptable. Either way: no hang.
    let mut huge = Vec::from(&b"GET / HTTP/1.1\r\nX-Pad: "[..]);
    huge.extend(std::iter::repeat_n(b'a', 64 * 1024));
    huge.extend_from_slice(b"\r\n\r\n");
    let status = raw_request(&handle, &huge, false);
    assert!(
        status.is_none() || status.as_deref() == Some("HTTP/1.1 413 Payload Too Large"),
        "unexpected response to oversized head: {status:?}"
    );

    // The server is still healthy afterwards.
    let mut client = Client::connect(&handle);
    let (status, _) = client.request("GET", "/healthz", None);
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn remote_shutdown_drains_cleanly() {
    let mut handle = start_server(4);
    let mut client = Client::connect(&handle);
    let (status, body) = client.request("POST", "/v1/shutdown", None);
    assert_eq!(status, 200, "{body}");
    assert!(handle.is_shutting_down());
    handle.shutdown();

    // And a server without the opt-in refuses.
    let registry = Arc::new(ModelRegistry::new(BatcherConfig::default(), Arc::new(Metrics::new())));
    let (bundle, opts) = demo_deployment(DemoSize::Tiny, 1);
    registry.insert_bundle("demo", &bundle, opts);
    let mut handle = serve(ServerConfig::default(), registry).expect("bind");
    let mut client = Client::connect(&handle);
    let (status, _) = client.request("POST", "/v1/shutdown", None);
    assert_eq!(status, 403, "disabled endpoint is forbidden, not method-not-allowed");
    handle.shutdown();
}
