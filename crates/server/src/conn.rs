//! Per-connection state for the event-driven front: a generation-checked
//! slab keyed by token, a hashed deadline wheel, and partial-write-aware
//! output buffers.
//!
//! Everything here is plain data-structure code with no epoll (or even
//! socket) dependency, so it unit-tests on any platform; `event.rs` wires
//! it to readiness events on Linux.

use crate::http::RequestParser;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Tokens and the slab
// ---------------------------------------------------------------------------

/// A slab key carried through the event loop as epoll user data: slot
/// index in the low 32 bits, slot generation in the high 32. The
/// generation makes stale events harmless — when a slot is reused after a
/// close, events queued for the old connection no longer resolve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub u64);

impl Token {
    fn new(index: u32, generation: u32) -> Self {
        Token(u64::from(generation) << 32 | u64::from(index))
    }

    fn index(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

enum Slot<T> {
    /// Free slot; remembers the generation the *next* occupant gets and
    /// the next free slot in the free list.
    Vacant {
        generation: u32,
        next_free: Option<u32>,
    },
    Occupied {
        generation: u32,
        value: T,
    },
}

/// A slab of connections addressed by generation-checked [`Token`]s.
/// Lookups with a token from a previous occupancy of the slot return
/// `None` instead of aliasing the new connection.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free_head: Option<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Self { slots: Vec::new(), free_head: None, len: 0 }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value, reusing a freed slot when one exists.
    pub fn insert(&mut self, value: T) -> Token {
        self.len += 1;
        if let Some(index) = self.free_head {
            let slot = &mut self.slots[index as usize];
            let Slot::Vacant { generation, next_free } = *slot else {
                unreachable!("free list points at an occupied slot");
            };
            self.free_head = next_free;
            *slot = Slot::Occupied { generation, value };
            return Token::new(index, generation);
        }
        let index = u32::try_from(self.slots.len()).expect("slab over u32::MAX slots");
        self.slots.push(Slot::Occupied { generation: 0, value });
        Token::new(index, 0)
    }

    /// The value for a live token, or `None` when the token is stale or
    /// out of range.
    pub fn get(&self, token: Token) -> Option<&T> {
        match self.slots.get(token.index()) {
            Some(Slot::Occupied { generation, value }) if *generation == token.generation() => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Mutable access for a live token.
    pub fn get_mut(&mut self, token: Token) -> Option<&mut T> {
        match self.slots.get_mut(token.index()) {
            Some(Slot::Occupied { generation, value }) if *generation == token.generation() => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Removes and returns a live entry, bumping the slot's generation so
    /// the token (and any queued events carrying it) goes stale.
    pub fn remove(&mut self, token: Token) -> Option<T> {
        let slot = self.slots.get_mut(token.index())?;
        match slot {
            Slot::Occupied { generation, .. } if *generation == token.generation() => {
                let next_generation = generation.wrapping_add(1);
                let old = std::mem::replace(
                    slot,
                    Slot::Vacant { generation: next_generation, next_free: self.free_head },
                );
                self.free_head = Some(token.index() as u32);
                self.len -= 1;
                match old {
                    Slot::Occupied { value, .. } => Some(value),
                    Slot::Vacant { .. } => unreachable!("matched occupied above"),
                }
            }
            _ => None,
        }
    }

    /// Tokens of every live entry (used for drain-at-shutdown).
    pub fn tokens(&self) -> Vec<Token> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Occupied { generation, .. } => Some(Token::new(i as u32, *generation)),
                Slot::Vacant { .. } => None,
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Deadline wheel
// ---------------------------------------------------------------------------

/// A hashed timer wheel over connection deadlines.
///
/// Deadlines are bucketed by coarse tick; [`DeadlineWheel::expired`]
/// returns candidates whose bucket has passed. Entries are **lazy**: the
/// wheel never removes or re-files a token when its connection's deadline
/// moves or the connection closes — the caller re-checks the authoritative
/// deadline on the connection itself and simply reinserts still-live,
/// not-yet-due tokens. Stale tokens fall out naturally because the slab
/// lookup fails. This keeps insert/expire O(1) amortized with zero
/// bookkeeping on the (hot) request path.
pub struct DeadlineWheel {
    slots: Vec<Vec<Token>>,
    tick: Duration,
    /// Wheel time origin; slot of instant `t` = (t - origin)/tick % N.
    origin: Instant,
    /// Next tick index to drain (absolute, not wrapped).
    cursor: u64,
}

impl DeadlineWheel {
    /// A wheel of `slots` buckets of width `tick`, starting at `now`.
    pub fn new(slots: usize, tick: Duration, now: Instant) -> Self {
        assert!(slots >= 2 && !tick.is_zero());
        Self { slots: vec![Vec::new(); slots], tick, origin: now, cursor: 0 }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.origin);
        // Integer division truncates, so a deadline lands in the bucket
        // whose drain happens at-or-after it.
        (elapsed.as_nanos() / self.tick.as_nanos()).min(u128::from(u64::MAX)) as u64
    }

    /// Files a token to surface once `deadline` has passed. Deadlines
    /// already in a drained bucket surface on the next `expired` call.
    pub fn insert(&mut self, token: Token, deadline: Instant) {
        let tick = self.tick_of(deadline).max(self.cursor);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(token);
    }

    /// Drains every bucket up to `now`, returning the candidate tokens.
    /// Callers must verify each candidate's real deadline (and liveness)
    /// and reinsert the ones that are not actually due.
    pub fn expired(&mut self, now: Instant) -> Vec<Token> {
        let mut due = Vec::new();
        let target = self.tick_of(now);
        // Cap one sweep at a full revolution: older buckets would be
        // revisited anyway (they alias the same slots).
        let sweep_end = target.min(self.cursor + self.slots.len() as u64 - 1);
        while self.cursor <= sweep_end {
            let slot = (self.cursor % self.slots.len() as u64) as usize;
            due.append(&mut self.slots[slot]);
            self.cursor += 1;
        }
        self.cursor = self.cursor.max(target);
        due
    }
}

// ---------------------------------------------------------------------------
// Write buffer
// ---------------------------------------------------------------------------

/// Queued response bytes for one connection, drained opportunistically
/// and on `EPOLLOUT`. Tracks a head offset so a partial nonblocking write
/// resumes exactly where the kernel stopped.
#[derive(Default)]
pub struct WriteBuf {
    queue: VecDeque<Vec<u8>>,
    /// Bytes of `queue[0]` already written.
    head: usize,
    len: usize,
}

impl WriteBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues one pre-rendered response (or response fragment).
    pub fn push(&mut self, bytes: Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        self.len += bytes.len();
        self.queue.push_back(bytes);
    }

    /// Unwritten bytes remaining.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes as much as the sink will take. Stops (without error) on
    /// `WouldBlock`, retries `Interrupted`, and propagates anything else.
    /// Returns the bytes written this call.
    ///
    /// # Errors
    ///
    /// Any sink error other than `WouldBlock`/`Interrupted`.
    pub fn write_to(&mut self, sink: &mut impl Write) -> io::Result<usize> {
        let mut written = 0;
        while let Some(front) = self.queue.front() {
            match sink.write(&front[self.head..]) {
                Ok(0) => {
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "sink accepted 0 bytes"));
                }
                Ok(n) => {
                    written += n;
                    self.len -= n;
                    self.head += n;
                    if self.head == front.len() {
                        self.queue.pop_front();
                        self.head = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(written)
    }
}

// ---------------------------------------------------------------------------
// Connection state
// ---------------------------------------------------------------------------

/// Which deadline currently governs a connection; reported in metrics and
/// decides the close behavior when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlinePhase {
    /// Keep-alive, nothing buffered: fire → close silently.
    Idle,
    /// Mid-request (partial head or body): fire → respond 408, close.
    Read,
    /// Unflushed response bytes, peer not draining: fire → close.
    Write,
}

/// Everything the event loop tracks per connection. The socket stays in
/// nonblocking mode for its whole life; all progress is made from
/// readiness events and completion callbacks.
pub struct Connection {
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// Incremental request parser (owns buffered pipelined bytes).
    pub parser: RequestParser,
    /// Pending response bytes.
    pub out: WriteBuf,
    /// When the current [`DeadlinePhase`] expires.
    pub deadline: Instant,
    /// Which timeout `deadline` represents.
    pub phase: DeadlinePhase,
    /// Where this connection's wheel entry currently sits. The wheel
    /// holds exactly one entry per connection (inserted at accept,
    /// reinserted on fire); when a rearm moves `deadline` *earlier* than
    /// this, the event loop files an extra entry so the new deadline is
    /// honored promptly, and tracks it here.
    pub wheel_at: Instant,
    /// Close once `out` drains (sent `Connection: close`, or a 4xx/timeout
    /// response that must be the connection's last).
    pub close_after_flush: bool,
    /// A request from this connection is inside the batcher; its
    /// completion callback re-enters via the completion queue. While set,
    /// buffered pipelined requests are *not* parsed, which guarantees
    /// in-order responses.
    pub inflight: bool,
    /// Whether `EPOLLOUT` is currently part of the registered interest
    /// set (toggled only when it changes — `epoll_ctl` per transition,
    /// not per event).
    pub interest_out: bool,
    /// Peer closed its read side or the socket errored; reap once any
    /// queued response drains or immediately when `out` is empty.
    pub peer_closed: bool,
}

impl Connection {
    /// Wraps a freshly accepted socket, starting in the idle phase.
    pub fn new(stream: TcpStream, now: Instant, idle_timeout: Duration) -> Self {
        Self {
            stream,
            parser: RequestParser::new(),
            out: WriteBuf::new(),
            deadline: now + idle_timeout,
            phase: DeadlinePhase::Idle,
            wheel_at: now + idle_timeout,
            close_after_flush: false,
            inflight: false,
            interest_out: false,
            peer_closed: false,
        }
    }

    /// Recomputes the governing deadline after progress was made.
    /// Priority: unflushed output → write deadline; partial request →
    /// read deadline; otherwise idle. An inflight request holds the idle
    /// deadline (the server, not the peer, is the reason we're waiting —
    /// don't 408 a well-behaved client mid-inference).
    ///
    /// The deadline is **anchored at phase entry**, not refreshed per
    /// call: a slowloris client trickling one byte a second makes the
    /// parser "progress" every second, but its read deadline keeps
    /// counting from the first byte of the request. The one refresh
    /// signal is `wrote`: response bytes reaching the peer are proof of
    /// life — they extend a draining peer's write deadline and re-anchor
    /// the idle deadline of a keep-alive connection that just got its
    /// answer. A stalled or trickling peer never produces it.
    pub fn rearm_deadline(&mut self, now: Instant, timeouts: &Timeouts, wrote: bool) {
        let (phase, dur) = if !self.out.is_empty() {
            (DeadlinePhase::Write, timeouts.write)
        } else if self.inflight {
            (DeadlinePhase::Idle, timeouts.idle)
        } else if self.parser.mid_request() {
            (DeadlinePhase::Read, timeouts.read)
        } else {
            (DeadlinePhase::Idle, timeouts.idle)
        };
        if phase != self.phase || wrote {
            self.phase = phase;
            self.deadline = now + dur;
        }
    }
}

/// The three per-connection timeout knobs, bundled for rearming.
#[derive(Debug, Clone, Copy)]
pub struct Timeouts {
    /// Keep-alive idle limit (silent close).
    pub idle: Duration,
    /// Mid-request limit — slowloris bound (408 then close).
    pub read: Duration,
    /// Unflushed-output limit — dead-peer bound (close).
    pub write: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_insert_get_remove_roundtrip() {
        let mut slab: Slab<&str> = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn slab_stale_token_does_not_alias_reused_slot() {
        let mut slab: Slab<u32> = Slab::new();
        let first = slab.insert(1);
        slab.remove(first);
        let second = slab.insert(2);
        // Slot reused, generation bumped.
        assert_eq!(first.index(), second.index());
        assert_ne!(first.generation(), second.generation());
        assert_eq!(slab.get(first), None, "stale token must miss");
        assert_eq!(slab.remove(first), None, "stale remove must be a no-op");
        assert_eq!(slab.get(second), Some(&2));
    }

    #[test]
    fn slab_reuses_freed_slots_and_lists_tokens() {
        let mut slab: Slab<u32> = Slab::new();
        let tokens: Vec<_> = (0..8).map(|i| slab.insert(i)).collect();
        for t in &tokens[2..5] {
            slab.remove(*t);
        }
        for i in 0..3 {
            slab.insert(100 + i);
        }
        assert_eq!(slab.slots.len(), 8, "freed slots must be reused, not appended");
        assert_eq!(slab.tokens().len(), 8);
    }

    #[test]
    fn wheel_fires_due_tokens_once() {
        let now = Instant::now();
        let mut wheel = DeadlineWheel::new(16, Duration::from_millis(100), now);
        let t1 = Token(1);
        let t2 = Token(2);
        wheel.insert(t1, now + Duration::from_millis(250));
        wheel.insert(t2, now + Duration::from_millis(950));
        assert!(wheel.expired(now + Duration::from_millis(100)).is_empty());
        let due = wheel.expired(now + Duration::from_millis(400));
        assert_eq!(due, vec![t1]);
        assert!(wheel.expired(now + Duration::from_millis(500)).is_empty(), "fires once");
        let due = wheel.expired(now + Duration::from_secs(2));
        assert_eq!(due, vec![t2]);
    }

    #[test]
    fn wheel_far_deadline_wraps_and_still_fires() {
        let now = Instant::now();
        let mut wheel = DeadlineWheel::new(4, Duration::from_millis(10), now);
        // 25 ticks out — wraps the 4-slot wheel several times. It may
        // surface early on intermediate sweeps (lazy semantics allow
        // that; callers reinsert), but after the deadline has truly
        // passed it must have surfaced at least once.
        let t = Token(7);
        wheel.insert(t, now + Duration::from_millis(250));
        let mut seen = false;
        for ms in (0..=300).step_by(10) {
            for fired in wheel.expired(now + Duration::from_millis(ms)) {
                seen = true;
                assert_eq!(fired, t);
            }
        }
        assert!(seen, "wrapped deadline must surface");
    }

    #[test]
    fn wheel_past_deadline_fires_on_next_sweep() {
        let now = Instant::now();
        let mut wheel = DeadlineWheel::new(8, Duration::from_millis(100), now);
        wheel.expired(now + Duration::from_secs(1)); // advance the cursor
        let t = Token(3);
        wheel.insert(t, now); // already past
        assert_eq!(wheel.expired(now + Duration::from_millis(1100)), vec![t]);
    }

    /// A sink that accepts a fixed number of bytes per call, then
    /// `WouldBlock`s — the nonblocking-socket shape.
    struct Throttled {
        accepted: Vec<u8>,
        per_call: usize,
        calls_left: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.calls_left == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            self.calls_left -= 1;
            let n = buf.len().min(self.per_call);
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_buf_resumes_partial_writes_across_calls() {
        let mut buf = WriteBuf::new();
        buf.push(b"hello ".to_vec());
        buf.push(b"event ".to_vec());
        buf.push(b"world".to_vec());
        assert_eq!(buf.len(), 17);

        let mut sink = Throttled { accepted: Vec::new(), per_call: 4, calls_left: 2 };
        let n = buf.write_to(&mut sink).unwrap();
        // Writes go chunk-at-a-time: 4 bytes of "hello ", then its
        // 2-byte tail, then WouldBlock.
        assert_eq!(n, 6, "head chunk drained across two throttled calls");
        assert!(!buf.is_empty());

        sink.calls_left = 100;
        let n = buf.write_to(&mut sink).unwrap();
        assert_eq!(n, 11);
        assert!(buf.is_empty());
        assert_eq!(sink.accepted, b"hello event world");
    }

    #[test]
    fn rearm_priority_write_over_read_over_idle() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let now = Instant::now();
        let timeouts = Timeouts {
            idle: Duration::from_secs(60),
            read: Duration::from_secs(5),
            write: Duration::from_secs(10),
        };
        let mut conn = Connection::new(stream, now, timeouts.idle);
        assert_eq!(conn.phase, DeadlinePhase::Idle);

        conn.parser.feed(b"GET / HT"); // partial head → read phase
        conn.rearm_deadline(now, &timeouts, false);
        assert_eq!(conn.phase, DeadlinePhase::Read);
        assert_eq!(conn.deadline, now + timeouts.read);

        // Anchored, not refreshed: more trickled bytes later must NOT
        // push the read deadline out (the slowloris defense).
        conn.parser.feed(b"TP/1.1\r\nHost:");
        let later = now + Duration::from_secs(1);
        conn.rearm_deadline(later, &timeouts, false);
        assert_eq!(conn.phase, DeadlinePhase::Read);
        assert_eq!(conn.deadline, now + timeouts.read, "trickling must not extend the deadline");

        conn.out.push(b"partial response".to_vec()); // output pending → write phase
        conn.rearm_deadline(now, &timeouts, false);
        assert_eq!(conn.phase, DeadlinePhase::Write);
        assert_eq!(conn.deadline, now + timeouts.write);

        // Write progress is proof of life: it refreshes the deadline.
        conn.rearm_deadline(later, &timeouts, true);
        assert_eq!(conn.deadline, later + timeouts.write);
        // No progress: anchored.
        conn.rearm_deadline(later + Duration::from_secs(2), &timeouts, false);
        assert_eq!(conn.deadline, later + timeouts.write);

        conn.out = WriteBuf::new();
        conn.inflight = true; // server is the slow party — no 408
        conn.rearm_deadline(now, &timeouts, false);
        assert_eq!(conn.phase, DeadlinePhase::Idle);
    }
}
