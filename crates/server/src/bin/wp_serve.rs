//! The inference server binary.
//!
//! ```sh
//! # Serve the built-in demo model on an ephemeral port:
//! cargo run --release --bin wp_serve -p wp_server -- --demo --port 0
//!
//! # Serve bundles from disk, two models, fixed port (JSON or binary
//! # WPB bundles — the format is sniffed from the file's magic bytes):
//! cargo run --release --bin wp_serve -p wp_server -- \
//!     --model mnist=/path/mnist.wpb --model kws=/path/kws.json --port 8080
//! ```
//!
//! Flags:
//!
//! * `--port N` / `--addr HOST:PORT` — bind address (default
//!   `127.0.0.1:8080`; port 0 picks an ephemeral port).
//! * `--model NAME=PATH` — deploy a `DeployBundle` file, JSON or `.wpb`
//!   (repeatable; `POST /v1/models/NAME/reload` re-reads it).
//! * `--demo` — deploy the fabricated scatter-heavy demo model as `demo`.
//! * `--demo-stem` — deploy the fabricated stem-heavy demo model as
//!   `demo-stem` (direct/depthwise/dense dominated; no pooled convs).
//! * `--backend KIND` — kernel tier for every deployed model: `auto`
//!   (default; runtime CPU detection, `WP_BACKEND` env override),
//!   `scalar`, `swar`, or `avx2`. The resolved tier is printed per model
//!   and reported in `/v1/models` and `/metrics`.
//! * `--max-batch N`, `--max-wait-us N` — micro-batcher flush thresholds.
//! * `--threads N` — engine worker threads per batch.
//! * `--front KIND` — connection front: `event` (default; epoll
//!   readiness loop, a few threads own every connection, Linux-only —
//!   falls back to `threaded` elsewhere) or `threaded`
//!   (thread-per-connection worker pool).
//! * `--event-threads N` — event-loop threads for the event front.
//! * `--workers N` — connection worker threads (threaded front only).
//! * `--trace-events N` — give every model an N-event trace ring;
//!   `GET /v1/models/NAME/trace` exports it as Chrome `trace_event` JSON
//!   (the always-on per-layer profile at `GET /v1/models/NAME/profile`
//!   needs no flag).
//! * `--port-file PATH` — write the bound port there (for scripts driving
//!   an ephemeral-port server).
//! * `--allow-shutdown` — honor `POST /v1/shutdown`.

use std::sync::Arc;
use std::time::Duration;
use wp_engine::{BackendKind, EngineOptions};
use wp_server::batcher::BatcherConfig;
use wp_server::demo::{demo_deployment, DemoSize};
use wp_server::metrics::Metrics;
use wp_server::registry::ModelRegistry;
use wp_server::server::{serve, FrontKind, ServerConfig};

struct Args {
    addr: String,
    models: Vec<(String, String)>,
    demo: bool,
    demo_stem: bool,
    backend: BackendKind,
    batcher: BatcherConfig,
    front: FrontKind,
    event_threads: usize,
    workers: usize,
    trace_events: usize,
    port_file: Option<String>,
    allow_shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let defaults = ServerConfig::default();
    let mut args = Args {
        addr: "127.0.0.1:8080".into(),
        models: Vec::new(),
        demo: false,
        demo_stem: false,
        backend: BackendKind::Auto,
        batcher: BatcherConfig::default(),
        front: defaults.front,
        event_threads: defaults.event_threads,
        workers: defaults.workers,
        trace_events: 0,
        port_file: None,
        allow_shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--port" => {
                let port: u16 = value("--port")?.parse().map_err(|e| format!("bad --port: {e}"))?;
                args.addr = format!("127.0.0.1:{port}");
            }
            "--model" => {
                let spec = value("--model")?;
                let (name, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--model expects NAME=PATH, got {spec:?}"))?;
                args.models.push((name.to_string(), path.to_string()));
            }
            "--demo" => args.demo = true,
            "--demo-stem" => args.demo_stem = true,
            "--backend" => {
                args.backend =
                    value("--backend")?.parse().map_err(|e| format!("bad --backend: {e}"))?;
            }
            "--max-batch" => {
                args.batcher.max_batch =
                    value("--max-batch")?.parse().map_err(|e| format!("bad --max-batch: {e}"))?;
            }
            "--max-wait-us" => {
                let us: u64 = value("--max-wait-us")?
                    .parse()
                    .map_err(|e| format!("bad --max-wait-us: {e}"))?;
                args.batcher.max_wait = Duration::from_micros(us);
            }
            "--threads" => {
                args.batcher.threads =
                    value("--threads")?.parse().map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--front" => {
                args.front = match value("--front")?.as_str() {
                    "event" => FrontKind::Event,
                    "threaded" => FrontKind::Threaded,
                    other => return Err(format!("bad --front {other:?}: event|threaded")),
                };
            }
            "--event-threads" => {
                args.event_threads = value("--event-threads")?
                    .parse()
                    .map_err(|e| format!("bad --event-threads: {e}"))?;
                if args.event_threads == 0 {
                    return Err("--event-threads must be at least 1".into());
                }
            }
            "--workers" => {
                args.workers =
                    value("--workers")?.parse().map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--trace-events" => {
                args.trace_events = value("--trace-events")?
                    .parse()
                    .map_err(|e| format!("bad --trace-events: {e}"))?;
            }
            "--port-file" => args.port_file = Some(value("--port-file")?),
            "--allow-shutdown" => args.allow_shutdown = true,
            "--help" | "-h" => {
                println!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (see --help)")),
        }
    }
    if args.models.is_empty() && !args.demo && !args.demo_stem {
        return Err("nothing to serve: pass --demo, --demo-stem or --model NAME=PATH".into());
    }
    Ok(args)
}

const HELP: &str = "wp_serve — weight-pool inference server
    --addr HOST:PORT     bind address (default 127.0.0.1:8080)
    --port N             shorthand for --addr 127.0.0.1:N (0 = ephemeral)
    --model NAME=PATH    deploy a DeployBundle file, JSON or .wpb (repeatable)
    --demo               deploy the fabricated scatter-heavy demo model as 'demo'
    --demo-stem          deploy the fabricated stem-heavy demo model as 'demo-stem'
    --backend KIND       kernel tier: auto|scalar|swar|avx2 (default auto;
                         auto honors WP_BACKEND, then CPU detection)
    --max-batch N        micro-batch flush size (default 32)
    --max-wait-us N      micro-batch flush deadline (default 2000)
    --threads N          engine worker threads per batch
    --front KIND         connection front: event|threaded (default event;
                         epoll readiness loop on Linux, falls back to
                         threaded elsewhere)
    --event-threads N    event-loop threads for the event front (default 2)
    --workers N          connection worker threads, threaded front only
                         (default 8)
    --trace-events N     per-model trace ring of N events, exported at
                         GET /v1/models/NAME/trace as Chrome trace JSON
                         (default 0 = event tracing off; the per-layer
                         profile endpoint is always on)
    --port-file PATH     write the bound port to PATH once listening
    --allow-shutdown     honor POST /v1/shutdown";

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("wp_serve: {e}");
            std::process::exit(2);
        }
    };

    let registry = Arc::new(
        ModelRegistry::new(args.batcher, Arc::new(Metrics::new()))
            .with_trace_capacity(args.trace_events),
    );
    let resolved = args.backend.resolve();
    if args.trace_events > 0 {
        println!(
            "event tracing on: {} events per model (GET /v1/models/NAME/trace)",
            args.trace_events
        );
    }
    if args.demo {
        let (bundle, opts) = demo_deployment(DemoSize::Serve, 1);
        registry.insert_bundle("demo", &bundle, opts.with_backend(args.backend));
        println!("deployed demo model 'demo' (input 8x6x6, 10 classes, backend {resolved})");
    }
    if args.demo_stem {
        let (bundle, opts) = demo_deployment(DemoSize::Stem, 1);
        registry.insert_bundle("demo-stem", &bundle, opts.with_backend(args.backend));
        println!("deployed demo model 'demo-stem' (input 8x10x10, 10 classes, backend {resolved})");
    }
    for (name, path) in &args.models {
        let opts = EngineOptions::new().with_backend(args.backend);
        if let Err(e) = registry.insert_file(name, std::path::Path::new(path), opts) {
            eprintln!("wp_serve: deploying {name:?}: {e}");
            std::process::exit(1);
        }
        println!("deployed model {name:?} from {path} (backend {resolved})");
    }

    let config = ServerConfig {
        addr: args.addr,
        front: args.front,
        event_threads: args.event_threads,
        workers: args.workers,
        allow_remote_shutdown: args.allow_shutdown,
        ..ServerConfig::default()
    };
    let mut handle = match serve(config, Arc::clone(&registry)) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("wp_serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = &args.port_file {
        if let Err(e) = std::fs::write(path, handle.addr().port().to_string()) {
            eprintln!("wp_serve: writing port file {path}: {e}");
        }
    }
    let front_desc = match args.front {
        FrontKind::Event => format!("event front, {} loop threads", args.event_threads),
        FrontKind::Threaded => format!("threaded front, {} workers", args.workers),
    };
    println!(
        "wp_serve listening on http://{} ({front_desc}; batch<={}, wait<={:?})",
        handle.addr(),
        args.batcher.max_batch,
        args.batcher.max_wait
    );

    // Serve until a remote shutdown (if enabled) flips the flag.
    while !handle.is_shutting_down() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("wp_serve: shutdown requested, draining");
    handle.shutdown();
    println!("wp_serve: bye");
}
