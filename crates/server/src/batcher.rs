//! The dynamic micro-batcher: coalesces concurrent inference requests
//! into batches for the native engine.
//!
//! Connection threads [`Batcher::submit`] one activation plane each and
//! block until their result is ready; the event-driven front instead
//! uses [`Batcher::submit_callback`], which never blocks and delivers
//! the result to a completion callback. A dedicated flusher thread drains
//! the queue into batches, flushing as soon as **either** `max_batch`
//! planes are waiting **or** the oldest plane has waited `max_wait`
//! (whichever comes first — a solo request on an idle server pays at most
//! `max_wait`, a busy server packs full batches back to back). Each batch
//! executes through [`wp_engine::BatchRunner::run_refs`], whose batched
//! kernels are bit-identical to solo execution, so coalescing never
//! changes a response.
//!
//! The prepared network lives behind an [`RwLock`]'d [`Arc`] slot; the
//! flusher clones the `Arc` per batch, which is what makes registry
//! hot-swaps atomic: every batch runs entirely on one plan, and in-flight
//! batches finish on the plan they started with.

use crate::metrics::ModelMetrics;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};
use wp_engine::trace::{self, SpanKind, TraceEvent};
use wp_engine::{BatchRunner, PreparedNet};

/// A hot-swappable handle to the currently-deployed plan.
pub type ModelSlot = RwLock<Arc<PreparedNet>>;

/// Tuning knobs for one model's micro-batcher.
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// Flush as soon as this many planes are queued.
    pub max_batch: usize,
    /// Flush once the oldest queued plane has waited this long.
    pub max_wait: Duration,
    /// Worker threads for batch execution (see
    /// [`wp_engine::BatchRunner`]); defaults to available parallelism.
    pub threads: usize,
    /// Hard cap on queued planes; submits beyond it are rejected with
    /// [`InferError::Overloaded`] instead of growing the queue without
    /// bound.
    pub max_queue: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            max_queue: 4096,
        }
    }
}

/// Why a submitted plane was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferError {
    /// The plane's length does not match the model input.
    BadInput(String),
    /// The queue is at `max_queue`.
    Overloaded,
    /// The batcher is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for InferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferError::BadInput(m) => write!(f, "bad input: {m}"),
            InferError::Overloaded => write!(f, "queue full, try again later"),
            InferError::ShuttingDown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for InferError {}

/// How a served (or failed) plane's result reaches its submitter.
enum Responder {
    /// A blocking waiter holds the [`Ticket`] end of this channel
    /// (thread-per-connection front, tests, CLI).
    Channel(mpsc::Sender<Result<Vec<i32>, InferError>>),
    /// The event-driven front: invoked on the flusher thread right after
    /// the batch executes (or synchronously at submit time on a
    /// validation/overload failure). Must be cheap and must not block —
    /// the intended use hands the result to an event thread's completion
    /// queue and wakes its eventfd.
    Callback(Box<dyn FnOnce(Result<Vec<i32>, InferError>) + Send>),
}

impl Responder {
    fn respond(self, result: Result<Vec<i32>, InferError>) {
        match self {
            // A dropped ticket (client gone) is fine to ignore.
            Responder::Channel(tx) => {
                let _ = tx.send(result);
            }
            Responder::Callback(f) => f(result),
        }
    }
}

/// One queued plane and the responder its result goes back through.
struct Pending {
    input: Vec<i32>,
    enqueued: Instant,
    /// Request trace id ([`trace::span_id_from`] of the HTTP
    /// `X-Request-Id`); 0 for untraced submissions.
    span_id: u64,
    responder: Responder,
}

/// Queue state behind the mutex.
struct QueueState {
    pending: VecDeque<Pending>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signals the flusher that work arrived or shutdown was requested.
    wake_flusher: Condvar,
}

/// A refused submission: the error plus the responder handed back
/// un-invoked (nothing was enqueued), so the submit path controls
/// whether the failure is returned or called back.
struct SubmitRejected {
    error: InferError,
    responder: Responder,
}

/// A ticket for a submitted plane; redeem with [`Ticket::wait`].
pub struct Ticket {
    rx: mpsc::Receiver<Result<Vec<i32>, InferError>>,
}

impl Ticket {
    /// Blocks until the plane's batch has executed.
    ///
    /// # Errors
    ///
    /// Returns the submission's [`InferError`] if the batcher shut down
    /// before serving it.
    pub fn wait(self) -> Result<Vec<i32>, InferError> {
        self.rx.recv().unwrap_or(Err(InferError::ShuttingDown))
    }
}

/// The per-model dynamic micro-batcher.
pub struct Batcher {
    shared: Arc<Shared>,
    slot: Arc<ModelSlot>,
    config: BatcherConfig,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
    batches_flushed: Arc<AtomicU64>,
}

impl std::fmt::Debug for Batcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher").field("config", &self.config).finish_non_exhaustive()
    }
}

impl Batcher {
    /// Starts a flusher thread serving `slot` under `config`, reporting
    /// into this model's `metrics`.
    pub fn start(slot: Arc<ModelSlot>, config: BatcherConfig, metrics: Arc<ModelMetrics>) -> Self {
        let config = BatcherConfig {
            max_batch: config.max_batch.max(1),
            max_wait: config.max_wait,
            threads: config.threads.max(1),
            max_queue: config.max_queue.max(1),
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { pending: VecDeque::new(), shutdown: false }),
            wake_flusher: Condvar::new(),
        });
        let batches_flushed = Arc::new(AtomicU64::new(0));
        let flusher = {
            let shared = Arc::clone(&shared);
            let slot = Arc::clone(&slot);
            let batches_flushed = Arc::clone(&batches_flushed);
            std::thread::Builder::new()
                .name("wp-batcher".into())
                .spawn(move || flusher_loop(&shared, &slot, config, &metrics, &batches_flushed))
                .expect("spawn batcher flusher")
        };
        Self { shared, slot, config, flusher: Mutex::new(Some(flusher)), batches_flushed }
    }

    /// The batcher's configuration (normalized: zeroes clamped to one).
    pub fn config(&self) -> BatcherConfig {
        self.config
    }

    /// The model slot this batcher executes from.
    pub fn slot(&self) -> &Arc<ModelSlot> {
        &self.slot
    }

    /// Batches flushed so far (test/diagnostic aid).
    pub fn batches_flushed(&self) -> u64 {
        self.batches_flushed.load(Ordering::Relaxed)
    }

    /// Validates and enqueues one plane, returning a [`Ticket`] that
    /// blocks until the result is ready. Validation happens here, against
    /// the *current* plan, so the flusher can execute whole batches
    /// without per-plane error paths.
    ///
    /// # Errors
    ///
    /// [`InferError::BadInput`] for a wrong-size plane or out-of-range
    /// code, [`InferError::Overloaded`] at the queue cap, and
    /// [`InferError::ShuttingDown`] after [`Batcher::shutdown`].
    pub fn submit(&self, input: Vec<i32>) -> Result<Ticket, InferError> {
        self.submit_traced(input, 0)
    }

    /// [`Batcher::submit`] carrying a request trace id: the id is stamped
    /// on the queue-wait span the flusher emits for this plane, tying the
    /// span back to the HTTP request that caused it.
    ///
    /// # Errors
    ///
    /// See [`Batcher::submit`].
    pub fn submit_traced(&self, input: Vec<i32>, span_id: u64) -> Result<Ticket, InferError> {
        let (tx, rx) = mpsc::channel();
        self.submit_with(input, span_id, Responder::Channel(tx)).map_err(|r| r.error)?;
        Ok(Ticket { rx })
    }

    /// Nonblocking submission for the event-driven front: instead of a
    /// [`Ticket`] to block on, `done` is invoked with the result — on the
    /// flusher thread once the plane's batch executes, or synchronously
    /// *before this returns* when validation fails, the queue is at
    /// capacity, or the batcher is shutting down. Exactly one invocation
    /// either way, so callers never poll and never block.
    pub fn submit_callback(
        &self,
        input: Vec<i32>,
        span_id: u64,
        done: impl FnOnce(Result<Vec<i32>, InferError>) + Send + 'static,
    ) {
        let responder = Responder::Callback(Box::new(done));
        if let Err(rejected) = self.submit_with(input, span_id, responder) {
            rejected.responder.respond(Err(rejected.error));
        }
    }

    /// Validates and enqueues one plane. On failure the responder is
    /// handed back un-invoked so the caller decides delivery.
    fn submit_with(
        &self,
        input: Vec<i32>,
        span_id: u64,
        responder: Responder,
    ) -> Result<(), SubmitRejected> {
        let net = self.slot.read().expect("model slot poisoned").clone();
        let (c, h, w) = net.input_shape();
        if input.len() != c * h * w {
            let error = InferError::BadInput(format!(
                "expected {} activation codes ({c}x{h}x{w}), got {}",
                c * h * w,
                input.len()
            ));
            return Err(SubmitRejected { error, responder });
        }
        let (lo, hi) = net.backend().encoding().code_range(net.act_bits());
        if let Some(&bad) = input.iter().find(|&&v| !(lo..=hi).contains(&v)) {
            let error = InferError::BadInput(format!("activation code {bad} outside [{lo}, {hi}]"));
            return Err(SubmitRejected { error, responder });
        }

        {
            let mut state = self.shared.state.lock().expect("batcher queue poisoned");
            if state.shutdown {
                return Err(SubmitRejected { error: InferError::ShuttingDown, responder });
            }
            if state.pending.len() >= self.config.max_queue {
                return Err(SubmitRejected { error: InferError::Overloaded, responder });
            }
            state.pending.push_back(Pending {
                input,
                enqueued: Instant::now(),
                span_id,
                responder,
            });
        }
        self.shared.wake_flusher.notify_one();
        Ok(())
    }

    /// Convenience: submit one plane and wait for its result.
    ///
    /// # Errors
    ///
    /// See [`Batcher::submit`].
    pub fn infer(&self, input: Vec<i32>) -> Result<Vec<i32>, InferError> {
        self.submit(input)?.wait()
    }

    /// Stops accepting new planes, drains the queue, and joins the
    /// flusher. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("batcher queue poisoned");
            state.shutdown = true;
        }
        self.shared.wake_flusher.notify_all();
        if let Some(handle) = self.flusher.lock().expect("flusher handle poisoned").take() {
            handle.join().expect("batcher flusher panicked");
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The flusher: waits for work, carves batches, executes, replies.
fn flusher_loop(
    shared: &Shared,
    slot: &ModelSlot,
    config: BatcherConfig,
    metrics: &ModelMetrics,
    batches_flushed: &AtomicU64,
) {
    let runner = BatchRunner::new(config.threads);
    let mut state = shared.state.lock().expect("batcher queue poisoned");
    loop {
        if state.pending.is_empty() {
            if state.shutdown {
                return;
            }
            state = shared.wake_flusher.wait(state).expect("batcher queue poisoned");
            continue;
        }

        // A batch is pending; wait for it to fill or its deadline to pass.
        let deadline = state.pending.front().expect("non-empty").enqueued + config.max_wait;
        while state.pending.len() < config.max_batch && !state.shutdown {
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                break;
            };
            let (next, timeout) =
                shared.wake_flusher.wait_timeout(state, remaining).expect("batcher queue poisoned");
            state = next;
            if timeout.timed_out() {
                break;
            }
        }

        let take = state.pending.len().min(config.max_batch);
        let batch: Vec<Pending> = state.pending.drain(..take).collect();
        drop(state);

        let started = Instant::now();
        for p in &batch {
            metrics.queue_latency.record_micros(started.duration_since(p.enqueued));
        }
        // One Arc clone per batch: the whole batch runs on one plan even
        // if the registry swaps the slot mid-flight.
        let net = slot.read().expect("model slot poisoned").clone();
        if let Some(sink) = net.trace_sink() {
            // One queue-wait span per plane, ending at batch start and
            // carrying the submitting request's trace id.
            let batch_start_ns = trace::now_ns();
            let track = trace::current_track();
            let tier = trace::tier_code(net.backend().simd());
            let size = u16::try_from(batch.len()).unwrap_or(u16::MAX);
            for p in &batch {
                let wait_ns = u64::try_from(started.duration_since(p.enqueued).as_nanos())
                    .unwrap_or(u64::MAX);
                sink.record_span(&TraceEvent {
                    kind: SpanKind::QueueWait,
                    track,
                    layer: 0,
                    batch: size,
                    tier,
                    id: p.span_id,
                    start_ns: batch_start_ns.saturating_sub(wait_ns),
                    dur_ns: wait_ns,
                });
            }
        }
        // Re-validate against the plan actually being run: submit-time
        // validation used whatever plan was deployed then, and a hot swap
        // in between may have changed the input shape or code range. A
        // stale plane gets an error reply; it must never panic the
        // flusher (that would strand every future request of this model).
        let (c, h, w) = net.input_shape();
        let expected_len = c * h * w;
        let (lo, hi) = net.backend().encoding().code_range(net.act_bits());
        let valid: Vec<usize> = batch
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                p.input.len() == expected_len && p.input.iter().all(|v| (lo..=hi).contains(v))
            })
            .map(|(i, _)| i)
            .collect();
        let refs: Vec<&[i32]> = valid.iter().map(|&i| batch[i].input.as_slice()).collect();
        let outputs = runner.run_refs(&net, &refs);
        if !valid.is_empty() {
            metrics.record_batch(valid.len());
            batches_flushed.fetch_add(1, Ordering::Relaxed);
        }
        let mut results: Vec<Option<Vec<i32>>> = vec![None; batch.len()];
        for (&i, out) in valid.iter().zip(outputs) {
            results[i] = Some(out);
        }
        for (p, result) in batch.into_iter().zip(results) {
            let reply = result.ok_or_else(|| {
                InferError::BadInput(
                    "plane no longer matches the deployed model (hot-swapped mid-queue?)".into(),
                )
            });
            p.responder.respond(reply);
        }

        state = shared.state.lock().expect("batcher queue poisoned");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo;
    use wp_engine::PreparedNet;

    fn slot() -> (Arc<ModelSlot>, Arc<PreparedNet>) {
        let net = Arc::new(demo::demo_prepared(demo::DemoSize::Tiny, 7));
        (Arc::new(RwLock::new(Arc::clone(&net))), net)
    }

    fn start(slot: Arc<ModelSlot>, max_batch: usize, max_wait: Duration) -> Batcher {
        let config = BatcherConfig { max_batch, max_wait, threads: 2, max_queue: 1024 };
        Batcher::start(slot, config, Arc::new(ModelMetrics::new()))
    }

    /// Satellite pin: solo, coalesced-full-batch, and timeout-flushed
    /// requests all produce outputs bit-identical to direct
    /// `PreparedNet::run_one`, across `max_batch` ∈ {1, 4, 32}.
    #[test]
    fn coalescing_is_bit_identical_across_max_batch() {
        let (slot, net) = slot();
        let inputs = net.fabricate_inputs(24, 99);
        let expected: Vec<Vec<i32>> = inputs.iter().map(|x| net.run_one(x)).collect();
        for max_batch in [1usize, 4, 32] {
            let batcher = start(Arc::clone(&slot), max_batch, Duration::from_millis(1));
            // Concurrent submission from one thread per request: requests
            // coalesce into whatever batches the flusher carves.
            let outputs: Vec<Vec<i32>> = std::thread::scope(|scope| {
                let handles: Vec<_> = inputs
                    .iter()
                    .map(|input| {
                        let batcher = &batcher;
                        scope.spawn(move || batcher.infer(input.clone()).expect("served"))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("no panic")).collect()
            });
            assert_eq!(outputs, expected, "max_batch={max_batch}");
            batcher.shutdown();
        }
    }

    /// A lone request under a large `max_batch` must be flushed by the
    /// wait timeout, not stall forever — and still match solo execution.
    #[test]
    fn timeout_flush_serves_solo_request() {
        let (slot, net) = slot();
        let input = net.fabricate_inputs(1, 5).pop().unwrap();
        let batcher = start(slot, 32, Duration::from_millis(5));
        let started = Instant::now();
        let out = batcher.infer(input.clone()).expect("served");
        assert_eq!(out, net.run_one(&input));
        assert!(started.elapsed() >= Duration::from_millis(4), "flushed only after max_wait");
        assert_eq!(batcher.batches_flushed(), 1);
        batcher.shutdown();
    }

    /// `max_batch = 1` serves every request in its own batch immediately.
    #[test]
    fn max_batch_one_never_coalesces() {
        let (slot, net) = slot();
        let inputs = net.fabricate_inputs(6, 3);
        let batcher = start(slot, 1, Duration::from_secs(5));
        for input in &inputs {
            assert_eq!(batcher.infer(input.clone()).unwrap(), net.run_one(input));
        }
        assert_eq!(batcher.batches_flushed(), 6, "one batch per request");
        batcher.shutdown();
    }

    #[test]
    fn bad_inputs_rejected_at_submit() {
        let (slot, net) = slot();
        let batcher = start(slot, 4, Duration::from_millis(1));
        assert!(matches!(batcher.infer(vec![0i32; 3]), Err(InferError::BadInput(_))));
        let (c, h, w) = net.input_shape();
        let mut bad = vec![0i32; c * h * w];
        bad[0] = 100_000;
        assert!(matches!(batcher.infer(bad), Err(InferError::BadInput(_))));
        batcher.shutdown();
    }

    /// Callback submission matches ticket submission bit-for-bit, and
    /// failure paths (bad input, shutdown) invoke the callback instead of
    /// dropping it.
    #[test]
    fn callback_submission_is_bit_identical_and_always_invoked() {
        let (slot, net) = slot();
        let inputs = net.fabricate_inputs(8, 42);
        let expected: Vec<Vec<i32>> = inputs.iter().map(|x| net.run_one(x)).collect();
        let batcher = start(Arc::clone(&slot), 4, Duration::from_millis(1));

        let (tx, rx) = mpsc::channel();
        for (i, input) in inputs.iter().enumerate() {
            let tx = tx.clone();
            batcher.submit_callback(input.clone(), 0, move |r| {
                tx.send((i, r)).unwrap();
            });
        }
        let mut outputs: Vec<Option<Vec<i32>>> = vec![None; inputs.len()];
        for _ in 0..inputs.len() {
            let (i, r) = rx.recv_timeout(Duration::from_secs(10)).expect("callback fired");
            outputs[i] = Some(r.expect("served"));
        }
        let outputs: Vec<Vec<i32>> = outputs.into_iter().map(|o| o.unwrap()).collect();
        assert_eq!(outputs, expected);

        // Validation failure: callback fires synchronously with the error.
        let (tx, rx) = mpsc::channel();
        batcher.submit_callback(vec![0i32; 3], 0, move |r| tx.send(r).unwrap());
        assert!(matches!(rx.try_recv(), Ok(Err(InferError::BadInput(_)))));

        batcher.shutdown();
        let (tx, rx) = mpsc::channel();
        batcher.submit_callback(inputs[0].clone(), 0, move |r| tx.send(r).unwrap());
        assert!(matches!(rx.try_recv(), Ok(Err(InferError::ShuttingDown))));
    }

    #[test]
    fn shutdown_rejects_new_submits_and_is_idempotent() {
        let (slot, net) = slot();
        let input = net.fabricate_inputs(1, 1).pop().unwrap();
        let batcher = start(slot, 4, Duration::from_millis(1));
        batcher.shutdown();
        batcher.shutdown();
        assert_eq!(batcher.infer(input), Err(InferError::ShuttingDown));
    }

    /// An incompatible hot swap while planes are queued must error those
    /// planes, not panic the flusher — and the batcher must keep serving
    /// afterwards.
    #[test]
    fn incompatible_hot_swap_mid_queue_does_not_kill_the_flusher() {
        let (slot, net) = slot();
        // Long deadline + wide batch: the submitted plane sits queued
        // while we swap the model underneath it.
        let batcher = start(Arc::clone(&slot), 32, Duration::from_millis(100));
        let mut input = net.fabricate_inputs(1, 2).pop().unwrap();
        input[0] = 200; // valid at 8 bits, out of range at 4
        let ticket = batcher.submit(input).expect("valid for the current plan");

        // Swap to a 4-bit plan: the queued 8-bit plane no longer fits.
        let bundle = demo::demo_bundle(demo::DemoSize::Tiny, 7);
        let opts = wp_engine::EngineOptions::new().with_act_bits(4);
        let swapped = Arc::new(PreparedNet::from_bundle(&bundle, &opts));
        *slot.write().unwrap() = Arc::clone(&swapped);

        assert!(matches!(ticket.wait(), Err(InferError::BadInput(_))));
        // The flusher survived: a plane valid for the new plan is served.
        let ok = swapped.fabricate_inputs(1, 3).pop().unwrap();
        assert_eq!(batcher.infer(ok.clone()).unwrap(), swapped.run_one(&ok));
        batcher.shutdown();
    }

    #[test]
    fn hot_swap_takes_effect_for_new_batches() {
        let (slot, net) = slot();
        let input = net.fabricate_inputs(1, 11).pop().unwrap();
        let batcher = start(Arc::clone(&slot), 1, Duration::from_millis(1));
        let before = batcher.infer(input.clone()).unwrap();
        assert_eq!(before, net.run_one(&input));

        // Swap in a plan with different fabricated weights.
        let swapped = Arc::new(demo::demo_prepared(demo::DemoSize::Tiny, 8));
        *slot.write().unwrap() = Arc::clone(&swapped);
        let after = batcher.infer(input.clone()).unwrap();
        assert_eq!(after, swapped.run_one(&input));
        assert_ne!(before, after, "different bundle must answer differently");
        batcher.shutdown();
    }
}
