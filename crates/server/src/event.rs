//! The event-driven connection front: a thin std-only `epoll` FFI layer
//! and a small pool of event threads, each owning an epoll instance and a
//! share of the server's connections.
//!
//! ```text
//!  accept thread ──round robin──▶ event thread 0..N
//!                                  ├── epoll_wait(100ms)       ◀─ eventfd wake
//!                                  ├── readiness: nonblocking read → RequestParser
//!                                  │     sync endpoints: route() inline
//!                                  │     POST /v1/infer: Batcher::submit_callback
//!                                  │        (flusher thread → completion queue → eventfd)
//!                                  ├── completions: encode response → WriteBuf
//!                                  │     (chunked transfer encoding ≥ 32 KiB)
//!                                  └── deadline wheel sweep: idle reap /
//!                                        slowloris 408 / dead-peer close
//! ```
//!
//! Design choices, and why:
//!
//! * **No crates**: the build environment is offline, so `epoll` is bound
//!   directly with `extern "C"` declarations — std already links libc on
//!   Linux, the symbols are there. The module is `cfg(target_os =
//!   "linux")`; other platforms use the threaded front.
//! * **Level-triggered** events: simpler invariants than edge-triggered
//!   (a missed wakeup self-heals on the next `epoll_wait`), and the
//!   syscall savings of edge mode are noise next to inference work.
//! * **Blocking is banned on event threads.** Inference hands off through
//!   [`crate::batcher::Batcher::submit_callback`]; the completion path
//!   (flusher thread) pushes onto this thread's completion queue and
//!   writes its eventfd. A connection with an inference in flight parses
//!   no further pipelined requests, which is what guarantees in-order
//!   responses on a pipelined connection.
//! * **One wheel entry per connection** ([`DeadlineWheel`] lazy
//!   semantics): deadlines rearm by rewriting `Connection::deadline`;
//!   the wheel entry is only re-filed when a deadline moves *earlier*
//!   (idle → mid-request), so the hot request path does no wheel work.
//! * The `epoll_wait` timeout doubles as the deadline-wheel tick — no
//!   separate timer machinery.

#![cfg(target_os = "linux")]

use crate::batcher::InferError;
use crate::conn::{Connection, DeadlinePhase, DeadlineWheel, Slab, Timeouts, Token};
use crate::http::{self, HttpError, Request, Status};
use crate::metrics::{LatencyHistogram, Metrics};
use crate::protocol::{ErrorResponse, InferResponse};
use crate::registry::{ModelEntry, ModelRegistry};
use crate::server::{self, FrontRuntime, Reply, ServerConfig};
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The vendored epoll/eventfd surface — exactly the constants and calls
/// the loop needs, values from the Linux UAPI headers.
mod ffi {
    /// Mirrors `struct epoll_event`. x86_64 is the one ABI where the
    /// kernel declares it packed.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    impl EpollEvent {
        pub fn zeroed() -> Self {
            Self { events: 0, data: 0 }
        }
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0x8_0000;

    pub const EFD_CLOEXEC: i32 = 0x8_0000;
    pub const EFD_NONBLOCK: i32 = 0x800;
}

pub use ffi::EpollEvent;

/// Readiness bits that mean "the read side has something for us" —
/// includes error/hangup states, which surface as EOF or an error from
/// `read` and are handled on that path.
const READABLE: u32 = ffi::EPOLLIN | ffi::EPOLLERR | ffi::EPOLLHUP | ffi::EPOLLRDHUP;

/// Interest set every connection always has registered.
const BASE_INTEREST: u32 = ffi::EPOLLIN | ffi::EPOLLRDHUP;

/// The epoll user-data value reserved for the thread's wakeup eventfd.
/// Slab tokens can't collide with it: their high word is a generation
/// counter that would take 2^32 reuses of slot `u32::MAX` to reach.
const WAKE_TOKEN: u64 = u64::MAX;

/// `epoll_wait` timeout = deadline wheel tick.
const WAIT_MS: i32 = 100;

/// Wheel geometry: 64 slots × 100ms tick = 6.4s per revolution. Longer
/// deadlines (the 60s idle default) alias around the wheel and get
/// lazily reinserted a handful of times — bounded, cheap churn.
const WHEEL_SLOTS: usize = 64;

/// How long a shutting-down event thread keeps flushing in-flight
/// responses before exiting regardless.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(3);

/// A minimal epoll instance wrapper (closes on drop).
pub struct Epoll {
    fd: i32,
}

impl Epoll {
    /// Creates an epoll instance.
    ///
    /// # Errors
    ///
    /// The `epoll_create1` errno.
    pub fn new() -> io::Result<Self> {
        let fd = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { fd })
    }

    fn ctl(&self, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
        let mut ev = ffi::EpollEvent { events, data };
        let rc = unsafe { ffi::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` for `events`, tagging readiness with `data`.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` errno.
    pub fn add(&self, fd: i32, events: u32, data: u64) -> io::Result<()> {
        self.ctl(ffi::EPOLL_CTL_ADD, fd, events, data)
    }

    /// Replaces `fd`'s interest set.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` errno.
    pub fn modify(&self, fd: i32, events: u32, data: u64) -> io::Result<()> {
        self.ctl(ffi::EPOLL_CTL_MOD, fd, events, data)
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` errno.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        // The event argument is ignored for DEL (and only allowed to be
        // NULL on kernels ≥ 2.6.9); pass a zeroed one for portability.
        self.ctl(ffi::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` for readiness, filling `events`; retries
    /// `EINTR` internally.
    ///
    /// # Errors
    ///
    /// The `epoll_wait` errno.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let n = unsafe {
                ffi::epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    i32::try_from(events.len()).unwrap_or(i32::MAX),
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { ffi::close(self.fd) };
    }
}

/// A nonblocking eventfd used to wake an event thread out of
/// `epoll_wait` from other threads (the acceptor, batcher flushers, the
/// shutdown path). Closes on drop.
pub struct EventFd {
    fd: i32,
}

impl EventFd {
    /// Creates a nonblocking eventfd.
    ///
    /// # Errors
    ///
    /// The `eventfd` errno.
    pub fn new() -> io::Result<Self> {
        let fd = unsafe { ffi::eventfd(0, ffi::EFD_CLOEXEC | ffi::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { fd })
    }

    /// The raw fd (for epoll registration).
    pub fn raw_fd(&self) -> i32 {
        self.fd
    }

    /// Wakes the owning loop. Safe from any thread; coalesces (the
    /// counter saturates, readiness stays level until drained).
    pub fn wake(&self) {
        let one: u64 = 1;
        let _ = unsafe { ffi::write(self.fd, std::ptr::addr_of!(one).cast(), 8) };
    }

    /// Consumes all pending wakes.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // Nonblocking: one read empties the counter; loop in case of
        // EINTR-style partial behavior.
        while unsafe { ffi::read(self.fd, buf.as_mut_ptr(), 8) } > 0 {}
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { ffi::close(self.fd) };
    }
}

// ---------------------------------------------------------------------------
// Cross-thread plumbing
// ---------------------------------------------------------------------------

/// One completed (or synchronously failed) `/v1/infer` request coming
/// back to its event thread.
struct Completion {
    token: Token,
    reply: Reply,
    rid: String,
    keep_alive: bool,
    /// When the request was parsed, for whole-request latency.
    started: Instant,
}

/// The mailbox other threads use to hand work to one event thread.
struct ThreadShared {
    /// Freshly accepted sockets from the acceptor.
    incoming: Mutex<Vec<TcpStream>>,
    /// Finished inference requests from batcher flusher threads.
    completions: Mutex<Vec<Completion>>,
    /// Kicks the thread out of `epoll_wait` when either queue fills.
    wake: EventFd,
}

/// Aggregates one infer request's plane callbacks back into a single
/// [`Reply`]; the last plane to complete (success or failure) builds the
/// reply on the flusher thread and mails it to the owning event thread.
struct InferJob {
    state: Mutex<JobState>,
    entry: Arc<ModelEntry>,
    shared: Arc<ThreadShared>,
    token: Token,
    rid: String,
    keep_alive: bool,
    started: Instant,
    submitted: Instant,
}

struct JobState {
    outputs: Vec<Option<Vec<i32>>>,
    error: Option<InferError>,
    remaining: usize,
}

impl InferJob {
    fn complete(&self, index: usize, result: Result<Vec<i32>, InferError>) {
        let reply = {
            let mut st = self.state.lock().expect("infer job poisoned");
            match result {
                Ok(out) => st.outputs[index] = Some(out),
                Err(e) => {
                    // First error wins — matches the blocking path, which
                    // reports the first ticket that fails.
                    if st.error.is_none() {
                        st.error = Some(e);
                    }
                }
            }
            st.remaining -= 1;
            if st.remaining > 0 {
                return;
            }
            match &st.error {
                Some(e) => server::infer_error(e, &self.rid),
                None => {
                    self.entry.metrics().request_latency.record_micros(self.submitted.elapsed());
                    let outputs: Vec<Vec<i32>> = st
                        .outputs
                        .drain(..)
                        .map(|o| o.expect("all planes completed without error"))
                        .collect();
                    server::ok(
                        &InferResponse { model: self.entry.name().to_string(), outputs },
                        &self.rid,
                    )
                }
            }
        };
        self.shared.completions.lock().expect("completion queue poisoned").push(Completion {
            token: self.token,
            reply,
            rid: self.rid.clone(),
            keep_alive: self.keep_alive,
            started: self.started,
        });
        self.shared.wake.wake();
    }
}

// ---------------------------------------------------------------------------
// Front startup
// ---------------------------------------------------------------------------

/// Starts the event front: `config.event_threads` epoll loops plus one
/// accept thread distributing connections round-robin.
///
/// # Errors
///
/// Any epoll/eventfd creation error.
pub(crate) fn start(
    listener: TcpListener,
    config: &ServerConfig,
    registry: &Arc<ModelRegistry>,
    shutdown: &Arc<AtomicBool>,
) -> io::Result<FrontRuntime> {
    let n_threads = config.event_threads.max(1);
    let metrics = Arc::clone(registry.metrics());
    let timeouts = Timeouts {
        idle: config.idle_timeout,
        read: config.read_timeout,
        write: config.write_timeout,
    };

    let mut shareds = Vec::with_capacity(n_threads);
    let mut threads = Vec::with_capacity(n_threads + 1);
    for i in 0..n_threads {
        let shared = Arc::new(ThreadShared {
            incoming: Mutex::new(Vec::new()),
            completions: Mutex::new(Vec::new()),
            wake: EventFd::new()?,
        });
        let epoll = Epoll::new()?;
        epoll.add(shared.wake.raw_fd(), ffi::EPOLLIN, WAKE_TOKEN)?;
        let looper = EventLoop {
            epoll,
            slab: Slab::new(),
            wheel: DeadlineWheel::new(
                WHEEL_SLOTS,
                Duration::from_millis(WAIT_MS as u64),
                Instant::now(),
            ),
            shared: Arc::clone(&shared),
            registry: Arc::clone(registry),
            metrics: Arc::clone(&metrics),
            shutdown: Arc::clone(shutdown),
            timeouts,
            config: config.clone(),
            hist: metrics.register_event_loop(),
        };
        shareds.push(shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("wp-event-{i}"))
                .spawn(move || looper.run())
                .expect("spawn event thread"),
        );
    }

    let accept_thread = {
        let shutdown = Arc::clone(shutdown);
        let metrics = Arc::clone(&metrics);
        let shareds = shareds.clone();
        std::thread::Builder::new()
            .name("wp-accept".into())
            .spawn(move || {
                let mut next = 0usize;
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    metrics.connections_accepted.fetch_add(1, Ordering::Relaxed);
                    let shared = &shareds[next % shareds.len()];
                    next = next.wrapping_add(1);
                    shared.incoming.lock().expect("incoming queue poisoned").push(stream);
                    shared.wake.wake();
                }
            })
            .expect("spawn accept loop")
    };
    threads.push(accept_thread);

    let wake: Box<dyn Fn() + Send + Sync> = Box::new(move || {
        for s in &shareds {
            s.wake.wake();
        }
    });
    Ok(FrontRuntime { threads, wake: Some(wake) })
}

// ---------------------------------------------------------------------------
// The loop
// ---------------------------------------------------------------------------

/// Everything one event thread owns.
struct EventLoop {
    epoll: Epoll,
    slab: Slab<Connection>,
    wheel: DeadlineWheel,
    shared: Arc<ThreadShared>,
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    timeouts: Timeouts,
    config: ServerConfig,
    /// This thread's loop-iteration busy-time histogram.
    hist: Arc<LatencyHistogram>,
}

/// What a fired wheel candidate needs done, decided while the connection
/// is borrowed, executed after.
enum Sweep {
    Fire(DeadlinePhase),
    Reinsert(Instant),
}

impl EventLoop {
    fn run(mut self) {
        let mut events = vec![EpollEvent::zeroed(); 1024];
        let mut draining_since: Option<Instant> = None;
        loop {
            let n = self.epoll.wait(&mut events, WAIT_MS).unwrap_or(0);
            let busy_start = Instant::now();
            for ev in &events[..n] {
                // Copy out of the (possibly packed) struct before use.
                let data = ev.data;
                let flags = ev.events;
                if data == WAKE_TOKEN {
                    self.shared.wake.drain();
                    continue;
                }
                self.on_ready(Token(data), flags, busy_start);
            }
            let now = Instant::now();
            self.drain_incoming(now);
            self.drain_completions(now);
            self.sweep(now);

            if self.shutdown.load(Ordering::SeqCst) {
                let since = *draining_since.get_or_insert(now);
                // Reap everything with nothing left to deliver; keep
                // flushing the rest under the grace period.
                for token in self.slab.tokens() {
                    let reapable =
                        self.slab.get(token).is_some_and(|c| !c.inflight && c.out.is_empty());
                    if reapable {
                        self.close(token, false);
                    }
                }
                if self.slab.is_empty() || now.duration_since(since) > SHUTDOWN_GRACE {
                    self.hist.record_micros(busy_start.elapsed());
                    return;
                }
            }
            self.hist.record_micros(busy_start.elapsed());
        }
    }

    /// Handles readiness on one connection: read whatever arrived, then
    /// make request progress and flush.
    fn on_ready(&mut self, token: Token, flags: u32, now: Instant) {
        if flags & READABLE != 0 {
            let Some(conn) = self.slab.get_mut(token) else { return };
            let mut buf = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.parser.feed(&buf[..n]);
                        if n < buf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.peer_closed = true;
                        break;
                    }
                }
            }
        }
        self.process(token, now);
    }

    /// Parses and dispatches as many buffered requests as allowed (stops
    /// at an in-flight inference to keep pipelined responses in order),
    /// then flushes output and rearms deadlines.
    fn process(&mut self, token: Token, now: Instant) {
        loop {
            let parsed = {
                let Some(conn) = self.slab.get_mut(token) else { return };
                if conn.inflight || conn.close_after_flush {
                    break;
                }
                conn.parser.try_parse()
            };
            match parsed {
                Ok(Some(request)) => self.dispatch(token, request),
                Ok(None) => break,
                Err(e) => {
                    self.enqueue_parse_error(token, &e);
                    break;
                }
            }
        }
        self.finish_io(token, now);
    }

    /// Routes one request. Sync endpoints answer inline; `/v1/infer`
    /// submits to the batcher and leaves the connection in-flight.
    fn dispatch(&mut self, token: Token, request: Request) {
        let started = Instant::now();
        self.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
        // Evaluated before routing, exactly like the threaded front (a
        // /v1/shutdown request's own response still says keep-alive) —
        // responses must stay byte-identical between fronts.
        let keep_alive = request.keep_alive() && !self.shutdown.load(Ordering::SeqCst);
        let rid = server::request_id(&request);

        if request.method == "POST" && request.path == "/v1/infer" {
            match server::decode_infer(&request, &self.registry, &rid) {
                Err(reply) => self.enqueue_reply(token, &reply, &rid, keep_alive, started),
                Ok(plan) => {
                    if let Some(conn) = self.slab.get_mut(token) {
                        conn.inflight = true;
                    }
                    let job = Arc::new(InferJob {
                        state: Mutex::new(JobState {
                            outputs: vec![None; plan.inputs.len()],
                            error: None,
                            remaining: plan.inputs.len(),
                        }),
                        entry: plan.entry,
                        shared: Arc::clone(&self.shared),
                        token,
                        rid,
                        keep_alive,
                        started,
                        submitted: Instant::now(),
                    });
                    for (i, input) in plan.inputs.into_iter().enumerate() {
                        let cb = Arc::clone(&job);
                        job.entry
                            .batcher()
                            .submit_callback(input, plan.span_id, move |r| cb.complete(i, r));
                    }
                }
            }
        } else {
            let reply = server::route(&request, &self.registry, &self.shutdown, &self.config, &rid);
            self.enqueue_reply(token, &reply, &rid, keep_alive, started);
        }
    }

    /// Records response metrics and queues the encoded response bytes.
    fn enqueue_reply(
        &mut self,
        token: Token,
        reply: &Reply,
        rid: &str,
        keep_alive: bool,
        started: Instant,
    ) {
        let class = match reply.status.0 {
            200..=299 => &self.metrics.responses_ok,
            400..=499 => &self.metrics.responses_client_error,
            _ => &self.metrics.responses_server_error,
        };
        class.fetch_add(1, Ordering::Relaxed);
        self.metrics.request_latency.record_micros(started.elapsed());
        let retry_after = reply.retry_after.map(|s| s.to_string());
        let mut headers: Vec<(&str, &str)> = vec![("X-Request-Id", rid)];
        if let Some(retry_after) = &retry_after {
            headers.push(("Retry-After", retry_after));
        }
        let bytes = http::encode_response(
            reply.status,
            reply.content_type,
            &headers,
            reply.body.as_bytes(),
            keep_alive,
        );
        let Some(conn) = self.slab.get_mut(token) else { return };
        conn.out.push(bytes);
        if !keep_alive {
            conn.close_after_flush = true;
        }
    }

    /// Answers a protocol violation with the same 4xx the threaded front
    /// sends, then closes after flushing.
    fn enqueue_parse_error(&mut self, token: Token, err: &HttpError) {
        let (status, message) = match err {
            HttpError::Malformed(m) => (Status::BAD_REQUEST, m.clone()),
            HttpError::TooLarge(m) => (Status::PAYLOAD_TOO_LARGE, m.clone()),
            // Eof/Io never come out of the pull-free incremental parser.
            HttpError::Eof | HttpError::Io(_) => return,
        };
        self.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
        self.metrics.responses_client_error.fetch_add(1, Ordering::Relaxed);
        let body = serde_json::to_string(&ErrorResponse { error: message, request_id: None })
            .unwrap_or_else(|_| "{}".into());
        let bytes = http::encode_response(status, "application/json", &[], body.as_bytes(), false);
        if let Some(conn) = self.slab.get_mut(token) {
            conn.out.push(bytes);
            conn.close_after_flush = true;
        }
    }

    /// Flushes queued output, closes if the connection is finished, and
    /// otherwise rearms its deadline, EPOLLOUT interest, and (when the
    /// deadline moved earlier) its wheel entry.
    fn finish_io(&mut self, token: Token, now: Instant) {
        // A peer that half-closed mid-head gets the same 400 the
        // blocking front sends on EOF ([`RequestParser::eof_error`];
        // mid-body EOFs stay silent — there is no request to answer).
        let eof_err = {
            let Some(conn) = self.slab.get_mut(token) else { return };
            if conn.peer_closed && !conn.close_after_flush && !conn.inflight {
                conn.parser.eof_error()
            } else {
                None
            }
        };
        if let Some(err) = eof_err {
            self.enqueue_parse_error(token, &err);
        }
        let mut close = false;
        {
            let Some(conn) = self.slab.get_mut(token) else { return };
            let mut wrote = false;
            if !conn.out.is_empty() {
                match conn.out.write_to(&mut conn.stream) {
                    Ok(n) => wrote = n > 0,
                    Err(_) => close = true,
                }
            }
            if !close {
                let drained = conn.out.is_empty();
                if drained && conn.close_after_flush {
                    close = true;
                } else if conn.peer_closed && drained && !conn.inflight {
                    // Clean EOF (or a dead socket) with nothing left to
                    // send: reap silently, like the threaded front.
                    close = true;
                }
            }
            if !close {
                conn.rearm_deadline(now, &self.timeouts, wrote);
            }
        }
        if close {
            self.close(token, false);
            return;
        }
        self.update_interest(token);
        // Re-file the wheel entry only when the governing deadline moved
        // earlier than where the entry sits (e.g. idle 60s → read 5s).
        let refile = {
            let Some(conn) = self.slab.get_mut(token) else { return };
            if conn.deadline < conn.wheel_at {
                conn.wheel_at = conn.deadline;
                Some(conn.deadline)
            } else {
                None
            }
        };
        if let Some(deadline) = refile {
            self.wheel.insert(token, deadline);
        }
    }

    /// Toggles EPOLLOUT registration to match whether output is queued —
    /// one `epoll_ctl` per transition, not per event.
    fn update_interest(&mut self, token: Token) {
        let Some(conn) = self.slab.get_mut(token) else { return };
        let want_out = !conn.out.is_empty();
        if want_out == conn.interest_out {
            return;
        }
        let events = BASE_INTEREST | if want_out { ffi::EPOLLOUT } else { 0 };
        if self.epoll.modify(conn.stream.as_raw_fd(), events, token.0).is_ok() {
            conn.interest_out = want_out;
        }
    }

    /// Registers freshly accepted sockets handed over by the acceptor.
    fn drain_incoming(&mut self, now: Instant) {
        let streams: Vec<TcpStream> = {
            let mut q = self.shared.incoming.lock().expect("incoming queue poisoned");
            if q.is_empty() {
                return;
            }
            q.drain(..).collect()
        };
        for stream in streams {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            stream.set_nodelay(true).ok();
            let fd = stream.as_raw_fd();
            let token = self.slab.insert(Connection::new(stream, now, self.timeouts.idle));
            if self.epoll.add(fd, BASE_INTEREST, token.0).is_err() {
                self.slab.remove(token);
                continue;
            }
            self.metrics.connections_open.fetch_add(1, Ordering::Relaxed);
            self.wheel.insert(token, now + self.timeouts.idle);
        }
    }

    /// Delivers finished inference replies, then resumes any pipelined
    /// requests the connection buffered while in flight.
    fn drain_completions(&mut self, now: Instant) {
        let completions: Vec<Completion> = {
            let mut q = self.shared.completions.lock().expect("completion queue poisoned");
            if q.is_empty() {
                return;
            }
            q.drain(..).collect()
        };
        for c in completions {
            // The connection may have been reaped (write timeout, peer
            // reset) while the batch ran; the generation check makes the
            // stale completion a no-op.
            let Some(conn) = self.slab.get_mut(c.token) else { continue };
            conn.inflight = false;
            self.enqueue_reply(c.token, &c.reply, &c.rid, c.keep_alive, c.started);
            self.process(c.token, now);
        }
    }

    /// Checks fired wheel candidates against their authoritative
    /// deadlines: reinsert the not-yet-due, act on the expired.
    fn sweep(&mut self, now: Instant) {
        for token in self.wheel.expired(now) {
            let verdict = {
                let Some(conn) = self.slab.get_mut(token) else { continue };
                if now >= conn.deadline {
                    Sweep::Fire(conn.phase)
                } else {
                    conn.wheel_at = conn.deadline;
                    Sweep::Reinsert(conn.deadline)
                }
            };
            match verdict {
                Sweep::Reinsert(deadline) => self.wheel.insert(token, deadline),
                Sweep::Fire(DeadlinePhase::Idle) => {
                    // Keep-alive connection with nothing pending: reap.
                    self.close(token, true);
                }
                Sweep::Fire(DeadlinePhase::Read) => {
                    // Slowloris: a request has been trickling in longer
                    // than the read deadline. 408, then close.
                    self.metrics.connections_timed_out.fetch_add(1, Ordering::Relaxed);
                    self.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
                    self.metrics.responses_client_error.fetch_add(1, Ordering::Relaxed);
                    let body = serde_json::to_string(&ErrorResponse {
                        error: "request timed out waiting for the rest of the request".into(),
                        request_id: None,
                    })
                    .unwrap_or_else(|_| "{}".into());
                    let bytes = http::encode_response(
                        Status::REQUEST_TIMEOUT,
                        "application/json",
                        &[],
                        body.as_bytes(),
                        false,
                    );
                    if let Some(conn) = self.slab.get_mut(token) {
                        conn.out.push(bytes);
                        conn.close_after_flush = true;
                    }
                    self.finish_io(token, now);
                }
                Sweep::Fire(DeadlinePhase::Write) => {
                    // Dead peer: queued output it never drained.
                    self.close(token, true);
                }
            }
        }
    }

    /// Deregisters and drops a connection. `timed_out` closes are the
    /// deadline wheel's (idle reap / slowloris / dead peer) and counted
    /// as such.
    fn close(&mut self, token: Token, timed_out: bool) {
        let Some(conn) = self.slab.remove(token) else { return };
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        self.metrics.connections_open.fetch_sub(1, Ordering::Relaxed);
        if timed_out {
            self.metrics.connections_timed_out.fetch_add(1, Ordering::Relaxed);
        }
        // Socket closes when `conn` drops here.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    /// The FFI layer end-to-end: register a loopback socket, observe
    /// EPOLLIN with the right token when bytes arrive.
    #[test]
    fn epoll_reports_readiness_with_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll.add(server_side.as_raw_fd(), ffi::EPOLLIN, 42).unwrap();

        let mut events = [EpollEvent::zeroed(); 8];
        // Nothing yet.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        let flags = events[0].events;
        assert_eq!(data, 42);
        assert_ne!(flags & ffi::EPOLLIN, 0);

        epoll.delete(server_side.as_raw_fd()).unwrap();
        client.write_all(b"more").unwrap();
        assert_eq!(epoll.wait(&mut events, 50).unwrap(), 0, "deleted fd must not report");
    }

    /// EPOLLOUT interest via modify: a connected socket is immediately
    /// writable.
    #[test]
    fn epoll_modify_toggles_writable_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll.add(server_side.as_raw_fd(), ffi::EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent::zeroed(); 8];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "no read interest satisfied");

        epoll.modify(server_side.as_raw_fd(), ffi::EPOLLIN | ffi::EPOLLOUT, 7).unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        let flags = events[0].events;
        assert_ne!(flags & ffi::EPOLLOUT, 0);
    }

    /// The eventfd wakes an epoll_wait from another thread and drains.
    #[test]
    fn eventfd_wakes_and_drains() {
        let epoll = Epoll::new().unwrap();
        let efd = Arc::new(EventFd::new().unwrap());
        epoll.add(efd.raw_fd(), ffi::EPOLLIN, WAKE_TOKEN).unwrap();

        let waker = Arc::clone(&efd);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
            waker.wake(); // coalesces
        });
        let mut events = [EpollEvent::zeroed(); 4];
        let n = epoll.wait(&mut events, 5000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, WAKE_TOKEN);
        efd.drain();
        // Level-triggered: drained counter must not re-report.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        t.join().unwrap();
    }
}
