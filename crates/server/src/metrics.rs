//! Lock-free serving metrics: counters, a batch-size histogram, and a
//! fixed-bucket latency histogram with percentile estimation.
//!
//! Everything is plain atomics so the hot path never takes a lock;
//! `GET /metrics` snapshots the counters into a serializable report.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` microseconds (bucket 0 includes 0), the last bucket is
/// open-ended (~1.2 hours and up).
pub const LATENCY_BUCKETS: usize = 32;

/// Largest exactly-tracked batch size; bigger batches land in the
/// overflow bucket.
pub const MAX_TRACKED_BATCH: usize = 64;

/// A fixed power-of-two-bucket histogram of microsecond latencies.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one latency sample.
    pub fn record(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let bucket = (63 - us.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Snapshots the histogram into a serializable summary.
    pub fn snapshot(&self) -> LatencySnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = self.count.load(Ordering::Relaxed);
        let sum_us = self.sum_us.load(Ordering::Relaxed);
        LatencySnapshot {
            count,
            mean_us: if count == 0 { 0.0 } else { sum_us as f64 / count as f64 },
            p50_us: quantile(&buckets, count, 0.50),
            p99_us: quantile(&buckets, count, 0.99),
            max_us: self.max_us.load(Ordering::Relaxed),
            bucket_counts: buckets,
        }
    }
}

/// Upper bound (exclusive) of latency bucket `i`, in microseconds.
fn bucket_bound_us(i: usize) -> u64 {
    1u64 << (i + 1)
}

/// The value at quantile `q` estimated as the upper bound of the bucket
/// containing that rank (an overestimate of at most 2x — the bucket
/// resolution).
fn quantile(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((count as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= rank {
            return bucket_bound_us(i);
        }
    }
    bucket_bound_us(buckets.len() - 1)
}

/// Serializable [`LatencyHistogram`] state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Median (bucket upper bound), microseconds.
    pub p50_us: u64,
    /// 99th percentile (bucket upper bound), microseconds.
    pub p99_us: u64,
    /// Largest sample, microseconds.
    pub max_us: u64,
    /// Raw per-bucket counts (bucket `i` covers `[2^i, 2^(i+1))` µs).
    pub bucket_counts: Vec<u64>,
}

/// All serving metrics, shared across connection workers and batchers.
#[derive(Debug)]
pub struct Metrics {
    /// HTTP requests accepted (any endpoint).
    pub http_requests: AtomicU64,
    /// 2xx responses.
    pub responses_ok: AtomicU64,
    /// 4xx responses.
    pub responses_client_error: AtomicU64,
    /// 5xx responses.
    pub responses_server_error: AtomicU64,
    /// Inference planes served (one per input vector).
    pub inferences: AtomicU64,
    /// Batches executed by the micro-batchers.
    pub batches: AtomicU64,
    batch_sizes: [AtomicU64; MAX_TRACKED_BATCH + 1],
    /// Wall time of whole inference requests (parse to response).
    pub request_latency: LatencyHistogram,
    /// Time a plane waits in the queue before its batch starts.
    pub queue_latency: LatencyHistogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Self {
            http_requests: AtomicU64::new(0),
            responses_ok: AtomicU64::new(0),
            responses_client_error: AtomicU64::new(0),
            responses_server_error: AtomicU64::new(0),
            inferences: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_sizes: std::array::from_fn(|_| AtomicU64::new(0)),
            request_latency: LatencyHistogram::default(),
            queue_latency: LatencyHistogram::default(),
        }
    }
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed batch of `size` planes.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.inferences.fetch_add(size as u64, Ordering::Relaxed);
        let slot = size.min(MAX_TRACKED_BATCH);
        self.batch_sizes[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots everything into the `GET /metrics` payload.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let batch_size_hist: Vec<(usize, u64)> = self
            .batch_sizes
            .iter()
            .enumerate()
            .filter_map(|(size, count)| {
                let count = count.load(Ordering::Relaxed);
                (count > 0).then_some((size, count))
            })
            .collect();
        MetricsSnapshot {
            http_requests: self.http_requests.load(Ordering::Relaxed),
            responses_ok: self.responses_ok.load(Ordering::Relaxed),
            responses_client_error: self.responses_client_error.load(Ordering::Relaxed),
            responses_server_error: self.responses_server_error.load(Ordering::Relaxed),
            inferences: self.inferences.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_size_hist,
            request_latency: self.request_latency.snapshot(),
            queue_latency: self.queue_latency.snapshot(),
            model_backends: Vec::new(),
        }
    }
}

/// Body of `GET /metrics`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// HTTP requests accepted.
    pub http_requests: u64,
    /// 2xx responses.
    pub responses_ok: u64,
    /// 4xx responses.
    pub responses_client_error: u64,
    /// 5xx responses.
    pub responses_server_error: u64,
    /// Inference planes served.
    pub inferences: u64,
    /// Batches executed.
    pub batches: u64,
    /// `(batch size, count)` pairs, sizes above the tracked maximum
    /// collapsed into the last slot.
    pub batch_size_hist: Vec<(usize, u64)>,
    /// Whole-request latency.
    pub request_latency: LatencySnapshot,
    /// Queue-wait latency.
    pub queue_latency: LatencySnapshot,
    /// `(model name, resolved kernel tier)` per registered model — filled
    /// in by the `/metrics` route (the raw counters don't know the
    /// registry).
    #[serde(default)]
    pub model_backends: Vec<(String, String)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_buckets_are_log2() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(0));
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1000));
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.bucket_counts[0], 2, "0us and 1us share bucket 0");
        assert_eq!(snap.bucket_counts[1], 1, "3us lands in [2,4)");
        assert_eq!(snap.bucket_counts[9], 1, "1000us lands in [512,1024)");
        assert_eq!(snap.max_us, 1000);
    }

    #[test]
    fn quantiles_come_from_bucket_bounds() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(10));
        }
        h.record(Duration::from_micros(100_000));
        let snap = h.snapshot();
        assert_eq!(snap.p50_us, 16, "p50 in the [8,16) bucket");
        assert_eq!(snap.p99_us, 16, "99 of 100 samples at 10us");
        assert!(snap.bucket_counts[16] == 1, "outlier in [65536,131072)");
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let snap = LatencyHistogram::default().snapshot();
        assert_eq!((snap.count, snap.p50_us, snap.p99_us, snap.max_us), (0, 0, 0, 0));
    }

    #[test]
    fn batch_hist_tracks_and_overflows() {
        let m = Metrics::new();
        m.record_batch(1);
        m.record_batch(8);
        m.record_batch(8);
        m.record_batch(500);
        let snap = m.snapshot();
        assert_eq!(snap.batches, 4);
        assert_eq!(snap.inferences, 1 + 8 + 8 + 500);
        assert_eq!(
            snap.batch_size_hist,
            vec![(1, 1), (8, 2), (MAX_TRACKED_BATCH, 1)],
            "oversize batch collapses into the last slot"
        );
    }

    #[test]
    fn snapshot_serializes() {
        let m = Metrics::new();
        m.record_batch(2);
        m.request_latency.record(Duration::from_micros(42));
        let s = serde_json::to_string(&m.snapshot()).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&s).unwrap();
        assert_eq!(back.batches, 1);
        assert_eq!(back.request_latency.count, 1);
    }
}
