//! Serving metrics: a global HTTP layer plus per-model instances.
//!
//! Everything is plain atomics so the hot path never takes a lock. The
//! split mirrors ownership: [`Metrics`] counts what the connection
//! front sees (requests, response classes, whole-request latency) and
//! is shared server-wide; [`ModelMetrics`] counts what one model's
//! batcher does (inferences, batches, queue wait, per-model request
//! latency) and lives on that model's registry entry — so multi-tenant
//! traffic is attributable per model, and the global view in
//! [`MetricsSnapshot`] is **assembled as the sum** of the per-model
//! instances at snapshot time (see
//! [`crate::registry::ModelRegistry::metrics_snapshot`]).
//!
//! The histogram machinery lives in [`wp_engine::trace`] (the engine's
//! per-layer profiles use the same buckets); this module records
//! **microseconds**. Quantiles are geometric bucket midpoints and every
//! snapshot carries `bucket_bounds`, so `/metrics` scrapers never
//! re-derive the log2 scheme.

use crate::protocol::DecodeStatsInfo;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub use wp_engine::trace::{LatencyHistogram, LatencySnapshot, LATENCY_BUCKETS};

/// Largest exactly-tracked batch size; bigger batches land in the
/// overflow bucket.
pub const MAX_TRACKED_BATCH: usize = 64;

/// Server-wide HTTP metrics, shared across connection workers.
#[derive(Debug, Default)]
pub struct Metrics {
    /// HTTP requests accepted (any endpoint).
    pub http_requests: AtomicU64,
    /// 2xx responses.
    pub responses_ok: AtomicU64,
    /// 4xx responses.
    pub responses_client_error: AtomicU64,
    /// 5xx responses.
    pub responses_server_error: AtomicU64,
    /// Connections accepted since start (either front).
    pub connections_accepted: AtomicU64,
    /// Currently-open connections — a gauge: incremented on accept,
    /// decremented on close.
    pub connections_open: AtomicU64,
    /// Connections closed by a per-connection deadline: keep-alive idle
    /// reaps, slowloris read timeouts (408), and dead-peer write
    /// timeouts.
    pub connections_timed_out: AtomicU64,
    /// Wall time of whole requests (parse to response), microseconds —
    /// every endpoint, every model.
    pub request_latency: LatencyHistogram,
    /// Per-event-thread loop-iteration *busy* time (readiness dispatch +
    /// completion drain + deadline sweep, excluding the `epoll_wait`
    /// sleep), microseconds. One histogram per event thread, registered
    /// at front startup; empty under the threaded front.
    event_loops: Mutex<Vec<Arc<LatencyHistogram>>>,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (and returns) the loop-iteration histogram for one
    /// event thread. Called once per thread at front startup.
    pub fn register_event_loop(&self) -> Arc<LatencyHistogram> {
        let hist = Arc::new(LatencyHistogram::new());
        self.event_loops.lock().expect("event loop registry poisoned").push(Arc::clone(&hist));
        hist
    }

    /// Snapshots every registered event thread's loop histogram, in
    /// registration (= thread index) order.
    pub fn event_loop_snapshots(&self) -> Vec<LatencySnapshot> {
        self.event_loops
            .lock()
            .expect("event loop registry poisoned")
            .iter()
            .map(|h| h.snapshot())
            .collect()
    }
}

/// One model's serving metrics, owned by its registry entry and written
/// by its batcher.
#[derive(Debug)]
pub struct ModelMetrics {
    /// Inference planes served (one per input vector).
    pub inferences: AtomicU64,
    /// Batches executed by the micro-batcher.
    pub batches: AtomicU64,
    batch_sizes: [AtomicU64; MAX_TRACKED_BATCH + 1],
    /// Time a plane waits in the queue before its batch starts,
    /// microseconds.
    pub queue_latency: LatencyHistogram,
    /// Submit-to-last-output time of `/v1/infer` requests against this
    /// model, microseconds.
    pub request_latency: LatencyHistogram,
}

impl Default for ModelMetrics {
    fn default() -> Self {
        Self {
            inferences: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_sizes: std::array::from_fn(|_| AtomicU64::new(0)),
            queue_latency: LatencyHistogram::new(),
            request_latency: LatencyHistogram::new(),
        }
    }
}

impl ModelMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed batch of `size` planes.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.inferences.fetch_add(size as u64, Ordering::Relaxed);
        let slot = size.min(MAX_TRACKED_BATCH);
        self.batch_sizes[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// `(batch size, count)` pairs, sizes above the tracked maximum
    /// collapsed into the last slot.
    pub fn batch_size_hist(&self) -> Vec<(usize, u64)> {
        self.batch_sizes
            .iter()
            .enumerate()
            .filter_map(|(size, count)| {
                let count = count.load(Ordering::Relaxed);
                (count > 0).then_some((size, count))
            })
            .collect()
    }
}

/// One model's row in a [`MetricsSnapshot`] — identity, deploy
/// provenance, and this model's own counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelMetricsSnapshot {
    /// Registry name.
    pub name: String,
    /// Resolved kernel tier the deployed plan executes with.
    pub backend: String,
    /// Hot-swap count since registration.
    pub reloads: u64,
    /// Inference planes served.
    pub inferences: u64,
    /// Batches executed.
    pub batches: u64,
    /// `(batch size, count)` pairs.
    pub batch_size_hist: Vec<(usize, u64)>,
    /// Queue-wait latency, microseconds.
    pub queue_latency: LatencySnapshot,
    /// Submit-to-output request latency, microseconds.
    pub request_latency: LatencySnapshot,
    /// Decode accounting from the model's last bundle load/reload
    /// (`None` for models deployed from in-memory bundles).
    #[serde(default)]
    pub decode: Option<DecodeStatsInfo>,
}

impl ModelMetricsSnapshot {
    /// Snapshots `metrics` under a model's identity.
    pub fn capture(
        name: String,
        backend: String,
        reloads: u64,
        decode: Option<DecodeStatsInfo>,
        metrics: &ModelMetrics,
    ) -> Self {
        Self {
            name,
            backend,
            reloads,
            inferences: metrics.inferences.load(Ordering::Relaxed),
            batches: metrics.batches.load(Ordering::Relaxed),
            batch_size_hist: metrics.batch_size_hist(),
            queue_latency: metrics.queue_latency.snapshot(),
            request_latency: metrics.request_latency.snapshot(),
            decode,
        }
    }
}

/// Body of `GET /metrics` (JSON form). The top-level totals are the
/// **sum of the per-model rows** plus the global HTTP counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// HTTP requests accepted.
    pub http_requests: u64,
    /// 2xx responses.
    pub responses_ok: u64,
    /// 4xx responses.
    pub responses_client_error: u64,
    /// 5xx responses.
    pub responses_server_error: u64,
    /// Connections accepted since start.
    #[serde(default)]
    pub connections_accepted: u64,
    /// Currently-open connections (gauge).
    #[serde(default)]
    pub connections_open: u64,
    /// Connections closed by a per-connection deadline.
    #[serde(default)]
    pub connections_timed_out: u64,
    /// Inference planes served, summed over models.
    pub inferences: u64,
    /// Batches executed, summed over models.
    pub batches: u64,
    /// `(batch size, count)` pairs, merged over models.
    pub batch_size_hist: Vec<(usize, u64)>,
    /// Whole-request latency (parse to response, every endpoint),
    /// microseconds.
    pub request_latency: LatencySnapshot,
    /// Queue-wait latency, merged over models, microseconds.
    pub queue_latency: LatencySnapshot,
    /// Per-event-thread loop-iteration busy time, microseconds, indexed
    /// by event thread (empty under the threaded front).
    #[serde(default)]
    pub event_loops: Vec<LatencySnapshot>,
    /// Per-model breakdown, sorted by name.
    #[serde(default)]
    pub models: Vec<ModelMetricsSnapshot>,
}

impl MetricsSnapshot {
    /// Assembles the global view: HTTP counters from `http`, totals
    /// summed from `models`.
    pub fn assemble(http: &Metrics, models: Vec<ModelMetricsSnapshot>) -> Self {
        let mut inferences = 0u64;
        let mut batches = 0u64;
        let mut merged_sizes = std::collections::BTreeMap::<usize, u64>::new();
        let mut queue_latency = LatencySnapshot::zero();
        for m in &models {
            inferences += m.inferences;
            batches += m.batches;
            for &(size, count) in &m.batch_size_hist {
                *merged_sizes.entry(size).or_default() += count;
            }
            queue_latency.merge(&m.queue_latency);
        }
        Self {
            http_requests: http.http_requests.load(Ordering::Relaxed),
            responses_ok: http.responses_ok.load(Ordering::Relaxed),
            responses_client_error: http.responses_client_error.load(Ordering::Relaxed),
            responses_server_error: http.responses_server_error.load(Ordering::Relaxed),
            connections_accepted: http.connections_accepted.load(Ordering::Relaxed),
            connections_open: http.connections_open.load(Ordering::Relaxed),
            connections_timed_out: http.connections_timed_out.load(Ordering::Relaxed),
            inferences,
            batches,
            batch_size_hist: merged_sizes.into_iter().collect(),
            request_latency: http.request_latency.snapshot(),
            queue_latency,
            event_loops: http.event_loop_snapshots(),
            models,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn batch_hist_tracks_and_overflows() {
        let m = ModelMetrics::new();
        m.record_batch(1);
        m.record_batch(8);
        m.record_batch(8);
        m.record_batch(500);
        assert_eq!(m.batches.load(Ordering::Relaxed), 4);
        assert_eq!(m.inferences.load(Ordering::Relaxed), 1 + 8 + 8 + 500);
        assert_eq!(
            m.batch_size_hist(),
            vec![(1, 1), (8, 2), (MAX_TRACKED_BATCH, 1)],
            "oversize batch collapses into the last slot"
        );
    }

    #[test]
    fn snapshot_sums_models_into_global_totals() {
        let http = Metrics::new();
        http.http_requests.fetch_add(10, Ordering::Relaxed);
        http.responses_ok.fetch_add(9, Ordering::Relaxed);
        http.request_latency.record_micros(Duration::from_micros(100));

        let a = ModelMetrics::new();
        let b = ModelMetrics::new();
        a.record_batch(4);
        a.queue_latency.record(10);
        b.record_batch(4);
        b.record_batch(2);
        b.queue_latency.record(1000);

        let models = vec![
            ModelMetricsSnapshot::capture("a".into(), "swar".into(), 0, None, &a),
            ModelMetricsSnapshot::capture("b".into(), "scalar".into(), 2, None, &b),
        ];
        let snap = MetricsSnapshot::assemble(&http, models);
        assert_eq!(snap.http_requests, 10);
        assert_eq!(snap.inferences, 4 + 4 + 2);
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.batch_size_hist, vec![(2, 1), (4, 2)], "merged across models");
        assert_eq!(snap.queue_latency.count, 2);
        assert_eq!(snap.queue_latency.sum, 1010);
        assert_eq!(snap.queue_latency.max, 1000);
        assert_eq!(snap.models.len(), 2);
        assert_eq!(snap.models[1].backend, "scalar");
    }

    /// Connection counters and event-loop histograms flow into the
    /// snapshot, and a snapshot without them (an old client's JSON)
    /// still deserializes.
    #[test]
    fn connection_metrics_flow_into_snapshot() {
        let http = Metrics::new();
        http.connections_accepted.fetch_add(5, Ordering::Relaxed);
        http.connections_open.fetch_add(3, Ordering::Relaxed);
        http.connections_timed_out.fetch_add(2, Ordering::Relaxed);
        let loop0 = http.register_event_loop();
        let loop1 = http.register_event_loop();
        loop0.record(40);
        loop1.record(90);
        loop1.record(10);

        let snap = MetricsSnapshot::assemble(&http, vec![]);
        assert_eq!(snap.connections_accepted, 5);
        assert_eq!(snap.connections_open, 3);
        assert_eq!(snap.connections_timed_out, 2);
        assert_eq!(snap.event_loops.len(), 2);
        assert_eq!(snap.event_loops[0].count, 1);
        assert_eq!(snap.event_loops[1].count, 2);
        assert_eq!(snap.event_loops[1].sum, 100);

        // Back-compat: JSON missing the new fields still parses. Strip
        // the (zero-valued) new fields from a fresh snapshot's JSON to
        // fabricate what an old server would have emitted.
        let fresh =
            serde_json::to_string(&MetricsSnapshot::assemble(&Metrics::new(), vec![])).unwrap();
        let old = fresh
            .replace(",\"connections_accepted\":0", "")
            .replace(",\"connections_open\":0", "")
            .replace(",\"connections_timed_out\":0", "")
            .replace(",\"event_loops\":[]", "");
        assert_ne!(old, fresh, "stripping must have removed the new fields");
        let back: MetricsSnapshot = serde_json::from_str(&old).unwrap();
        assert_eq!(back.connections_accepted, 0);
        assert!(back.event_loops.is_empty());
    }

    #[test]
    fn snapshot_serializes() {
        let http = Metrics::new();
        let m = ModelMetrics::new();
        m.record_batch(2);
        m.request_latency.record_micros(Duration::from_micros(42));
        let models = vec![ModelMetricsSnapshot::capture("demo".into(), "avx2".into(), 1, None, &m)];
        let snap = MetricsSnapshot::assemble(&http, models);
        let s = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&s).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.models[0].request_latency.count, 1);
        assert_eq!(back.models[0].request_latency.bucket_bounds.len(), LATENCY_BUCKETS);
    }

    /// Satellite pin: N threads x M records against one model's metrics;
    /// the snapshot sums must be exact — lock-free must not mean lossy.
    #[test]
    fn concurrent_recording_sums_exactly() {
        let m = Arc::new(ModelMetrics::new());
        let threads = 8u64;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let size = 1 + (i % 7) as usize;
                        m.record_batch(size);
                        m.queue_latency.record(i % 5000);
                        m.request_latency.record(1 + i % 100);
                    }
                });
            }
        });
        let snap = ModelMetricsSnapshot::capture("m".into(), "swar".into(), 0, None, &m);
        let n = threads * per_thread;
        assert_eq!(snap.batches, n);
        let planes_per_thread: u64 = (0..per_thread).map(|i| 1 + i % 7).sum();
        assert_eq!(snap.inferences, threads * planes_per_thread);
        let batch_total: u64 = snap.batch_size_hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(batch_total, n);
        assert_eq!(snap.queue_latency.count, n);
        let queue_sum_per_thread: u64 = (0..per_thread).map(|i| i % 5000).sum();
        assert_eq!(snap.queue_latency.sum, threads * queue_sum_per_thread);
        assert_eq!(snap.request_latency.count, n);
        assert_eq!(snap.request_latency.max, 100);
    }
}
