//! The TCP front end: accept loop, connection worker pool, and routing.
//!
//! ```text
//! TcpListener ──accept──▶ mpsc queue ──▶ N connection workers
//!                                            │  parse HTTP + JSON
//!                                            ▼
//!                                    ModelRegistry.resolve()
//!                                            │  submit plane(s)
//!                                            ▼
//!                                   per-model Batcher queue
//!                                            │  flush on max_batch
//!                                            ▼      or max_wait
//!                                  BatchRunner.run_refs (batched,
//!                                   bit-identical to solo runs)
//! ```
//!
//! This is a thread-per-connection front: a worker owns a connection for
//! its whole keep-alive lifetime (parsing, blocking in the batcher, and
//! idling between requests up to `read_timeout`), so `workers` bounds
//! concurrent *connections*, not just requests — size it for the expected
//! connection count, and let the batcher govern inference throughput.
//! Accepted-but-unclaimed sockets wait in a bounded queue; when it fills,
//! the accept loop stops accepting and further connects back up into the
//! kernel backlog instead of growing server memory. An event-driven front
//! that multiplexes idle connections is a ROADMAP follow-up.

use crate::batcher::InferError;
use crate::http::{self, HttpError, Request, Status};
use crate::prometheus;
use crate::protocol::{
    ErrorResponse, HealthResponse, InferRequest, InferResponse, ModelProfileResponse,
    ModelsResponse,
};
use crate::registry::{ModelRegistry, RegistryError};
use serde::Serialize;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use wp_engine::trace;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Connection worker threads.
    pub workers: usize,
    /// Per-read socket timeout (bounds idle keep-alive connections and
    /// shutdown latency).
    pub read_timeout: Duration,
    /// Accepted connections waiting for a worker; when full, accepting
    /// pauses and further connects queue in the kernel backlog (bounded
    /// backpressure instead of unbounded socket buffering).
    pub pending_connections: usize,
    /// Whether `POST /v1/shutdown` is honored (off unless the operator
    /// opts in — a load generator's clean-shutdown hook, not a public
    /// endpoint).
    pub allow_remote_shutdown: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            read_timeout: Duration::from_secs(5),
            pending_connections: 1024,
            allow_remote_shutdown: false,
        }
    }
}

/// A running server; dropping the handle shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    registry: Arc<ModelRegistry>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server serves from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Whether the server has begun shutting down.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown: stop accepting, finish in-flight requests,
    /// drain the batchers, join every thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Nudge the accept loop out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        self.registry.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds and starts serving `registry` under `config`.
///
/// # Errors
///
/// Returns any bind error.
pub fn serve(config: ServerConfig, registry: Arc<ModelRegistry>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(config.pending_connections.max(1));
    let conn_rx = Arc::new(Mutex::new(conn_rx));

    let workers: Vec<_> = (0..config.workers.max(1))
        .map(|i| {
            let conn_rx = Arc::clone(&conn_rx);
            let registry = Arc::clone(&registry);
            let shutdown = Arc::clone(&shutdown);
            let config = config.clone();
            std::thread::Builder::new()
                .name(format!("wp-conn-{i}"))
                .spawn(move || worker_loop(&conn_rx, &registry, &shutdown, &config))
                .expect("spawn connection worker")
        })
        .collect();

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("wp-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        // A send error means the workers are gone, which
                        // only happens at shutdown.
                        Ok(stream) => {
                            if conn_tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
                // conn_tx drops here; idle workers see the disconnect.
            })
            .expect("spawn accept loop")
    };

    Ok(ServerHandle { addr, shutdown, accept_thread: Some(accept_thread), workers, registry })
}

/// One connection worker: pulls sockets and serves them to completion.
fn worker_loop(
    conn_rx: &Mutex<mpsc::Receiver<TcpStream>>,
    registry: &ModelRegistry,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) {
    loop {
        let next = {
            let rx = conn_rx.lock().expect("connection queue poisoned");
            rx.recv_timeout(Duration::from_millis(100))
        };
        match next {
            Ok(stream) => {
                // Connection errors only affect that peer.
                let _ = serve_connection(stream, registry, shutdown, config);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Granularity of the between-requests idle poll (bounds how long an
/// idle keep-alive connection can delay shutdown).
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Serves one (possibly keep-alive) connection until close.
fn serve_connection(
    stream: TcpStream,
    registry: &ModelRegistry,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let metrics = Arc::clone(registry.metrics());
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    loop {
        // Idle phase: wait for the next request's first byte under a
        // short poll so shutdown is honored promptly, giving up once the
        // configured idle timeout has passed. `fill_buf` buffers nothing
        // on timeout, so retrying loses no bytes.
        writer.get_ref().set_read_timeout(Some(IDLE_POLL))?;
        let mut idle = Duration::ZERO;
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            use std::io::BufRead;
            match reader.fill_buf() {
                Ok([]) => return Ok(()), // clean EOF
                Ok(_) => break,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    idle += IDLE_POLL;
                    if idle >= config.read_timeout {
                        return Ok(());
                    }
                }
                Err(_) => return Ok(()),
            }
        }
        // A request is arriving: switch to the full per-read timeout for
        // its head and body.
        writer.get_ref().set_read_timeout(Some(config.read_timeout))?;
        let request = match http::read_request(&mut reader) {
            Ok(r) => r,
            Err(HttpError::Eof) | Err(HttpError::Io(_)) => return Ok(()),
            Err(HttpError::Malformed(m)) => {
                metrics.http_requests.fetch_add(1, Ordering::Relaxed);
                metrics.responses_client_error.fetch_add(1, Ordering::Relaxed);
                respond(
                    &mut writer,
                    Status::BAD_REQUEST,
                    &ErrorResponse { error: m, request_id: None },
                    false,
                )?;
                return Ok(());
            }
            Err(HttpError::TooLarge(m)) => {
                metrics.http_requests.fetch_add(1, Ordering::Relaxed);
                metrics.responses_client_error.fetch_add(1, Ordering::Relaxed);
                respond(
                    &mut writer,
                    Status::PAYLOAD_TOO_LARGE,
                    &ErrorResponse { error: m, request_id: None },
                    false,
                )?;
                return Ok(());
            }
        };
        metrics.http_requests.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let keep_alive = request.keep_alive() && !shutdown.load(Ordering::SeqCst);
        let rid = request_id(&request);
        let reply = route(&request, registry, shutdown, config, &rid);
        let class = match reply.status.0 {
            200..=299 => &metrics.responses_ok,
            400..=499 => &metrics.responses_client_error,
            _ => &metrics.responses_server_error,
        };
        class.fetch_add(1, Ordering::Relaxed);
        metrics.request_latency.record_micros(started.elapsed());
        http::write_response(
            &mut writer,
            reply.status,
            reply.content_type,
            &[("X-Request-Id", &rid)],
            &reply.body,
            keep_alive,
        )?;
        if !keep_alive {
            return Ok(());
        }
    }
}

/// Ticks the fallback request-id generator.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// The request's trace id: the caller's `X-Request-Id` when present and
/// clean (printable ASCII, bounded length), else a generated `req-N`.
/// The id is echoed as a response header, stamped into error bodies, and
/// hashed ([`trace::span_id_from`]) onto the batcher's queue-wait spans.
fn request_id(request: &Request) -> String {
    if let Some(id) = request.header("x-request-id") {
        let clean = id.len() <= 128
            && !id.is_empty()
            && id.chars().all(|c| c.is_ascii_graphic() && c != '"' && c != '\\');
        if clean {
            return id.to_string();
        }
    }
    format!("req-{}", NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed))
}

/// Serializes and writes an early (pre-routing) error response.
fn respond<T: Serialize>(
    writer: &mut impl std::io::Write,
    status: Status,
    body: &T,
    keep_alive: bool,
) -> std::io::Result<()> {
    let body = serde_json::to_string(body).unwrap_or_else(|_| "{}".into());
    http::write_json_response(writer, status, &body, keep_alive)
}

/// One routed response: status, content type, rendered body.
struct Reply {
    status: Status,
    content_type: &'static str,
    body: String,
}

/// Routes one parsed request to its endpoint.
fn route(
    request: &Request,
    registry: &ModelRegistry,
    shutdown: &AtomicBool,
    config: &ServerConfig,
    rid: &str,
) -> Reply {
    let (path, query) = match request.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (request.path.as_str(), ""),
    };
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            ok(&HealthResponse { status: "ok".into(), models: registry.names() }, rid)
        }
        ("GET", "/metrics") => {
            let snap = registry.metrics_snapshot();
            if wants_prometheus(request, query) {
                Reply {
                    status: Status::OK,
                    content_type: prometheus::CONTENT_TYPE,
                    body: prometheus::render(&snap),
                }
            } else {
                ok(&snap, rid)
            }
        }
        ("GET", "/v1/models") => ok(&ModelsResponse { models: registry.infos() }, rid),
        ("GET", path) => {
            if let Some(name) =
                path.strip_prefix("/v1/models/").and_then(|rest| rest.strip_suffix("/profile"))
            {
                return profile(name, registry, rid);
            }
            if let Some(name) =
                path.strip_prefix("/v1/models/").and_then(|rest| rest.strip_suffix("/trace"))
            {
                return export_trace(name, registry, rid);
            }
            error(Status::NOT_FOUND, &format!("no route for GET {path}"), rid)
        }
        ("POST", "/v1/infer") => infer(request, registry, rid),
        ("POST", path) => {
            if let Some(name) =
                path.strip_prefix("/v1/models/").and_then(|rest| rest.strip_suffix("/reload"))
            {
                return reload(name, registry, rid);
            }
            if let Some(name) = path
                .strip_prefix("/v1/models/")
                .and_then(|rest| rest.strip_suffix("/profile/reset"))
            {
                return reset_profile(name, registry, rid);
            }
            if path == "/v1/shutdown" {
                if !config.allow_remote_shutdown {
                    return error(
                        Status::FORBIDDEN,
                        "shutdown endpoint disabled; start the server with it enabled to use it",
                        rid,
                    );
                }
                shutdown.store(true, Ordering::SeqCst);
                return ok(&HealthResponse { status: "shutting down".into(), models: vec![] }, rid);
            }
            error(Status::NOT_FOUND, &format!("no route for POST {path}"), rid)
        }
        (method, path) => error(Status::NOT_FOUND, &format!("no route for {method} {path}"), rid),
    }
}

/// Whether `GET /metrics` should render the Prometheus text exposition
/// instead of JSON: `?format=prometheus`, or an `Accept` header asking
/// for `text/plain` (what a Prometheus scraper sends).
fn wants_prometheus(request: &Request, query: &str) -> bool {
    if query.split('&').any(|kv| kv == "format=prometheus") {
        return true;
    }
    request.header("accept").is_some_and(|a| a.to_ascii_lowercase().contains("text/plain"))
}

/// `POST /v1/infer`: decode, submit every plane, await them all.
fn infer(request: &Request, registry: &ModelRegistry, rid: &str) -> Reply {
    let body = match std::str::from_utf8(&request.body) {
        Ok(s) => s,
        Err(_) => return error(Status::BAD_REQUEST, "body is not UTF-8", rid),
    };
    let req: InferRequest = match serde_json::from_str(body) {
        Ok(r) => r,
        Err(e) => return error(Status::BAD_REQUEST, &format!("bad request body: {e}"), rid),
    };
    if req.inputs.is_empty() {
        return error(Status::BAD_REQUEST, "inputs must not be empty", rid);
    }
    let entry = match registry.resolve(req.model.as_deref()) {
        Ok(e) => e,
        Err(e) => return registry_error(&e, rid),
    };
    // Two-phase so one request's planes can share a batch: enqueue all,
    // then wait for all. The span id ties this request's queue-wait
    // spans back to its X-Request-Id.
    let span_id = trace::span_id_from(rid);
    let submitted = Instant::now();
    let mut tickets = Vec::with_capacity(req.inputs.len());
    for input in req.inputs {
        match entry.batcher().submit_traced(input, span_id) {
            Ok(t) => tickets.push(t),
            Err(e) => return infer_error(&e, rid),
        }
    }
    let mut outputs = Vec::with_capacity(tickets.len());
    for ticket in tickets {
        match ticket.wait() {
            Ok(out) => outputs.push(out),
            Err(e) => return infer_error(&e, rid),
        }
    }
    entry.metrics().request_latency.record_micros(submitted.elapsed());
    ok(&InferResponse { model: entry.name().to_string(), outputs }, rid)
}

/// `POST /v1/models/{name}/reload`.
fn reload(name: &str, registry: &ModelRegistry, rid: &str) -> Reply {
    match registry.reload(name) {
        Ok(()) => match registry.get(name) {
            Ok(entry) => ok(&entry.info(), rid),
            Err(e) => registry_error(&e, rid),
        },
        Err(e) => registry_error(&e, rid),
    }
}

/// `GET /v1/models/{name}/profile`: the deployed plan's per-layer
/// latency profile.
fn profile(name: &str, registry: &ModelRegistry, rid: &str) -> Reply {
    match registry.get(name) {
        Ok(entry) => ok(
            &ModelProfileResponse {
                model: entry.name().to_string(),
                backend: entry.net().backend_kind().name().to_string(),
                profile: entry.profile_snapshot(),
            },
            rid,
        ),
        Err(e) => registry_error(&e, rid),
    }
}

/// `POST /v1/models/{name}/profile/reset`: zero the per-layer counters
/// and return the freshly zeroed profile.
fn reset_profile(name: &str, registry: &ModelRegistry, rid: &str) -> Reply {
    match registry.get(name) {
        Ok(entry) => {
            entry.reset_profile();
            ok(
                &ModelProfileResponse {
                    model: entry.name().to_string(),
                    backend: entry.net().backend_kind().name().to_string(),
                    profile: entry.profile_snapshot(),
                },
                rid,
            )
        }
        Err(e) => registry_error(&e, rid),
    }
}

/// `GET /v1/models/{name}/trace`: the model's trace ring as Chrome
/// `trace_event` JSON (load into `chrome://tracing` or Perfetto).
fn export_trace(name: &str, registry: &ModelRegistry, rid: &str) -> Reply {
    let entry = match registry.get(name) {
        Ok(e) => e,
        Err(e) => return registry_error(&e, rid),
    };
    let Some(buffer) = entry.trace() else {
        return error(
            Status::CONFLICT,
            "event tracing is disabled; restart the server with a trace buffer (--trace-events)",
            rid,
        );
    };
    let net = entry.net();
    let events = buffer.snapshot();
    Reply {
        status: Status::OK,
        content_type: "application/json",
        body: wp_engine::chrome_trace_json(&events, &net.layer_kinds(), entry.name()),
    }
}

fn ok<T: Serialize>(body: &T, rid: &str) -> Reply {
    match serde_json::to_string(body) {
        Ok(s) => Reply { status: Status::OK, content_type: "application/json", body: s },
        Err(e) => error(Status::INTERNAL, &format!("serialization failed: {e}"), rid),
    }
}

fn error(status: Status, message: &str, rid: &str) -> Reply {
    let body = serde_json::to_string(&ErrorResponse {
        error: message.to_string(),
        request_id: Some(rid.to_string()),
    })
    .unwrap_or_else(|_| "{\"error\":\"error\"}".into());
    Reply { status, content_type: "application/json", body }
}

fn registry_error(e: &RegistryError, rid: &str) -> Reply {
    let status = match e {
        RegistryError::UnknownModel(_) => Status::NOT_FOUND,
        RegistryError::NotFileBacked(_) => Status::CONFLICT,
        RegistryError::LoadFailed(_) => Status::INTERNAL,
    };
    error(status, &e.to_string(), rid)
}

fn infer_error(e: &InferError, rid: &str) -> Reply {
    let status = match e {
        InferError::BadInput(_) => Status::BAD_REQUEST,
        InferError::Overloaded | InferError::ShuttingDown => Status::UNAVAILABLE,
    };
    error(status, &e.to_string(), rid)
}
