//! The TCP front end: connection fronts (event-driven and threaded),
//! routing, and request-scoped ids.
//!
//! ```text
//!                 ┌─ event front (default on Linux) ──────────────┐
//! TcpListener ──▶ │ epoll readiness loop × event_threads:         │
//!   accept        │   nonblocking sockets, incremental parse,     │
//!                 │   callback infer, chunked writes on EPOLLOUT  │
//!                 └───────────────┬───────────────────────────────┘
//!                 ┌─ threaded front (reference / fallback) ───────┐
//!                 │ mpsc queue ──▶ N workers, blocking parse+wait │
//!                 └───────────────┬───────────────────────────────┘
//!                                 ▼  ModelRegistry.resolve()
//!                        per-model Batcher queue
//!                                 │  flush on max_batch or max_wait
//!                                 ▼
//!                  BatchRunner.run_refs (batched, bit-identical)
//! ```
//!
//! Both fronts route through the same [`route`]/[`Reply`] code and the
//! same batcher, so responses are byte-identical between them (pinned by
//! e2e tests); they differ only in how connections are multiplexed. The
//! **event front** ([`crate::event`]) multiplexes thousands of mostly-idle
//! keep-alive connections over a few epoll threads. The **threaded
//! front** owns a connection per worker for its keep-alive lifetime, so
//! `workers` bounds concurrent *connections* — it remains as the
//! non-Linux fallback and the reference implementation the event front is
//! diffed against.

use crate::batcher::InferError;
use crate::http::{self, HttpError, Request, Status};
use crate::prometheus;
use crate::protocol::{
    ErrorResponse, HealthResponse, InferRequest, InferResponse, ModelProfileResponse,
    ModelsResponse,
};
use crate::registry::{ModelEntry, ModelRegistry, RegistryError};
use serde::Serialize;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use wp_engine::trace;

/// Which connection front multiplexes sockets onto threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontKind {
    /// Readiness-based epoll loop: a few event threads own all
    /// connections (Linux; silently falls back to [`FrontKind::Threaded`]
    /// elsewhere).
    Event,
    /// Thread-per-connection worker pool.
    Threaded,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Connection front. Defaults to [`FrontKind::Event`].
    pub front: FrontKind,
    /// Event threads for the event front (each owns an epoll instance
    /// and a share of the connections).
    pub event_threads: usize,
    /// Connection worker threads (threaded front only).
    pub workers: usize,
    /// Mid-request deadline: a peer that started a request must finish
    /// sending it within this long or gets `408` and a close (the
    /// slowloris bound). The threaded front also uses it as its per-read
    /// socket timeout.
    pub read_timeout: Duration,
    /// Keep-alive idle deadline: a connection with no partial request is
    /// silently closed after this long (event front; the threaded front
    /// reaps idles at `read_timeout`, its historical behavior).
    pub idle_timeout: Duration,
    /// Unflushed-response deadline: a peer that stops draining its
    /// responses for this long is closed (event front).
    pub write_timeout: Duration,
    /// Accepted connections waiting for a worker (threaded front); when
    /// full, accepting pauses and further connects queue in the kernel
    /// backlog (bounded backpressure instead of unbounded buffering).
    pub pending_connections: usize,
    /// Whether `POST /v1/shutdown` is honored (off unless the operator
    /// opts in — a load generator's clean-shutdown hook, not a public
    /// endpoint).
    pub allow_remote_shutdown: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            front: FrontKind::Event,
            event_threads: 2,
            workers: 8,
            read_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
            pending_connections: 1024,
            allow_remote_shutdown: false,
        }
    }
}

/// What a running front hands back: its threads (accept + workers or
/// accept + event loops) and an optional waker that unblocks threads
/// sleeping in something other than `accept` (the event front's
/// eventfds).
pub(crate) struct FrontRuntime {
    pub(crate) threads: Vec<std::thread::JoinHandle<()>>,
    pub(crate) wake: Option<Box<dyn Fn() + Send + Sync>>,
}

/// A running server; dropping the handle shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    front: FrontRuntime,
    registry: Arc<ModelRegistry>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server serves from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Whether the server has begun shutting down.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown: stop accepting, finish in-flight requests,
    /// drain the batchers, join every thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Nudge the accept loop out of its blocking accept, and wake any
        // event threads out of epoll_wait.
        let _ = TcpStream::connect(self.addr);
        if let Some(wake) = &self.front.wake {
            wake();
        }
        for t in self.front.threads.drain(..) {
            let _ = t.join();
        }
        self.registry.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The front that will actually run: [`FrontKind::Event`] needs epoll, so
/// off Linux it falls back to the threaded front.
fn effective_front(requested: FrontKind) -> FrontKind {
    #[cfg(target_os = "linux")]
    {
        requested
    }
    #[cfg(not(target_os = "linux"))]
    {
        match requested {
            FrontKind::Event => FrontKind::Threaded,
            other => other,
        }
    }
}

/// Binds and starts serving `registry` under `config`.
///
/// # Errors
///
/// Returns any bind error, or an epoll/eventfd setup error for the event
/// front.
pub fn serve(config: ServerConfig, registry: Arc<ModelRegistry>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let front = match effective_front(config.front) {
        #[cfg(target_os = "linux")]
        FrontKind::Event => crate::event::start(listener, &config, &registry, &shutdown)?,
        #[cfg(not(target_os = "linux"))]
        FrontKind::Event => unreachable!("effective_front maps Event to Threaded off Linux"),
        FrontKind::Threaded => start_threaded(listener, &config, &registry, &shutdown),
    };
    Ok(ServerHandle { addr, shutdown, front, registry })
}

/// Starts the thread-per-connection front: a blocking accept loop feeding
/// a worker pool through a bounded queue.
fn start_threaded(
    listener: TcpListener,
    config: &ServerConfig,
    registry: &Arc<ModelRegistry>,
    shutdown: &Arc<AtomicBool>,
) -> FrontRuntime {
    let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(config.pending_connections.max(1));
    let conn_rx = Arc::new(Mutex::new(conn_rx));

    let mut threads: Vec<_> = (0..config.workers.max(1))
        .map(|i| {
            let conn_rx = Arc::clone(&conn_rx);
            let registry = Arc::clone(registry);
            let shutdown = Arc::clone(shutdown);
            let config = config.clone();
            std::thread::Builder::new()
                .name(format!("wp-conn-{i}"))
                .spawn(move || worker_loop(&conn_rx, &registry, &shutdown, &config))
                .expect("spawn connection worker")
        })
        .collect();

    let accept_thread = {
        let shutdown = Arc::clone(shutdown);
        let metrics = Arc::clone(registry.metrics());
        std::thread::Builder::new()
            .name("wp-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        // A send error means the workers are gone, which
                        // only happens at shutdown.
                        Ok(stream) => {
                            metrics.connections_accepted.fetch_add(1, Ordering::Relaxed);
                            if conn_tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
                // conn_tx drops here; idle workers see the disconnect.
            })
            .expect("spawn accept loop")
    };
    threads.push(accept_thread);
    FrontRuntime { threads, wake: None }
}

/// One connection worker: pulls sockets and serves them to completion.
fn worker_loop(
    conn_rx: &Mutex<mpsc::Receiver<TcpStream>>,
    registry: &ModelRegistry,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) {
    loop {
        let next = {
            let rx = conn_rx.lock().expect("connection queue poisoned");
            rx.recv_timeout(Duration::from_millis(100))
        };
        match next {
            Ok(stream) => {
                // Connection errors only affect that peer.
                let _ = serve_connection(stream, registry, shutdown, config);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Granularity of the between-requests idle poll (bounds how long an
/// idle keep-alive connection can delay shutdown).
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Serves one (possibly keep-alive) connection until close.
fn serve_connection(
    stream: TcpStream,
    registry: &ModelRegistry,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) -> std::io::Result<()> {
    let metrics = Arc::clone(registry.metrics());
    metrics.connections_open.fetch_add(1, Ordering::Relaxed);
    let result = serve_connection_inner(stream, registry, shutdown, config, &metrics);
    metrics.connections_open.fetch_sub(1, Ordering::Relaxed);
    result
}

fn serve_connection_inner(
    stream: TcpStream,
    registry: &ModelRegistry,
    shutdown: &AtomicBool,
    config: &ServerConfig,
    metrics: &crate::metrics::Metrics,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    loop {
        // Idle phase: wait for the next request's first byte under a
        // short poll so shutdown is honored promptly, giving up once the
        // configured idle timeout has passed. `fill_buf` buffers nothing
        // on timeout, so retrying loses no bytes.
        writer.get_ref().set_read_timeout(Some(IDLE_POLL))?;
        let mut idle = Duration::ZERO;
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            use std::io::BufRead;
            match reader.fill_buf() {
                Ok([]) => return Ok(()), // clean EOF
                Ok(_) => break,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    idle += IDLE_POLL;
                    if idle >= config.read_timeout {
                        metrics.connections_timed_out.fetch_add(1, Ordering::Relaxed);
                        return Ok(());
                    }
                }
                Err(_) => return Ok(()),
            }
        }
        // A request is arriving: switch to the full per-read timeout for
        // its head and body.
        writer.get_ref().set_read_timeout(Some(config.read_timeout))?;
        let request = match http::read_request(&mut reader) {
            Ok(r) => r,
            Err(HttpError::Eof) | Err(HttpError::Io(_)) => return Ok(()),
            Err(HttpError::Malformed(m)) => {
                metrics.http_requests.fetch_add(1, Ordering::Relaxed);
                metrics.responses_client_error.fetch_add(1, Ordering::Relaxed);
                respond(
                    &mut writer,
                    Status::BAD_REQUEST,
                    &ErrorResponse { error: m, request_id: None },
                    false,
                )?;
                return Ok(());
            }
            Err(HttpError::TooLarge(m)) => {
                metrics.http_requests.fetch_add(1, Ordering::Relaxed);
                metrics.responses_client_error.fetch_add(1, Ordering::Relaxed);
                respond(
                    &mut writer,
                    Status::PAYLOAD_TOO_LARGE,
                    &ErrorResponse { error: m, request_id: None },
                    false,
                )?;
                return Ok(());
            }
        };
        metrics.http_requests.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let keep_alive = request.keep_alive() && !shutdown.load(Ordering::SeqCst);
        let rid = request_id(&request);
        let reply = route(&request, registry, shutdown, config, &rid);
        let class = match reply.status.0 {
            200..=299 => &metrics.responses_ok,
            400..=499 => &metrics.responses_client_error,
            _ => &metrics.responses_server_error,
        };
        class.fetch_add(1, Ordering::Relaxed);
        metrics.request_latency.record_micros(started.elapsed());
        let retry_after = reply.retry_after.map(|s| s.to_string());
        let mut headers: Vec<(&str, &str)> = vec![("X-Request-Id", &rid)];
        if let Some(retry_after) = &retry_after {
            headers.push(("Retry-After", retry_after));
        }
        http::write_response(
            &mut writer,
            reply.status,
            reply.content_type,
            &headers,
            &reply.body,
            keep_alive,
        )?;
        if !keep_alive {
            return Ok(());
        }
    }
}

/// Ticks the fallback request-id generator.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// The request's trace id: the caller's `X-Request-Id` when present and
/// clean (printable ASCII, bounded length), else a generated `req-N`.
/// The id is echoed as a response header, stamped into error bodies, and
/// hashed ([`trace::span_id_from`]) onto the batcher's queue-wait spans.
pub(crate) fn request_id(request: &Request) -> String {
    if let Some(id) = request.header("x-request-id") {
        let clean = id.len() <= 128
            && !id.is_empty()
            && id.chars().all(|c| c.is_ascii_graphic() && c != '"' && c != '\\');
        if clean {
            return id.to_string();
        }
    }
    format!("req-{}", NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed))
}

/// Serializes and writes an early (pre-routing) error response.
fn respond<T: Serialize>(
    writer: &mut impl std::io::Write,
    status: Status,
    body: &T,
    keep_alive: bool,
) -> std::io::Result<()> {
    let body = serde_json::to_string(body).unwrap_or_else(|_| "{}".into());
    http::write_json_response(writer, status, &body, keep_alive)
}

/// One routed response: status, content type, rendered body, and an
/// optional `Retry-After` hint in seconds (set on overload 503s so
/// well-behaved clients back off instead of hammering a full queue).
pub(crate) struct Reply {
    pub(crate) status: Status,
    pub(crate) content_type: &'static str,
    pub(crate) body: String,
    pub(crate) retry_after: Option<u32>,
}

/// Routes one parsed request to its endpoint. Shared by both fronts —
/// the event front intercepts `POST /v1/infer` before calling this (its
/// infer path must not block), every other endpoint is served inline.
pub(crate) fn route(
    request: &Request,
    registry: &ModelRegistry,
    shutdown: &AtomicBool,
    config: &ServerConfig,
    rid: &str,
) -> Reply {
    let (path, query) = match request.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (request.path.as_str(), ""),
    };
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            ok(&HealthResponse { status: "ok".into(), models: registry.names() }, rid)
        }
        ("GET", "/metrics") => {
            let snap = registry.metrics_snapshot();
            if wants_prometheus(request, query) {
                Reply {
                    status: Status::OK,
                    content_type: prometheus::CONTENT_TYPE,
                    body: prometheus::render(&snap),
                    retry_after: None,
                }
            } else {
                ok(&snap, rid)
            }
        }
        ("GET", "/v1/models") => ok(&ModelsResponse { models: registry.infos() }, rid),
        ("GET", path) => {
            if let Some(name) =
                path.strip_prefix("/v1/models/").and_then(|rest| rest.strip_suffix("/profile"))
            {
                return profile(name, registry, rid);
            }
            if let Some(name) =
                path.strip_prefix("/v1/models/").and_then(|rest| rest.strip_suffix("/trace"))
            {
                return export_trace(name, registry, rid);
            }
            error(Status::NOT_FOUND, &format!("no route for GET {path}"), rid)
        }
        ("POST", "/v1/infer") => infer(request, registry, rid),
        ("POST", path) => {
            if let Some(name) =
                path.strip_prefix("/v1/models/").and_then(|rest| rest.strip_suffix("/reload"))
            {
                return reload(name, registry, rid);
            }
            if let Some(name) = path
                .strip_prefix("/v1/models/")
                .and_then(|rest| rest.strip_suffix("/profile/reset"))
            {
                return reset_profile(name, registry, rid);
            }
            if path == "/v1/shutdown" {
                if !config.allow_remote_shutdown {
                    return error(
                        Status::FORBIDDEN,
                        "shutdown endpoint disabled; start the server with it enabled to use it",
                        rid,
                    );
                }
                shutdown.store(true, Ordering::SeqCst);
                return ok(&HealthResponse { status: "shutting down".into(), models: vec![] }, rid);
            }
            error(Status::NOT_FOUND, &format!("no route for POST {path}"), rid)
        }
        (method, path) => error(Status::NOT_FOUND, &format!("no route for {method} {path}"), rid),
    }
}

/// Whether `GET /metrics` should render the Prometheus text exposition
/// instead of JSON: `?format=prometheus`, or an `Accept` header asking
/// for `text/plain` (what a Prometheus scraper sends).
fn wants_prometheus(request: &Request, query: &str) -> bool {
    if query.split('&').any(|kv| kv == "format=prometheus") {
        return true;
    }
    request.header("accept").is_some_and(|a| a.to_ascii_lowercase().contains("text/plain"))
}

/// A decoded, validated `/v1/infer` request, ready to submit: the
/// resolved model, its input planes, and the trace span id derived from
/// the request id. Shared by the blocking path ([`infer`]) and the event
/// front's callback path.
pub(crate) struct InferPlan {
    pub(crate) entry: Arc<ModelEntry>,
    pub(crate) inputs: Vec<Vec<i32>>,
    pub(crate) span_id: u64,
}

/// Decodes and resolves an infer request body, without submitting
/// anything.
///
/// # Errors
///
/// The ready-to-send error [`Reply`] (bad JSON, empty inputs, unknown
/// model).
pub(crate) fn decode_infer(
    request: &Request,
    registry: &ModelRegistry,
    rid: &str,
) -> Result<InferPlan, Reply> {
    let body = match std::str::from_utf8(&request.body) {
        Ok(s) => s,
        Err(_) => return Err(error(Status::BAD_REQUEST, "body is not UTF-8", rid)),
    };
    let req: InferRequest = match serde_json::from_str(body) {
        Ok(r) => r,
        Err(e) => return Err(error(Status::BAD_REQUEST, &format!("bad request body: {e}"), rid)),
    };
    if req.inputs.is_empty() {
        return Err(error(Status::BAD_REQUEST, "inputs must not be empty", rid));
    }
    let entry = match registry.resolve(req.model.as_deref()) {
        Ok(e) => e,
        Err(e) => return Err(registry_error(&e, rid)),
    };
    // The span id ties this request's queue-wait spans back to its
    // X-Request-Id.
    let span_id = trace::span_id_from(rid);
    Ok(InferPlan { entry, inputs: req.inputs, span_id })
}

/// `POST /v1/infer`, blocking flavor (threaded front): decode, submit
/// every plane, await them all.
fn infer(request: &Request, registry: &ModelRegistry, rid: &str) -> Reply {
    let plan = match decode_infer(request, registry, rid) {
        Ok(p) => p,
        Err(reply) => return reply,
    };
    // Two-phase so one request's planes can share a batch: enqueue all,
    // then wait for all.
    let submitted = Instant::now();
    let mut tickets = Vec::with_capacity(plan.inputs.len());
    for input in plan.inputs {
        match plan.entry.batcher().submit_traced(input, plan.span_id) {
            Ok(t) => tickets.push(t),
            Err(e) => return infer_error(&e, rid),
        }
    }
    let mut outputs = Vec::with_capacity(tickets.len());
    for ticket in tickets {
        match ticket.wait() {
            Ok(out) => outputs.push(out),
            Err(e) => return infer_error(&e, rid),
        }
    }
    plan.entry.metrics().request_latency.record_micros(submitted.elapsed());
    ok(&InferResponse { model: plan.entry.name().to_string(), outputs }, rid)
}

/// `POST /v1/models/{name}/reload`.
fn reload(name: &str, registry: &ModelRegistry, rid: &str) -> Reply {
    match registry.reload(name) {
        Ok(()) => match registry.get(name) {
            Ok(entry) => ok(&entry.info(), rid),
            Err(e) => registry_error(&e, rid),
        },
        Err(e) => registry_error(&e, rid),
    }
}

/// `GET /v1/models/{name}/profile`: the deployed plan's per-layer
/// latency profile.
fn profile(name: &str, registry: &ModelRegistry, rid: &str) -> Reply {
    match registry.get(name) {
        Ok(entry) => ok(
            &ModelProfileResponse {
                model: entry.name().to_string(),
                backend: entry.net().backend_kind().name().to_string(),
                profile: entry.profile_snapshot(),
            },
            rid,
        ),
        Err(e) => registry_error(&e, rid),
    }
}

/// `POST /v1/models/{name}/profile/reset`: zero the per-layer counters
/// and return the freshly zeroed profile.
fn reset_profile(name: &str, registry: &ModelRegistry, rid: &str) -> Reply {
    match registry.get(name) {
        Ok(entry) => {
            entry.reset_profile();
            ok(
                &ModelProfileResponse {
                    model: entry.name().to_string(),
                    backend: entry.net().backend_kind().name().to_string(),
                    profile: entry.profile_snapshot(),
                },
                rid,
            )
        }
        Err(e) => registry_error(&e, rid),
    }
}

/// `GET /v1/models/{name}/trace`: the model's trace ring as Chrome
/// `trace_event` JSON (load into `chrome://tracing` or Perfetto).
fn export_trace(name: &str, registry: &ModelRegistry, rid: &str) -> Reply {
    let entry = match registry.get(name) {
        Ok(e) => e,
        Err(e) => return registry_error(&e, rid),
    };
    let Some(buffer) = entry.trace() else {
        return error(
            Status::CONFLICT,
            "event tracing is disabled; restart the server with a trace buffer (--trace-events)",
            rid,
        );
    };
    let net = entry.net();
    let events = buffer.snapshot();
    Reply {
        status: Status::OK,
        content_type: "application/json",
        body: wp_engine::chrome_trace_json(&events, &net.layer_kinds(), entry.name()),
        retry_after: None,
    }
}

pub(crate) fn ok<T: Serialize>(body: &T, rid: &str) -> Reply {
    match serde_json::to_string(body) {
        Ok(s) => Reply {
            status: Status::OK,
            content_type: "application/json",
            body: s,
            retry_after: None,
        },
        Err(e) => error(Status::INTERNAL, &format!("serialization failed: {e}"), rid),
    }
}

pub(crate) fn error(status: Status, message: &str, rid: &str) -> Reply {
    let body = serde_json::to_string(&ErrorResponse {
        error: message.to_string(),
        request_id: Some(rid.to_string()),
    })
    .unwrap_or_else(|_| "{\"error\":\"error\"}".into());
    Reply { status, content_type: "application/json", body, retry_after: None }
}

pub(crate) fn registry_error(e: &RegistryError, rid: &str) -> Reply {
    let status = match e {
        RegistryError::UnknownModel(_) => Status::NOT_FOUND,
        RegistryError::NotFileBacked(_) => Status::CONFLICT,
        RegistryError::LoadFailed(_) => Status::INTERNAL,
    };
    error(status, &e.to_string(), rid)
}

pub(crate) fn infer_error(e: &InferError, rid: &str) -> Reply {
    let status = match e {
        InferError::BadInput(_) => Status::BAD_REQUEST,
        InferError::Overloaded | InferError::ShuttingDown => Status::UNAVAILABLE,
    };
    let mut reply = error(status, &e.to_string(), rid);
    if matches!(e, InferError::Overloaded) {
        // The queue drains within a flush interval; 1s is a safe floor
        // for the minimum Retry-After granularity HTTP allows.
        reply.retry_after = Some(1);
    }
    reply
}
