//! A std-only HTTP/1.1 inference server with dynamic micro-batching over
//! the native weight-pool engine.
//!
//! The ROADMAP's serving story: `wp_engine` executes compressed networks
//! at host speed, and this crate puts a network in front of it — a
//! dependency-free HTTP server (no async runtime; the build environment
//! is offline) whose core is a **dynamic micro-batcher**: concurrent
//! requests coalesce into batches that execute through the engine's
//! batched kernels, which are bit-identical to solo execution and
//! substantially faster per image. Batching is therefore invisible in
//! responses and visible only in throughput — the paper's shared-weight
//! arithmetic amortized across requests (the SWIS observation) instead of
//! across a single image.
//!
//! Pieces:
//!
//! * [`http`] — minimal HTTP/1.1 parsing/writing with hard limits.
//! * [`protocol`] — the JSON request/response types.
//! * [`batcher`] — [`Batcher`]: flush on `max_batch` or `max_wait`,
//!   whichever first.
//! * [`registry`] — [`ModelRegistry`]: named models, atomic hot-swap
//!   reload.
//! * [`metrics`] — global HTTP [`Metrics`] + per-model
//!   [`metrics::ModelMetrics`] (the `GET /metrics` totals are the sum of
//!   the per-model rows).
//! * [`prometheus`] — Prometheus text exposition of the same snapshot.
//! * [`server`] — front selection and routing, request-scoped trace ids
//!   (`X-Request-Id` in, echoed out, stamped on engine spans and error
//!   bodies).
//! * [`event`] — the default front on Linux: a vendored-FFI epoll
//!   readiness loop; a few event threads carry thousands of mostly-idle
//!   keep-alive connections (per-connection slab, deadline wheel,
//!   chunked responses from nonblocking write buffers).
//! * [`conn`] — the event front's data structures: generation-checked
//!   [`conn::Slab`], hashed [`conn::DeadlineWheel`], per-connection
//!   state.
//! * [`demo`] — fabricated demo bundles for tests and load generation.
//!
//! # Endpoints
//!
//! | Method | Path | Purpose |
//! |---|---|---|
//! | GET | `/healthz` | liveness + registered model names |
//! | GET | `/metrics` | global + per-model counters and histograms (JSON; Prometheus text via `Accept: text/plain` or `?format=prometheus`) |
//! | GET | `/v1/models` | model shapes, reload counts, bundle decode stats |
//! | GET | `/v1/models/{name}/profile` | per-layer engine latency profile (p50/p99/mean, share of run) |
//! | GET | `/v1/models/{name}/trace` | Chrome `trace_event` JSON of the model's span ring (when tracing is on) |
//! | POST | `/v1/infer` | run activation planes through a model |
//! | POST | `/v1/models/{name}/reload` | hot-swap a file-backed model |
//! | POST | `/v1/models/{name}/profile/reset` | zero the per-layer profile counters |
//! | POST | `/v1/shutdown` | clean remote shutdown (opt-in) |
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use wp_server::batcher::BatcherConfig;
//! use wp_server::demo::{demo_deployment, DemoSize};
//! use wp_server::metrics::Metrics;
//! use wp_server::registry::ModelRegistry;
//! use wp_server::server::{serve, ServerConfig};
//!
//! let registry = Arc::new(ModelRegistry::new(
//!     BatcherConfig::default(),
//!     Arc::new(Metrics::new()),
//! ));
//! let (bundle, opts) = demo_deployment(DemoSize::Tiny, 1);
//! registry.insert_bundle("demo", &bundle, opts);
//! let mut handle = serve(ServerConfig::default(), Arc::clone(&registry)).unwrap();
//! assert_ne!(handle.addr().port(), 0);
//! handle.shutdown();
//! ```

pub mod batcher;
pub mod conn;
pub mod demo;
#[cfg(target_os = "linux")]
pub mod event;
pub mod http;
pub mod metrics;
pub mod prometheus;
pub mod protocol;
pub mod registry;
pub mod server;

pub use batcher::{Batcher, BatcherConfig, InferError};
pub use metrics::{Metrics, MetricsSnapshot, ModelMetrics, ModelMetricsSnapshot};
pub use registry::{ModelEntry, ModelRegistry, RegistryError};
pub use server::{serve, FrontKind, ServerConfig, ServerHandle};
