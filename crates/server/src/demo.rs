//! Synthetic deployable bundles for demos, load generation, and tests.
//!
//! Runtime behavior depends only on shapes, so weights, pool vectors and
//! index maps are fabricated deterministically from a seed — the same
//! convention as the engine's fabricated depthwise/dense weights. The
//! serving demo is deliberately **scatter-heavy** (many filters over a
//! small shared pool): that is the regime the paper compresses best, and
//! the one where the engine's batched scatter amortizes most, so it shows
//! the micro-batcher's value honestly. Its counterpart,
//! [`DemoSize::Stem`], is **stem-heavy** (direct convs, depthwise, dense
//! — no pooled convs), exercising the weight-stationary batched
//! direct/depthwise/dense kernels end to end instead.
//!
//! Index maps are drawn from a **skewed** distribution (truncated
//! geometric over a per-layer permutation of the pool) rather than a
//! uniform one: K-means pools in trained networks have strongly
//! non-uniform usage histograms, and the uniform draw is the one
//! distribution no entropy coder can touch — a demo fabricated that way
//! would misrepresent both the paper's regime and the WPB codec's
//! behavior on real bundles.

use rand::{Rng, SeedableRng};
use wp_core::deploy::{ConvPayload, DeployBundle};
use wp_core::netspec::{ConvSpec, LayerSpec, NetSpec};
use wp_core::{LookupTable, LutOrder, WeightPool};
use wp_engine::{EngineOptions, PreparedNet};

/// Which demo bundle to fabricate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemoSize {
    /// A few-hundred-microsecond model for unit tests.
    Tiny,
    /// The serving demo: a deep pooled-conv stack whose batched execution
    /// visibly outruns solo execution.
    Serve,
    /// The stem-heavy serving demo: dominated by direct convs, a
    /// depthwise layer and a dense head, with **no** pooled convs at all
    /// — the regime the paper leaves uncompressed (stems, depthwise,
    /// heads) and the one the engine's weight-stationary batched
    /// direct/depthwise/dense kernels accelerate. Pairs with
    /// [`DemoSize::Serve`] in the load generator so both batched regimes
    /// are measured.
    Stem,
}

/// Fabricates a deterministic demo bundle.
pub fn demo_bundle(size: DemoSize, seed: u64) -> DeployBundle {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pool_size = 16usize;
    let vectors: Vec<Vec<f32>> =
        (0..pool_size).map(|_| (0..8).map(|_| rng.gen_range(-0.5f32..0.5)).collect()).collect();
    let pool = WeightPool::from_vectors(vectors);
    let lut = LookupTable::build(&pool, 8, LutOrder::InputOriented);
    let conv = |in_ch: usize, out_ch: usize, compressed: bool| {
        LayerSpec::Conv(ConvSpec { in_ch, out_ch, kernel: 3, stride: 1, pad: 1, compressed })
    };

    // `direct_dims`/`pooled_dims` mirror the uncompressed/compressed conv
    // layers in walk order; payloads are fabricated from them below.
    type Dims = Vec<(usize, usize)>;
    let (name, input, layers, direct_dims, pooled_dims): (_, _, Vec<LayerSpec>, Dims, Dims) =
        match size {
            DemoSize::Tiny => (
                "demo-tiny",
                (8, 6, 6),
                vec![
                    conv(8, 8, false),
                    conv(8, 16, true),
                    LayerSpec::GlobalAvgPool,
                    LayerSpec::Dense { in_features: 16, out_features: 4, compressed: false },
                ],
                vec![(8, 8)],
                vec![(16, 1)],
            ),
            DemoSize::Serve => (
                "demo-serve",
                (8, 6, 6),
                vec![
                    conv(8, 16, false),
                    conv(16, 128, true),
                    conv(128, 256, true),
                    conv(256, 256, true),
                    LayerSpec::GlobalAvgPool,
                    LayerSpec::Dense { in_features: 256, out_features: 10, compressed: false },
                ],
                vec![(8, 16)],
                vec![(128, 2), (256, 16), (256, 32)],
            ),
            DemoSize::Stem => (
                "demo-stem",
                (8, 10, 10),
                vec![
                    conv(8, 64, false),
                    LayerSpec::DwConv { channels: 64, kernel: 3, stride: 1, pad: 1 },
                    conv(64, 96, false),
                    LayerSpec::MaxPool { size: 2 },
                    conv(96, 96, false),
                    LayerSpec::GlobalAvgPool,
                    LayerSpec::Dense { in_features: 96, out_features: 256, compressed: false },
                    LayerSpec::Dense { in_features: 256, out_features: 10, compressed: false },
                ],
                vec![(8, 64), (64, 96), (96, 96)],
                Vec::new(),
            ),
        };
    let classes = match layers.last() {
        Some(LayerSpec::Dense { out_features, .. }) => *out_features,
        _ => 0,
    };
    let spec = NetSpec { name: name.into(), input, classes, layers };

    let mut convs = Vec::new();
    for (in_ch, out_ch) in direct_dims {
        let weights: Vec<i8> =
            (0..out_ch * in_ch * 9).map(|_| rng.gen_range(-127i32..=127) as i8).collect();
        convs.push(ConvPayload::Direct { weights, scale: 0.01 });
    }
    for (out_ch, groups) in pooled_dims {
        // A fresh pool-entry permutation per layer, so the layer's most
        // frequent index is an arbitrary symbol (not always 0) — real
        // usage histograms peak wherever K-means put the popular vector.
        let mut perm: Vec<u8> = (0..pool_size as u8).collect();
        for i in (1..perm.len()).rev() {
            perm.swap(i, rng.gen_range(0..i + 1));
        }
        let indices: Vec<u8> = (0..out_ch * groups * 9)
            .map(|_| {
                // Truncated geometric (p = 1/2) over the permuted pool.
                let mut v = 0usize;
                while v + 1 < pool_size && rng.gen_range(0..2) == 0 {
                    v += 1;
                }
                perm[v]
            })
            .collect();
        convs.push(ConvPayload::Pooled { indices });
    }
    DeployBundle { spec, pool, lut, convs, act_bits: 8 }
}

/// Fabricates a demo bundle together with calibrated engine options: the
/// deep serving demo needs per-layer requant multipliers (fan-ins differ
/// by an order of magnitude between the stem and the widest pooled
/// layer), so the options carry a
/// [`PreparedNet::calibrate_multipliers`] result.
pub fn demo_deployment(size: DemoSize, seed: u64) -> (DeployBundle, EngineOptions) {
    let bundle = demo_bundle(size, seed);
    let opts = EngineOptions::default();
    let multipliers = PreparedNet::calibrate_multipliers(&bundle, &opts, 8, seed ^ 0xCA11);
    (bundle, opts.with_layer_multipliers(Some(multipliers)))
}

/// Fabricates and compiles a demo model in one step.
pub fn demo_prepared(size: DemoSize, seed: u64) -> PreparedNet {
    let (bundle, opts) = demo_deployment(size, seed);
    PreparedNet::from_bundle(&bundle, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_bundles_run_and_are_not_degenerate() {
        for size in [DemoSize::Tiny, DemoSize::Serve, DemoSize::Stem] {
            let net = demo_prepared(size, 42);
            let inputs = net.fabricate_inputs(4, 1);
            let outputs: Vec<Vec<i32>> = inputs.iter().map(|x| net.run_one(x)).collect();
            // Distinct inputs must produce distinct logits (the bundle
            // propagates signal rather than collapsing to a constant).
            for i in 1..outputs.len() {
                assert_ne!(outputs[0], outputs[i], "{size:?}: collapsed outputs");
            }
            // And the same input twice is deterministic.
            assert_eq!(net.run_one(&inputs[0]), outputs[0]);
        }
    }

    #[test]
    fn stem_demo_is_pooled_free_and_batches_bit_identically() {
        let bundle = demo_bundle(DemoSize::Stem, 5);
        assert!(
            bundle.convs.iter().all(|c| matches!(c, ConvPayload::Direct { .. })),
            "the stem demo must not contain pooled convs"
        );
        let net = demo_prepared(DemoSize::Stem, 5);
        let inputs = net.fabricate_inputs(9, 2);
        let refs: Vec<&[i32]> = inputs.iter().map(|x| x.as_slice()).collect();
        let solo: Vec<Vec<i32>> = inputs.iter().map(|x| net.run_one(x)).collect();
        assert_eq!(net.run_batch(&refs), solo, "stem batched path must be bit-identical");
    }

    #[test]
    fn different_seeds_differ() {
        let a = demo_prepared(DemoSize::Tiny, 1);
        let b = demo_prepared(DemoSize::Tiny, 2);
        let input = a.fabricate_inputs(1, 9).pop().unwrap();
        assert_ne!(a.run_one(&input), b.run_one(&input));
    }

    #[test]
    fn serve_bundle_round_trips_through_json() {
        let bundle = demo_bundle(DemoSize::Tiny, 3);
        let s = serde_json::to_string(&bundle).unwrap();
        let back: DeployBundle = serde_json::from_str(&s).unwrap();
        assert_eq!(bundle, back);
    }
}
